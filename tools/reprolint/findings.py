"""The unit of reprolint output: one finding, with location and rationale.

A finding identifies *where* (repo-relative path, line, column), *what*
(rule id + one-line message) and *why it matters* (the rule's rationale,
so a reviewer reading CI output does not need the rule catalog open).
``context`` is the enclosing ``Class.function`` qualname and ``snippet``
the stripped source line — together they are the baseline matching key,
chosen over line numbers so unrelated edits above a grandfathered
finding do not invalidate its suppression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  #: e.g. "REP011"
    path: str  #: repo-relative, forward slashes
    line: int  #: 1-based
    col: int  #: 0-based (ast convention)
    message: str  #: one line: what is wrong here
    rationale: str = ""  #: why the invariant exists (rule-level text)
    context: str = ""  #: enclosing Class.function qualname ("" = module)
    snippet: str = ""  #: stripped source line at ``line``

    def key(self) -> tuple:
        """The baseline matching key (line-number free, see module doc)."""
        return (self.rule, self.path, self.context, self.snippet)

    def render(self) -> str:
        location = "{}:{}:{}".format(self.path, self.line, self.col + 1)
        text = "{}: {} {}".format(location, self.rule, self.message)
        if self.context:
            text += " [in {}]".format(self.context)
        return text

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "rationale": self.rationale,
            "context": self.context,
            "snippet": self.snippet,
        }


@dataclass
class Report:
    """Everything one run produced, for the text and JSON renderings."""

    findings: list = field(default_factory=list)  #: unsuppressed Findings
    suppressed: list = field(default_factory=list)  #: (Finding, how) pairs
    errors: list = field(default_factory=list)  #: baseline/suppression errors
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def to_json(self) -> Dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "findings": [finding.to_json() for finding in self.findings],
            "suppressed": [
                {"how": how, **finding.to_json()}
                for finding, how in self.suppressed
            ],
            "errors": list(self.errors),
            "clean": self.clean,
        }


def make_finding(
    rule,
    ctx,
    node,
    message: str,
    context: Optional[str] = None,
) -> Finding:
    """Build a Finding for ``node`` inside ``ctx`` (a FileContext)."""
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    return Finding(
        rule=rule.id,
        path=ctx.relpath,
        line=line,
        col=col,
        message=message,
        rationale=rule.rationale,
        context=ctx.qualname(node) if context is None else context,
        snippet=ctx.source_line(line),
    )
