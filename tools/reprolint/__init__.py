"""reprolint: repo-specific AST invariant checker for the repro engine.

Six PRs of exactness claims — byte-identical parallel merges, bitwise
kernel parity, leak-proof shared-memory lifecycle, rerun-safe
cancellation — are enforced at runtime by the test suites.  This tool
enforces the *idioms those claims rely on* at lint time, so a future PR
cannot quietly introduce an unordered-set iteration into a top-k merge,
an unguarded ``SharedMemory`` attach, or a Score dispatcher that skips
the ``ExecutionControl`` seam, and only find out when a flaky failure
surfaces under one worker count.

Run it the way CI does::

    python -m tools.reprolint src tests benchmarks

Rule families (see ``tools/reprolint/RULES.md`` for the catalog and the
runtime suite that backs each one):

* **REP01x determinism** — unordered iteration, unstable numpy sorts,
  key-less sorts in merge/rank paths, wall-clock/randomness in scoring.
* **REP02x shm lifecycle** — every segment reaches an owner or a
  close/finalize registration; no raw ``.buf`` escapes; no leak on
  raise paths between attach and ownership transfer.
* **REP03x cancellation seam** — Score operators route dispatch through
  ``_run_tasks``/``run_cancellable`` or checkpoint the control; pool
  construction is confined to ``WorkerPool``.
* **REP04x deprecation discipline** — internal modules must not call
  the ``search``/``execute`` shims.
* **REP05x kernel parity** — ``CompiledUnit`` subclasses overriding a
  matrix kernel keep a consistent scalar path and declare
  ``slope_based``.

Suppressions are either inline (``# reprolint: disable=REP011 -- why``)
or entries in ``tools/reprolint/baseline.json``; both require a written
rationale, and stale baseline entries are themselves errors.
"""

from tools.reprolint.findings import Finding  # noqa: F401
from tools.reprolint.driver import run_paths, main  # noqa: F401

__version__ = "1.0.0"
