"""Entry point: ``python -m tools.reprolint src tests benchmarks``."""

import sys

from tools.reprolint.driver import main

if __name__ == "__main__":
    sys.exit(main())
