"""The reviewed-suppression store: grandfathered findings with rationale.

The baseline is a JSON list, one entry per grandfathered finding::

    {
      "rule": "REP013",
      "path": "src/repro/engine/pruning.py",
      "context": "prune_and_rank",
      "snippet": "floor = sorted(sampled_scores, reverse=True)[k - 1]",
      "justification": "sorts bare floats only to read the k-th value; ..."
    }

Entries match findings on ``(rule, path, context, snippet)`` — no line
numbers, so edits elsewhere in the file cannot invalidate a suppression,
while any change to the suppressed line itself (or moving it to another
function) *does*, forcing a fresh review.  Two invariants keep the file
honest, both enforced as errors by the driver:

* every entry carries a non-empty ``justification`` — the baseline is a
  reviewed document, not a mute button; and
* every entry must match a current finding — stale entries (the code
  was fixed, or drifted) must be deleted, so the file never overstates
  what is suppressed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from tools.reprolint.findings import Finding

_FIELDS = ("rule", "path", "context", "snippet")


class BaselineError(ValueError):
    """The baseline file itself is malformed (not a findings problem)."""


class Baseline:
    """In-memory view of the baseline file, with match bookkeeping."""

    def __init__(self, entries: List[Dict[str, str]], path: Optional[str] = None):
        self.path = path
        self.entries = entries
        self._matched = [False] * len(entries)
        self._index: Dict[Tuple[str, str, str, str], List[int]] = {}
        for position, entry in enumerate(entries):
            missing = [name for name in _FIELDS if not isinstance(entry.get(name), str)]
            if missing:
                raise BaselineError(
                    "baseline entry {} is missing field(s) {}: {!r}".format(
                        position, missing, entry
                    )
                )
            key = tuple(entry[name] for name in _FIELDS)
            self._index.setdefault(key, []).append(position)

    @classmethod
    def load(cls, path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls([], path=str(path))
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise BaselineError(
                "baseline {} is not valid JSON: {}".format(path, exc)
            ) from exc
        if not isinstance(data, list):
            raise BaselineError("baseline {} must hold a JSON list".format(path))
        return cls(data, path=str(path))

    def save(self, path=None) -> None:
        target = Path(path if path is not None else self.path)
        target.write_text(json.dumps(self.entries, indent=2, sort_keys=True) + "\n")

    # -- matching ----------------------------------------------------------
    def suppresses(self, finding: Finding) -> bool:
        """True (and mark the entry used) when ``finding`` is grandfathered."""
        positions = self._index.get(finding.key())
        if not positions:
            return False
        for position in positions:
            self._matched[position] = True
        return True

    def justification_errors(self) -> List[str]:
        """Entries whose justification is empty/missing — always errors."""
        problems = []
        for entry in self.entries:
            justification = entry.get("justification", "")
            if not isinstance(justification, str) or not justification.strip():
                problems.append(
                    "baseline entry for {rule} at {path} [{context}] has no "
                    "justification; every grandfathered suppression must say why "
                    "it is acceptable".format(
                        rule=entry["rule"], path=entry["path"], context=entry["context"]
                    )
                )
        return problems

    def stale_entries(self) -> List[str]:
        """Entries that matched nothing this run — the code moved on."""
        problems = []
        for position, entry in enumerate(self.entries):
            if not self._matched[position]:
                problems.append(
                    "stale baseline entry: {rule} at {path} [{context}] no longer "
                    "matches any finding (snippet {snippet!r}); delete it — the "
                    "baseline must not overstate what is suppressed".format(
                        rule=entry["rule"],
                        path=entry["path"],
                        context=entry["context"],
                        snippet=entry["snippet"],
                    )
                )
        return problems


def entries_for(findings, justification: str = "") -> List[Dict[str, str]]:
    """Baseline skeleton entries for ``findings`` (round-trip helper)."""
    entries = []
    for finding in findings:
        entries.append(
            {
                "rule": finding.rule,
                "path": finding.path,
                "context": finding.context,
                "snippet": finding.snippet,
                "justification": justification,
            }
        )
    return entries
