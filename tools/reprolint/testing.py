"""Fixture harness: run one rule against one file, scope ignored.

The per-rule fixtures under ``tests/fixtures/reprolint`` are excluded
from normal discovery (they exist to violate the rules), so the test
suite drives each rule against its bad/good pair through this module:
``check_fixture`` parses the fixture and runs exactly one rule's
``check`` on it, bypassing the driver's path-scope filter — fixtures
prove rule *logic*; scoping is tested separately against real paths.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from tools.reprolint.findings import Finding
from tools.reprolint.visitor import FileContext, Rule


def run_rule(rule: Rule, source: str, relpath: str = "fixture.py") -> List[Finding]:
    """All findings ``rule`` produces over ``source``."""
    return list(rule.check(FileContext(relpath, source)))


def check_fixture(rule: Rule, fixture_path, relpath: str = None) -> List[Finding]:
    """All findings ``rule`` produces over the file at ``fixture_path``."""
    path = Path(fixture_path)
    return run_rule(rule, path.read_text(), relpath or path.name)
