"""REP05x: kernel parity — matrix fast paths stay bitwise-consistent.

The matrix DP kernel is only trusted because every unit's vectorized
path provably equals its scalar path (tests/test_matrix_kernel.py's
byte-identity property suite).  These rules keep the *shape* of that
proof intact for future units: a class that overrides a matrix kernel
without owning a scalar path has nothing to be byte-identical *to*, and
a unit feeding on shared slope tiles must say so (``slope_based``) or
the tile-sharing wavefront will skip it.
"""

from __future__ import annotations

import ast

from tools.reprolint.findings import make_finding
from tools.reprolint.visitor import FileContext, Rule

#: Names that mark a class as a compiled-unit subclass when they appear
#: among its (syntactic) bases.  Direct names only — reprolint does not
#: resolve imports — so the set lists the whole shipped unit taxonomy.
_UNIT_BASES = {
    "CompiledUnit",
    "SlopeUnit",
    "LineUnit",
    "QuantifierUnit",
    "PositionUnit",
    "SketchUnit",
    "UdpUnit",
    "NestedUnit",
    "WindowUnit",
    "AndUnit",
}

_MATRIX_METHODS = {"score_matrix", "score_matrix_from_slopes"}
_SCALAR_METHODS = {"score", "score_pairs", "score_ends"}


def _unit_classes(ctx: FileContext):
    for node in ctx.walk(ast.ClassDef):
        base_names = {
            base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
            for base in node.bases
        }
        if base_names & _UNIT_BASES:
            yield node


def _defined_methods(cls: ast.ClassDef):
    return {
        item.name for item in cls.body if isinstance(item, ast.FunctionDef)
    }


def _class_assignments(cls: ast.ClassDef):
    values = {}
    for item in cls.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and isinstance(item.value, ast.Constant):
                    values[target.id] = item.value.value
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            if isinstance(item.value, ast.Constant):
                values[item.target.id] = item.value.value
    return values


class MatrixParityRule(Rule):
    """REP051: a matrix-kernel override must own a scalar path.

    A ``CompiledUnit`` subclass overriding ``score_matrix`` /
    ``score_matrix_from_slopes`` must also define ``score``,
    ``score_pairs`` or ``score_ends`` in the same class — the scalar
    twin the byte-identity suite compares the matrix path against.
    Inheriting the scalar path while overriding the matrix one is how
    the two silently drift apart.
    """

    id = "REP051"
    name = "matrix-parity"
    rationale = (
        "a vectorized kernel without a scalar twin in the same class has "
        "nothing the byte-identity suite can prove it equal to"
    )

    def check(self, ctx: FileContext):
        for cls in _unit_classes(ctx):
            defined = _defined_methods(cls)
            overridden = defined & _MATRIX_METHODS
            if overridden and not (defined & _SCALAR_METHODS):
                yield make_finding(
                    self,
                    ctx,
                    cls,
                    "{} overrides {} without a matching scalar path "
                    "(score/score_pairs/score_ends)".format(
                        cls.name, "/".join(sorted(overridden))
                    ),
                    context=cls.name,
                )


class SlopeBasedDeclarationRule(Rule):
    """REP052: slope-matrix consumers must declare ``slope_based = True``.

    The tile-major wavefront shares one fitted-slope matrix per tile
    across all layers whose unit declares ``slope_based``; a unit that
    implements ``score_matrix_from_slopes`` but leaves the flag unset is
    silently routed through the generic path and never receives the
    shared slopes it was written for.
    """

    id = "REP052"
    name = "slope-based-declaration"
    rationale = (
        "score_matrix_from_slopes is only called for units declaring "
        "slope_based = True; an undeclared implementation is dead code"
    )

    def check(self, ctx: FileContext):
        for cls in _unit_classes(ctx):
            if "score_matrix_from_slopes" not in _defined_methods(cls):
                continue
            assignments = _class_assignments(cls)
            if assignments.get("slope_based") is not True:
                yield make_finding(
                    self,
                    ctx,
                    cls,
                    "{} implements score_matrix_from_slopes but does not declare "
                    "slope_based = True".format(cls.name),
                    context=cls.name,
                )
