"""REP01x: determinism — ordered outputs must not depend on runtime order.

The engine's headline guarantee (tests/test_determinism.py,
tests/test_matrix_kernel.py) is that results are byte-identical for any
backend, worker count and kernel.  Everything here exists to keep the
*inputs* to the total order ``(score desc, position asc)`` themselves
deterministic: no iteration over unordered containers on result paths,
no unstable sorts where equal keys could swap, no wall-clock or RNG
inside scoring.
"""

from __future__ import annotations

import ast

from tools.reprolint.findings import make_finding
from tools.reprolint.visitor import (
    FileContext,
    Rule,
    call_name,
    has_keyword,
    is_set_expression,
)

_ENGINE = ("src/repro/engine/",)


class SetIterationRule(Rule):
    """REP011: no iteration over set expressions in engine code.

    ``for x in {...}`` / ``set(...)`` / a module-level set registry
    iterates in hash order, which varies across processes (string hash
    randomization) — any ordered output derived from such a loop breaks
    byte-identity between a fork and a spawn worker, or between reruns.
    Wrap the iterable in ``sorted(...)`` or restructure.
    """

    id = "REP011"
    name = "set-iteration"
    rationale = (
        "set iteration order is runtime-dependent (hash randomization); an "
        "ordered output fed by it cannot be byte-identical across processes"
    )
    scope = _ENGINE

    def check(self, ctx: FileContext):
        for node in ctx.walk((ast.For, ast.comprehension)):
            iterable = node.iter
            if is_set_expression(iterable, ctx.module_set_names):
                yield make_finding(
                    self,
                    ctx,
                    iterable,
                    "iteration over an unordered set; wrap in sorted(...) or "
                    "iterate a deterministically ordered container",
                )


class UnstableNumpySortRule(Rule):
    """REP012: numpy argsort/sort in engine code must pin a stable kind.

    ``np.argsort`` defaults to introsort: equal keys may permute, so two
    equal x values (or scores) can swap between runs of different sizes
    — exactly the tie-break drift the determinism suite pins down.  Pass
    ``kind="stable"``.
    """

    id = "REP012"
    name = "unstable-numpy-sort"
    rationale = (
        "default numpy sorts are unstable; equal keys may permute and change "
        "tie-breaks that the byte-identity suites pin down"
    )
    scope = _ENGINE

    _NAMES = {"argsort", "sort"}
    _STABLE = {"stable", "mergesort"}

    def check(self, ctx: FileContext):
        for node in ctx.walk(ast.Call):
            name = call_name(node)
            if name not in self._NAMES:
                continue
            if isinstance(node.func, ast.Name):
                continue  # bare sort(...)/argsort(...): not numpy's
            value = node.func.value
            # np.sort/np.argsort, or ndarray method .argsort(); plain
            # list .sort() is stable by definition, so only flag the
            # method form for argsort (lists have no argsort).
            is_np = isinstance(value, ast.Name) and value.id in {"np", "numpy"}
            if not is_np and name == "sort":
                continue
            if not has_keyword(node, "kind", self._STABLE):
                yield make_finding(
                    self,
                    ctx,
                    node,
                    '{} without kind="stable"; equal keys may permute across '
                    "runs".format(name),
                )


class KeylessMergeSortRule(Rule):
    """REP013: sorts in merge/rank/top-k paths need an explicit key.

    Those paths define the engine's total order; a bare ``sorted(...)``
    leans on element ``__lt__``, which for tuples silently compares
    payload fields (trendlines, results) that have no meaningful order —
    or raises on ties.  Spell the key out so the order is the documented
    ``(score desc, position asc)`` and nothing else.
    """

    id = "REP013"
    name = "keyless-merge-sort"
    rationale = (
        "merge/rank paths define the engine's total order; an implicit "
        "element order hides which fields actually break ties"
    )
    scope = _ENGINE

    _MARKERS = ("merge", "rank", "top")

    def check(self, ctx: FileContext):
        for node in ctx.walk(ast.Call):
            name = call_name(node)
            is_sorted = isinstance(node.func, ast.Name) and name == "sorted"
            is_method_sort = isinstance(node.func, ast.Attribute) and name == "sort"
            if not (is_sorted or is_method_sort):
                continue
            qualname = ctx.qualname(node).lower()
            if not any(marker in qualname for marker in self._MARKERS):
                continue
            if not has_keyword(node, "key"):
                yield make_finding(
                    self,
                    ctx,
                    node,
                    "sort in an ordered merge/rank path without an explicit "
                    "key=; spell out the total order",
                )


class WallClockInScoringRule(Rule):
    """REP014: no time/random in engine code.

    Scores must be pure functions of the data and the query; a
    wall-clock read or RNG draw anywhere in the engine makes reruns
    (and the cancel-then-rerun byte-identity contract) unreproducible.
    Benchmarks live outside this scope and may time freely.
    """

    id = "REP014"
    name = "wallclock-in-scoring"
    rationale = (
        "scoring must be a pure function of data and query; clocks and RNG "
        "break rerun and cancel-rerun byte-identity"
    )
    scope = _ENGINE

    _MODULES = {"time", "random"}

    def check(self, ctx: FileContext):
        for node in ctx.walk((ast.Import, ast.ImportFrom)):
            if isinstance(node, ast.Import):
                names = [alias.name.split(".")[0] for alias in node.names]
            else:
                names = [(node.module or "").split(".")[0]]
            for name in names:
                if name in self._MODULES:
                    yield make_finding(
                        self,
                        ctx,
                        node,
                        "import of {!r} in engine code; scoring must not read "
                        "clocks or draw randomness".format(name),
                    )
        for node in ctx.walk(ast.Attribute):
            # np.random.* (numpy RNG reached through the module object).
            if (
                node.attr == "random"
                and isinstance(node.value, ast.Name)
                and node.value.id in {"np", "numpy"}
            ):
                yield make_finding(
                    self,
                    ctx,
                    node,
                    "np.random reached from engine code; pass data in, do not "
                    "draw it here",
                )
