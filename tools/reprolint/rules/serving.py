"""REP08x: the serving layer's async discipline.

The serving package (`src/repro/serving/`) multiplexes every client over
one asyncio event loop; a single blocking call inside a coroutine stalls
*all* tenants at once — progress frames freeze, keep-alive requests
queue, and the admission controller cannot even refuse new work.  The
app's contract (documented in :mod:`repro.serving.app`) is that
CPU-bound session work runs on the executor and engine executions are
awaited through the SearchFuture→asyncio bridge; this family makes the
blocking-call side of that contract a static check.
"""

from __future__ import annotations

import ast

from tools.reprolint.findings import make_finding
from tools.reprolint.visitor import FileContext, Rule, call_name

_SERVING = ("src/repro/serving/",)


class AsyncBlockingCallRule(Rule):
    """REP081: no blocking calls inside ``async def`` in serving code.

    Flags, when the *nearest* enclosing function is a coroutine:

    * ``time.sleep(...)`` (and bare ``sleep(...)``) — stalls the loop;
      use ``await asyncio.sleep(...)``.
    * ``open(...)`` and Path I/O methods (``read_text``/``write_text``/
      ``read_bytes``/``write_bytes``) — file I/O belongs in a sync
      helper dispatched via ``run_in_executor``.
    * ``.run(...)`` on engine/pool/prepared receivers — the blocking
      execution entry points; coroutines go through ``submit()`` and
      await the bridged future.

    Deliberately *not* flagged: ``future.result(...)`` — the app calls
    it only after the done-callback bridge observed resolution, when it
    cannot block.  Sync helpers nested inside a coroutine are exempt
    (they run on the executor), which is why only the nearest enclosing
    function decides.
    """

    id = "REP081"
    name = "blocking-call-in-async-handler"
    rationale = (
        "one blocking call inside a coroutine stalls every tenant on the "
        "event loop; serving handlers must await executor-dispatched work"
    )
    scope = _SERVING

    #: ``.run(...)`` receivers that name the blocking execution surface.
    _RUN_RECEIVERS = ("engine", "pool", "prepared", "subprocess")
    _PATH_IO = {"read_text", "write_text", "read_bytes", "write_bytes"}

    @staticmethod
    def _receiver_name(node: ast.Call) -> str:
        """Terminal name of the call's receiver: ``a.b.pool.run`` -> ``pool``."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return ""
        value = func.value
        if isinstance(value, ast.Name):
            return value.id
        if isinstance(value, ast.Attribute):
            return value.attr
        return ""

    def _classify(self, node: ast.Call) -> str:
        name = call_name(node)
        func = node.func
        if isinstance(func, ast.Name):
            if name == "open":
                return (
                    "open() inside a coroutine blocks the event loop; do the "
                    "file I/O in a sync helper via run_in_executor"
                )
            if name == "sleep":
                return (
                    "sleep() inside a coroutine stalls every connection; use "
                    "await asyncio.sleep(...)"
                )
            return ""
        if isinstance(func, ast.Attribute):
            receiver = self._receiver_name(node)
            if name == "sleep" and receiver == "time":
                return (
                    "time.sleep() inside a coroutine stalls every connection; "
                    "use await asyncio.sleep(...)"
                )
            if name in self._PATH_IO:
                return (
                    ".{}() is synchronous file I/O; dispatch it via "
                    "run_in_executor".format(name)
                )
            if name == "run" and any(
                marker in receiver.lower() for marker in self._RUN_RECEIVERS
            ):
                return (
                    "blocking .run() on {!r} inside a coroutine; submit() and "
                    "await the bridged future instead".format(receiver)
                )
        return ""

    def check(self, ctx: FileContext):
        for node in ctx.walk(ast.Call):
            enclosing = ctx.enclosing_function(node)
            if not isinstance(enclosing, ast.AsyncFunctionDef):
                continue
            message = self._classify(node)
            if message:
                yield make_finding(self, ctx, node, message)
