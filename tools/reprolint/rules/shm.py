"""REP02x: shared-memory lifecycle — no segment may outlive its owner.

``engine/shm.py``'s contract (tests/test_shm.py, test_shm_delta.py) is
that every ``SharedMemory`` segment is owned by exactly one party — a
returning publish function, an ``_Attachment`` in the worker store, or a
``ShmSession`` map — and that ownership is taken *before* anything can
raise.  These rules encode the acquire/pin discipline statically: a
segment that never reaches an owner is a ``/dev/shm`` leak; a raw
``.buf`` memoryview that escapes its function outlives the mapping that
backs it and dangles the moment the segment closes.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from tools.reprolint.findings import make_finding
from tools.reprolint.visitor import FileContext, Rule, call_name, mentions_name

#: Calls that produce a segment needing an owner.
_SEGMENT_SOURCES = {"SharedMemory", "_attach_segment"}
#: Callables that take ownership of a segment passed to them.
_OWNERSHIP_SINKS = {"_Attachment", "finalize", "register", "_destroy", "_destroy_all"}


def _segment_calls(ctx: FileContext):
    for node in ctx.walk(ast.Call):
        if call_name(node) in _SEGMENT_SOURCES:
            yield node


def _binding_name(ctx: FileContext, call: ast.Call) -> Optional[str]:
    """The local name ``x`` when the call is ``x = SharedMemory(...)``."""
    parent = ctx.parent(call)
    if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
        target = parent.targets[0]
        if isinstance(target, ast.Name):
            return target.id
    if isinstance(parent, ast.AnnAssign) and isinstance(parent.target, ast.Name):
        return parent.target.id
    # try: return shared.SharedMemory(name=name) — returned directly.
    if isinstance(parent, ast.Return):
        return None
    return None


def _escapes(scope: ast.AST, name: str) -> bool:
    """True when the segment bound to ``name`` reaches an owner in ``scope``."""
    for node in ast.walk(scope):
        # return segment / return handle, segment / yield segment
        if isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
            if mentions_name(node.value, name):
                return True
        # segment.close() / segment.unlink()
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if (
                node.func.attr in {"close", "unlink"}
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                return True
        # _Attachment(value, segment), weakref.finalize(..., segment),
        # atexit.register(..., segment), _destroy(segment)
        if isinstance(node, ast.Call) and call_name(node) in _OWNERSHIP_SINKS:
            if any(mentions_name(arg, name) for arg in node.args):
                return True
        # self._segments[token] = segment / store[token] = segment
        if isinstance(node, ast.Assign) and mentions_name(node.value, name):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    return True
        # containers that are appended to and later handled
        if isinstance(node, ast.Call) and call_name(node) == "append":
            if any(mentions_name(arg, name) for arg in node.args):
                return True
    return False


class SegmentOwnershipRule(Rule):
    """REP021: every created/attached segment must reach an owner.

    An owner is: being returned (the caller inherits the obligation), a
    ``close()``/``unlink()`` call, an ``_Attachment``/``weakref.finalize``
    / ``atexit.register`` registration, or storage into a session map.
    A segment that reaches none of these is an unconditional
    ``/dev/shm`` leak.
    """

    id = "REP021"
    name = "segment-ownership"
    rationale = (
        "a SharedMemory segment with no owner leaks its /dev/shm mapping "
        "until interpreter exit; ownership must be taken in the same function"
    )
    scope = ("src/",)

    def check(self, ctx: FileContext):
        for call in _segment_calls(ctx):
            parent = ctx.parent(call)
            if isinstance(parent, (ast.Return, ast.Yield)):
                continue  # ownership transfers to the caller
            name = _binding_name(ctx, call)
            scope = ctx.enclosing_function(call) or ctx.tree
            if name is None:
                # Not bound and not returned: the segment object is
                # unreachable the moment the statement ends.
                if isinstance(parent, ast.Call) and call_name(parent) in _OWNERSHIP_SINKS:
                    continue
                yield make_finding(
                    self,
                    ctx,
                    call,
                    "segment is neither bound nor returned; nothing can ever "
                    "close or unlink it",
                )
                continue
            if not _escapes(scope, name):
                yield make_finding(
                    self,
                    ctx,
                    call,
                    "segment {!r} never reaches close()/finalize/owner storage "
                    "and is not returned".format(name),
                )


class BufEscapeRule(Rule):
    """REP022: raw ``.buf`` memoryviews must not escape their function.

    ``segment.buf`` is only valid while the mapping is open.  Returning
    it, or storing it on ``self``/a module global, detaches its lifetime
    from the segment's pin — the acquire/pin discipline of
    ``engine/shm.py`` requires escapes to be numpy views owned by an
    ``_Attachment`` that also holds the segment.
    """

    id = "REP022"
    name = "buf-escape"
    rationale = (
        "a raw .buf memoryview dangles when its segment closes; only views "
        "pinned alongside their segment (e.g. via _Attachment) may escape"
    )
    scope = ("src/",)

    _COPIERS = {"bytes", "bytearray"}

    def _contains_buf(self, node: ast.AST) -> bool:
        """True when ``node`` holds a ``.buf`` read not copied out.

        ``bytes(segment.buf[...])`` is the sanctioned idiom — the copy
        severs the view from the mapping — so ``.buf`` reached only
        through a ``bytes``/``bytearray`` call does not count.
        """

        def scan(current: ast.AST) -> bool:
            if isinstance(current, ast.Call):
                name = current.func.id if isinstance(current.func, ast.Name) else None
                if name in self._COPIERS:
                    return False
            if isinstance(current, ast.Attribute) and current.attr == "buf":
                return True
            return any(scan(child) for child in ast.iter_child_nodes(current))

        return scan(node)

    def check(self, ctx: FileContext):
        for node in ctx.walk(ast.Return):
            if node.value is not None and self._contains_buf(node.value):
                yield make_finding(
                    self,
                    ctx,
                    node,
                    "raw .buf escapes via return; copy it (bytes(...)) or keep "
                    "the segment pinned with the view",
                )
        for node in ctx.walk(ast.Assign):
            if not self._contains_buf(node.value):
                continue
            for target in node.targets:
                is_self_attr = (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                )
                is_module_global = (
                    isinstance(target, ast.Name)
                    and ctx.enclosing_function(node) is None
                )
                if is_self_attr or is_module_global:
                    yield make_finding(
                        self,
                        ctx,
                        node,
                        "raw .buf stored beyond the function; its segment can "
                        "close underneath the stored view",
                    )


class RaiseAfterAttachRule(Rule):
    """REP023: no raise between an attach and its ownership transfer.

    A function that attaches a segment and then raises before the
    segment reaches its owner leaks the mapping — the exact failure
    fixed in ``attach_collection`` (manifest mismatch) and
    ``resolve_query`` (corrupt pickle).  A ``raise`` after the attach is
    only safe inside a try whose handler or finally closes the segment.
    """

    id = "REP023"
    name = "raise-after-attach"
    rationale = (
        "an exception between attach and ownership transfer leaks the "
        "mapping; guard the window with try/except-close or try/finally"
    )
    scope = ("src/",)

    def _closes(self, nodes: List[ast.stmt], name: str) -> bool:
        for statement in nodes:
            for node in ast.walk(statement):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in {"close", "unlink"}
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name
                ):
                    return True
                if isinstance(node, ast.Call) and call_name(node) in {
                    "_destroy",
                    "_destroy_all",
                }:
                    if any(mentions_name(arg, name) for arg in node.args):
                        return True
        return False

    def _guarded(self, ctx: FileContext, node: ast.AST, name: str) -> bool:
        """Is ``node`` inside a try whose cleanup closes ``name``?"""
        current = ctx.parent(node)
        while current is not None:
            if isinstance(current, ast.Try):
                cleanup: List[ast.stmt] = list(current.finalbody)
                for handler in current.handlers:
                    cleanup.extend(handler.body)
                if self._closes(cleanup, name):
                    return True
            current = ctx.parent(current)
        return False

    def check(self, ctx: FileContext):
        for call in _segment_calls(ctx):
            name = _binding_name(ctx, call)
            if name is None:
                continue
            scope = ctx.enclosing_function(call)
            if scope is None:
                continue
            attach_line = call.lineno
            for node in ast.walk(scope):
                if not isinstance(node, ast.Raise):
                    continue
                if node.lineno <= attach_line:
                    continue
                if self._guarded(ctx, node, name):
                    continue
                yield make_finding(
                    self,
                    ctx,
                    node,
                    "raise after attaching segment {!r} leaks the mapping; close "
                    "it in an except/finally before propagating".format(name),
                )
