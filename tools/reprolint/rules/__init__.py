"""Rule registry: every shipped rule family, in id order."""

from tools.reprolint.rules.determinism import (
    SetIterationRule,
    UnstableNumpySortRule,
    KeylessMergeSortRule,
    WallClockInScoringRule,
)
from tools.reprolint.rules.shm import (
    SegmentOwnershipRule,
    BufEscapeRule,
    RaiseAfterAttachRule,
)
from tools.reprolint.rules.cancellation import (
    ScoreSeamRule,
    DispatchFunnelRule,
    ExecutorConfinementRule,
)
from tools.reprolint.rules.deprecation import ShimCallRule
from tools.reprolint.rules.kernel import MatrixParityRule, SlopeBasedDeclarationRule
from tools.reprolint.rules.index import FloorSeamRule
from tools.reprolint.rules.artifacts import MappingLifecycleRule
from tools.reprolint.rules.serving import AsyncBlockingCallRule

ALL_RULES = [
    SetIterationRule(),
    UnstableNumpySortRule(),
    KeylessMergeSortRule(),
    WallClockInScoringRule(),
    SegmentOwnershipRule(),
    BufEscapeRule(),
    RaiseAfterAttachRule(),
    ScoreSeamRule(),
    DispatchFunnelRule(),
    ExecutorConfinementRule(),
    ShimCallRule(),
    MatrixParityRule(),
    SlopeBasedDeclarationRule(),
    FloorSeamRule(),
    MappingLifecycleRule(),
    AsyncBlockingCallRule(),
]

RULES_BY_ID = {rule.id: rule for rule in ALL_RULES}
