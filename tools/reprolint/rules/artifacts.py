"""REP07x: artifact-store mapping lifecycle — no mmap may outlive its owner.

``engine/artifacts.py`` memory-maps persisted index blocks
(``np.memmap`` via ``_open_block``) and must verify them before serving:
format, fingerprint, digests.  Every verification step is a chance to
bail out — and every bail-out after the map is open is a chance to leak
the file mapping for the process lifetime (the same failure family
REP02x pins for shared-memory segments).  The discipline mirrors
REP021+REP023 for the mmap sources: an opened mapping must reach an
owner — returned, handed to ``ShapeIndex.from_packed`` (whose entry
views keep the mapping alive), or released through the idempotent
``_close_block`` — and no ``raise`` may sit between the open and that
ownership transfer unless a ``try`` handler/finally closes the mapping.
Runtime proof: ``tests/test_artifacts.py`` fallback suite (every
verification miss closes before returning None).
"""

from __future__ import annotations

import ast
from typing import List, Optional

from tools.reprolint.findings import make_finding
from tools.reprolint.visitor import FileContext, Rule, call_name, mentions_name

#: Calls that open a file mapping needing an owner.
_MAPPING_SOURCES = {"memmap", "_open_block", "mmap"}
#: Callables that take ownership of a mapping passed to them:
#: ``_close_block`` releases it, ``from_packed`` wraps it in an index
#: whose views pin it, finalizers inherit the release obligation.
_OWNERSHIP_SINKS = {"_close_block", "from_packed", "finalize", "register"}


def _mapping_calls(ctx: FileContext):
    for node in ctx.walk(ast.Call):
        if call_name(node) in _MAPPING_SOURCES:
            yield node


def _binding_name(ctx: FileContext, call: ast.Call) -> Optional[str]:
    """The local name ``x`` when the call is ``x = np.memmap(...)``."""
    parent = ctx.parent(call)
    if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
        target = parent.targets[0]
        if isinstance(target, ast.Name):
            return target.id
    if isinstance(parent, ast.AnnAssign) and isinstance(parent.target, ast.Name):
        return parent.target.id
    return None


def _reaches_owner(scope: ast.AST, name: str) -> bool:
    """True when the mapping bound to ``name`` reaches an owner in ``scope``."""
    for node in ast.walk(scope):
        # return block / yield block — the caller inherits the obligation
        if isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
            if mentions_name(node.value, name):
                return True
        # block.close() / block._mmap.close()
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "close" and mentions_name(node.func.value, name):
                return True
        # _close_block(block), ShapeIndex.from_packed(block, ...),
        # weakref.finalize(..., block)
        if isinstance(node, ast.Call) and call_name(node) in _OWNERSHIP_SINKS:
            if any(mentions_name(arg, name) for arg in node.args):
                return True
        # store[key] = block / self._blocks[key] = block
        if isinstance(node, ast.Assign) and mentions_name(node.value, name):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    return True
    return False


class MappingLifecycleRule(Rule):
    """REP071: opened mmaps reach an owner; no unguarded raise before that.

    Two findings share the id because they are one discipline seen from
    two sides.  *Ownership*: a mapping that is never returned, closed,
    registered, or wrapped into the index it backs leaks the file
    mapping until interpreter exit.  *Raise window*: a ``raise`` between
    the open and the ownership transfer leaks it on the exceptional
    path — exactly the verification-bail-out shape ``load_index`` is
    made of — unless the window sits in a ``try`` whose handler or
    finally closes the mapping.
    """

    id = "REP071"
    name = "mapping-lifecycle"
    rationale = (
        "a file mapping with no owner (or dropped by an unguarded raise "
        "between open and ownership transfer) stays mapped until "
        "interpreter exit; close it on every verification miss"
    )
    scope = ("src/repro/engine/artifacts.py",)

    def _closes(self, nodes: List[ast.stmt], name: str) -> bool:
        for statement in nodes:
            for node in ast.walk(statement):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "close"
                    and mentions_name(node.func.value, name)
                ):
                    return True
                if isinstance(node, ast.Call) and call_name(node) == "_close_block":
                    if any(mentions_name(arg, name) for arg in node.args):
                        return True
        return False

    def _guarded(self, ctx: FileContext, node: ast.AST, name: str) -> bool:
        """Is ``node`` inside a try whose cleanup closes ``name``?"""
        current = ctx.parent(node)
        while current is not None:
            if isinstance(current, ast.Try):
                cleanup: List[ast.stmt] = list(current.finalbody)
                for handler in current.handlers:
                    cleanup.extend(handler.body)
                if self._closes(cleanup, name):
                    return True
            current = ctx.parent(current)
        return False

    def check(self, ctx: FileContext):
        for call in _mapping_calls(ctx):
            parent = ctx.parent(call)
            if isinstance(parent, (ast.Return, ast.Yield)):
                continue  # ownership transfers to the caller
            name = _binding_name(ctx, call)
            scope = ctx.enclosing_function(call) or ctx.tree
            if name is None:
                if isinstance(parent, ast.Call) and call_name(parent) in _OWNERSHIP_SINKS:
                    continue
                yield make_finding(
                    self,
                    ctx,
                    call,
                    "mapping is neither bound nor returned; nothing can ever "
                    "close it",
                )
                continue
            if not _reaches_owner(scope, name):
                yield make_finding(
                    self,
                    ctx,
                    call,
                    "mapping {!r} never reaches _close_block/from_packed/return "
                    "and leaks its file mapping".format(name),
                )
                continue
            attach_line = call.lineno
            for node in ast.walk(scope):
                if not isinstance(node, ast.Raise):
                    continue
                if node.lineno <= attach_line:
                    continue
                if self._guarded(ctx, node, name):
                    continue
                yield make_finding(
                    self,
                    ctx,
                    node,
                    "raise after opening mapping {!r} leaks it; close in an "
                    "except/finally before propagating".format(name),
                )
