"""REP04x: deprecation discipline — internals never call their own shims.

PR 5 kept ``search``/``execute``/``search_many``/``execute_many`` as
deprecation shims for external callers; the CI ``deprecations`` job runs
the suite with the warning escalated to an error.  This rule closes the
remaining gap statically: a *new* internal call site would only surface
when that job happens to execute it — here it fails at lint time, on
every path, executed or not.
"""

from __future__ import annotations

import ast

from tools.reprolint.findings import make_finding
from tools.reprolint.visitor import FileContext, Rule

_SHIMS = {"search", "execute", "search_many", "execute_many"}


class ShimCallRule(Rule):
    """REP041: no internal module may call a deprecated shim.

    Flags any ``obj.search(...)`` / ``obj.execute(...)`` (and the
    ``_many`` variants) inside ``src/repro`` — internals must use
    ``prepare``/``run``/``submit``.  The shim's own body is exempt
    (a shim delegating is the shim working, not a violation).
    """

    id = "REP041"
    name = "shim-call"
    rationale = (
        "internal callers of deprecated shims re-entrench the old surface "
        "and defeat the deprecation-clean CI contract"
    )
    scope = ("src/repro/",)

    def check(self, ctx: FileContext):
        for node in ctx.walk(ast.Call):
            if not isinstance(node.func, ast.Attribute):
                continue
            name = node.func.attr
            if name not in _SHIMS:
                continue
            enclosing = ctx.enclosing_function(node)
            if enclosing is not None and enclosing.name == name:
                continue  # the shim's own delegating body
            yield make_finding(
                self,
                ctx,
                node,
                ".{}() is a deprecated shim; internal code must use "
                "prepare()/run()/submit()".format(name),
            )
