"""REP03x: the cancellation seam — every Score dispatch is cancellable.

``PreparedSearch.submit`` promises cooperative cancellation with
byte-identical reruns (tests/test_async_submit.py).  That only holds
because every Score-stage dispatch funnels through
``WorkerPool.run_cancellable`` via ``_run_tasks`` (or, for the
single-shard sequential path, checkpoints ``ctx.control`` itself), and
because raw ``concurrent.futures`` pools never appear outside
``WorkerPool`` — a bare executor has no sweep-cancel, no shard progress,
and no deterministic-rerun discipline.
"""

from __future__ import annotations

import ast

from tools.reprolint.findings import make_finding
from tools.reprolint.visitor import FileContext, Rule, call_name

_SEAM_CALLS = {"_run_tasks", "run_cancellable"}


def _score_classes(ctx: FileContext):
    for node in ctx.walk(ast.ClassDef):
        base_names = {
            base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
            for base in node.bases
        }
        if "_ScoreBase" in base_names or node.name.endswith("Score"):
            yield node


class ScoreSeamRule(Rule):
    """REP031: Score operators must dispatch through the control seam.

    A ``run`` method on a Score operator must either call a
    ``dispatch_*`` helper (all of which route through ``_run_tasks``) or
    reference the execution ``control`` directly (the sequential path's
    begin/cancelled/shard_completed checkpoints).  A shard loop that
    does neither is invisible to cancel and progress.
    """

    id = "REP031"
    name = "score-seam"
    rationale = (
        "a Score dispatch outside _run_tasks/run_cancellable (or an explicit "
        "control checkpoint) cannot be cancelled and reports no progress"
    )
    scope = ("src/repro/engine/pipeline.py",)

    def check(self, ctx: FileContext):
        for cls in _score_classes(ctx):
            for item in cls.body:
                if not isinstance(item, ast.FunctionDef) or item.name != "run":
                    continue
                routed = False
                for node in ast.walk(item):
                    name = call_name(node)
                    if name is not None and (
                        name.startswith("dispatch_") or name in _SEAM_CALLS
                    ):
                        routed = True
                        break
                    if isinstance(node, ast.Attribute) and node.attr == "control":
                        routed = True
                        break
                if not routed:
                    yield make_finding(
                        self,
                        ctx,
                        item,
                        "{}.run dispatches shards without a dispatch_* helper or "
                        "a control checkpoint".format(cls.name),
                        context=cls.name,
                    )


class DispatchFunnelRule(Rule):
    """REP032: every dispatch_* helper routes through _run_tasks.

    ``_run_tasks`` is the single funnel that makes the blocking and the
    cancellable transports cover identical rows in identical order; a
    dispatcher that bypasses it forks the two behaviors apart.
    """

    id = "REP032"
    name = "dispatch-funnel"
    rationale = (
        "_run_tasks is the single dispatch funnel; bypassing it forks the "
        "blocking and cancellable transports apart"
    )
    scope = ("src/repro/engine/parallel.py",)

    def check(self, ctx: FileContext):
        for node in ctx.walk(ast.FunctionDef):
            if not node.name.startswith("dispatch_"):
                continue
            routed = any(
                call_name(child) in _SEAM_CALLS for child in ast.walk(node)
            )
            if not routed:
                yield make_finding(
                    self,
                    ctx,
                    node,
                    "{} does not route through _run_tasks/run_cancellable".format(
                        node.name
                    ),
                )


class ExecutorConfinementRule(Rule):
    """REP033: concurrent.futures pools are constructed only in WorkerPool.

    ``WorkerPool`` owns the lifecycle discipline — lazy creation,
    ``weakref.finalize`` shutdown, sweep-cancel, workers==1 inline
    execution.  A ``ThreadPoolExecutor``/``ProcessPoolExecutor`` built
    anywhere else starts threads/processes with none of it.
    """

    id = "REP033"
    name = "executor-confinement"
    rationale = (
        "raw executors lack WorkerPool's finalize/shutdown and sweep-cancel "
        "discipline; construct pools through WorkerPool"
    )
    scope = ("src/",)

    _POOLS = {"ThreadPoolExecutor", "ProcessPoolExecutor"}

    def check(self, ctx: FileContext):
        for node in ctx.walk(ast.Call):
            if call_name(node) not in self._POOLS:
                continue
            if "WorkerPool" in ctx.qualname(node).split("."):
                continue
            yield make_finding(
                self,
                ctx,
                node,
                "{} constructed outside WorkerPool".format(call_name(node)),
            )
