"""REP06x: index pruning — every discard routes through the floor seam.

The shape index's exactness argument has exactly one load-bearing
inequality: a candidate is discarded iff its upper bound falls
*strictly below* the running top-k floor, and that comparison lives in
:func:`repro.engine.shape_index.survives_floor` (ties survive; the
clamp in the bound keeps the verdict meaningful).  The byte-identity
suite proves that one predicate exact.  An ad-hoc ``upper < floor``
written anywhere else re-states the inequality by hand — and the first
restated copy that flips ``<`` to ``<=``, or compares before the clamp,
silently drops true top-k members with no test pointed at it.
"""

from __future__ import annotations

import ast

from tools.reprolint.findings import make_finding
from tools.reprolint.visitor import FileContext, Rule, call_name

#: The one function allowed to compare bounds against the floor.
_SEAM = "survives_floor"

#: numpy ufuncs that spell a comparison as a call — writing
#: ``np.greater_equal(bounds, floor)`` inline is the same bypass as the
#: operator form, just harder to grep for.
_COMPARISON_CALLS = {"greater", "greater_equal", "less", "less_equal"}


def _names_floor(node: ast.AST) -> bool:
    """True when the subtree reads any variable whose name says floor."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and "floor" in child.id.lower():
            return True
    return False


def _inside_seam(ctx: FileContext, node: ast.AST) -> bool:
    function = ctx.enclosing_function(node)
    return function is not None and function.name == _SEAM


class FloorSeamRule(Rule):
    """REP061: floor comparisons happen in ``survives_floor`` only.

    Flags any comparison — operator form or numpy ufunc call — that
    involves a ``*floor*`` name outside the seam itself.  Conforming
    code asks ``survives_floor(upper, floor)`` and branches on the
    verdict; it never re-derives the inequality.
    """

    id = "REP061"
    name = "floor-seam"
    rationale = (
        "discard-vs-keep is exact only because one audited predicate "
        "(survives_floor) decides it; an inline floor comparison is an "
        "unproven second copy of that inequality"
    )
    scope = (
        "src/repro/engine/shape_index.py",
        "src/repro/engine/pruning.py",
        "src/repro/engine/pipeline.py",
    )

    def check(self, ctx: FileContext):
        for node in ctx.walk(ast.Compare):
            if _inside_seam(ctx, node) or not _names_floor(node):
                continue
            yield make_finding(
                self,
                ctx,
                node,
                "inline floor comparison; route the decision through "
                "survives_floor(upper, floor)",
            )
        for node in ctx.walk(ast.Call):
            if call_name(node) not in _COMPARISON_CALLS:
                continue
            if _inside_seam(ctx, node) or not _names_floor(node):
                continue
            yield make_finding(
                self,
                ctx,
                node,
                "{}() comparison against the floor; route the decision "
                "through survives_floor(upper, floor)".format(call_name(node)),
            )
