"""File discovery, rule orchestration, suppression, reporting, exit codes.

The contract with CI is three exit codes: 0 — every rule clean over the
scanned tree (inline and baseline suppressions applied, every one of
them justified, no stale baseline entries); 1 — findings or suppression
bookkeeping errors; 2 — reprolint itself failed (unreadable baseline,
usage error).  Syntax errors in scanned files are findings-level errors
(exit 1), not crashes: a tree that does not parse cannot be certified.

Fixture trees under ``tests/fixtures/reprolint`` are skipped during
directory discovery — they exist to *violate* the rules — but a fixture
passed as an explicit file argument is scanned, which is how the test
suite exercises each rule against its bad/good pair.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from tools.reprolint.baseline import Baseline, BaselineError, entries_for
from tools.reprolint.findings import Report
from tools.reprolint.rules import ALL_RULES
from tools.reprolint.visitor import FileContext

_DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"
#: Subtrees never scanned via directory discovery (explicit files win).
_SKIP_PARTS = {"__pycache__", ".git", ".venv"}
_FIXTURE_SUBTREE = ("tests", "fixtures", "reprolint")


def _is_fixture(parts: Sequence[str]) -> bool:
    for start in range(len(parts) - len(_FIXTURE_SUBTREE) + 1):
        if tuple(parts[start : start + len(_FIXTURE_SUBTREE)]) == _FIXTURE_SUBTREE:
            return True
    return False


def discover(paths: Iterable[str], root: Path) -> List[Path]:
    """Expand path arguments into the sorted list of files to scan."""
    files: List[Path] = []
    for raw in paths:
        path = (root / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
        if path.is_file():
            files.append(path)  # explicit file: no exclusions apply
            continue
        if not path.is_dir():
            raise FileNotFoundError("no such file or directory: {}".format(raw))
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(root).parts if root in candidate.parents else candidate.parts
            if _SKIP_PARTS.intersection(parts):
                continue
            if _is_fixture(parts):
                continue
            files.append(candidate)
    # De-duplicate while keeping deterministic (sorted) order.
    unique = sorted(set(files))
    return unique


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _inline_suppressed(ctx: FileContext, finding) -> Optional[str]:
    """The rationale when an inline disable covers ``finding``, else None.

    A disable comment applies to its own line and, when it stands alone
    on a comment line, to the line directly below it.
    """
    for line in (finding.line, finding.line - 1):
        suppression = ctx.suppressions.get(line)
        if suppression is None:
            continue
        if line == finding.line - 1:
            if not ctx.source_line(line).startswith("#"):
                continue  # trailing comment on the previous statement
        if finding.rule in suppression.rules:
            return suppression.rationale
    return None


def run_paths(
    paths: Sequence[str],
    root: Optional[Path] = None,
    baseline_path: Optional[str] = None,
    rules=None,
):
    """Scan ``paths``; returns ``(Report, Baseline)`` (baseline has match state)."""
    root = (root or Path.cwd()).resolve()
    rules = list(ALL_RULES if rules is None else rules)
    baseline = Baseline.load(baseline_path or _DEFAULT_BASELINE)

    report = Report()
    scanned_prefixes = tuple(
        _relpath(
            (root / p).resolve() if not Path(p).is_absolute() else Path(p), root
        )
        for p in paths
    )
    for path in discover(paths, root):
        relpath = _relpath(path, root)
        applicable = [rule for rule in rules if rule.applies(relpath)]
        if not applicable:
            continue
        try:
            source = path.read_text()
            ctx = FileContext(relpath, source)
        except (OSError, SyntaxError, ValueError) as exc:
            report.errors.append("{}: cannot analyze: {}".format(relpath, exc))
            continue
        report.files_checked += 1
        for line in ctx.bad_suppressions:
            report.errors.append(
                "{}:{}: reprolint: disable without a '-- rationale'; every "
                "inline suppression must say why".format(relpath, line)
            )
        for rule in applicable:
            for finding in rule.check(ctx):
                rationale = _inline_suppressed(ctx, finding)
                if rationale is not None:
                    report.suppressed.append((finding, "inline: " + rationale))
                elif baseline.suppresses(finding):
                    report.suppressed.append((finding, "baseline"))
                else:
                    report.findings.append(finding)

    report.errors.extend(baseline.justification_errors())
    # Only treat unmatched entries as stale when their file was inside
    # this run's scan scope — a partial run must not invalidate the rest
    # of the baseline.
    for problem, entry in zip(baseline.stale_entries(), _unmatched(baseline)):
        in_scope = any(
            prefix in ("", ".") or entry["path"].startswith(prefix)
            for prefix in scanned_prefixes
        )
        if in_scope:
            report.errors.append(problem)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report, baseline


def _unmatched(baseline: Baseline):
    return [
        entry
        for position, entry in enumerate(baseline.entries)
        if not baseline._matched[position]
    ]


def _write_updated_baseline(report: Report, baseline: Baseline, target: Path) -> None:
    """Regenerate the baseline: current findings, old justifications kept."""
    existing = {
        (e["rule"], e["path"], e["context"], e["snippet"]): e.get("justification", "")
        for e in baseline.entries
    }
    entries = entries_for(report.findings)
    kept = [entry for f, how in report.suppressed if how == "baseline" for entry in entries_for([f])]
    merged = {}
    for entry in entries + kept:
        key = (entry["rule"], entry["path"], entry["context"], entry["snippet"])
        entry["justification"] = existing.get(key, "")
        merged[key] = entry
    Baseline(list(merged.values()), path=str(target)).save()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST-based invariant checker for the repro engine "
        "(determinism, shm lifecycle, cancellation seams, deprecation "
        "discipline, kernel parity).",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to scan")
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON (default: tools/reprolint/baseline.json)",
    )
    parser.add_argument(
        "--report", default=None, help="also write the full report as JSON here"
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from current findings (justifications for "
        "unchanged entries are preserved; new entries start unjustified and "
        "must be reviewed before the next run passes)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            scope = ", ".join(rule.scope) if rule.scope else "all scanned files"
            print("{}  {:<28} scope: {}".format(rule.id, rule.name, scope))
            print("        {}".format(rule.rationale))
        return 0

    try:
        report, baseline = run_paths(args.paths, baseline_path=args.baseline)
    except (BaselineError, FileNotFoundError) as exc:
        print("reprolint: error: {}".format(exc), file=sys.stderr)
        return 2

    if args.update_baseline:
        target = Path(args.baseline) if args.baseline else _DEFAULT_BASELINE
        _write_updated_baseline(report, baseline, target)
        print(
            "reprolint: wrote {} entries to {} (review and add justifications)".format(
                len(report.findings)
                + sum(1 for _, how in report.suppressed if how == "baseline"),
                target,
            )
        )
        return 0

    for finding in report.findings:
        print(finding.render())
        if finding.rationale:
            print("    why: {}".format(finding.rationale))
    for problem in report.errors:
        print("error: {}".format(problem))
    print(
        "reprolint: {} file(s) checked, {} finding(s), {} suppressed "
        "({} inline, {} baseline), {} error(s)".format(
            report.files_checked,
            len(report.findings),
            len(report.suppressed),
            sum(1 for _, how in report.suppressed if how.startswith("inline")),
            sum(1 for _, how in report.suppressed if how == "baseline"),
            len(report.errors),
        )
    )

    if args.report:
        Path(args.report).write_text(json.dumps(report.to_json(), indent=2) + "\n")

    return 0 if report.clean else 1
