"""The AST framework rules are written against.

One :class:`FileContext` is built per file and shared by every rule: it
parses once, annotates every node with its parent and enclosing-scope
qualname, collects inline suppression comments, and offers the small
expression-classification helpers (is this a set expression? does this
subtree mention name X?) that keep the per-rule checkers short.

A rule is a subclass of :class:`Rule` with a class-level ``id``,
``rationale`` and ``scope`` (a path-prefix filter), implementing
:meth:`Rule.check` as a generator of findings.  Rules see plain ast
nodes — there is no type inference here, deliberately: every rule is a
*syntactic discipline* chosen so that conforming code is obviously
conforming (the same philosophy as ruff's bugbear family), and anything
subtler belongs in the runtime suites the RULES.md catalog points at.
"""

from __future__ import annotations

import ast
import re
import tokenize
from io import StringIO
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

#: Inline suppression: ``# reprolint: disable=REP011,REP021 -- rationale``.
#: The rationale after ``--`` is mandatory; a bare disable is itself an
#: error (reported by the driver), keeping every suppression reviewed.
_DISABLE_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>[A-Z0-9, ]+?)\s*(?:--\s*(?P<why>.+?))?\s*$"
)


class InlineSuppression:
    __slots__ = ("line", "rules", "rationale")

    def __init__(self, line: int, rules: Tuple[str, ...], rationale: str):
        self.line = line
        self.rules = rules
        self.rationale = rationale


class FileContext:
    """Parsed file + the node annotations every rule shares."""

    def __init__(self, relpath: str, source: str):
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=relpath)
        self._parents: Dict[int, ast.AST] = {}
        self._qualnames: Dict[int, str] = {}
        self._annotate()
        self.suppressions: Dict[int, InlineSuppression] = {}
        self.bad_suppressions: List[int] = []
        self._collect_suppressions()
        #: Module-level names bound to set-like values (set()/frozenset()/
        #: WeakSet()/set literals) — the cheap "type inference" REP011
        #: uses to catch iteration over module-global registries.
        self.module_set_names: Set[str] = _module_set_names(self.tree)

    # -- construction ------------------------------------------------------
    def _annotate(self) -> None:
        stack: List[str] = []

        def visit(node: ast.AST) -> None:
            scoped = isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
            if scoped:
                stack.append(node.name)
            qualname = ".".join(stack)
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node
                self._qualnames[id(child)] = qualname
                visit(child)
            if scoped:
                stack.pop()

        self._qualnames[id(self.tree)] = ""
        visit(self.tree)

    def _collect_suppressions(self) -> None:
        try:
            tokens = tokenize.generate_tokens(StringIO(self.source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _DISABLE_RE.search(token.string)
                if match is None:
                    continue
                rules = tuple(
                    rule.strip() for rule in match.group("rules").split(",") if rule.strip()
                )
                rationale = (match.group("why") or "").strip()
                if not rationale:
                    self.bad_suppressions.append(token.start[0])
                    continue
                self.suppressions[token.start[0]] = InlineSuppression(
                    token.start[0], rules, rationale
                )
        except tokenize.TokenError:  # unterminated strings etc: no inline data
            pass

    # -- node services -----------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def qualname(self, node: ast.AST) -> str:
        """Enclosing ``Class.function`` scope of ``node`` ("" at module level)."""
        return self._qualnames.get(id(node), "")

    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        current = self.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parent(current)
        return None

    def walk(self, kinds=None) -> Iterator[ast.AST]:
        for node in ast.walk(self.tree):
            if kinds is None or isinstance(node, kinds):
                yield node


# ---------------------------------------------------------------------------
# Expression classification helpers
# ---------------------------------------------------------------------------

#: Callable names that build sets (the attribute form catches WeakSet()).
_SET_BUILDERS = {"set", "frozenset", "WeakSet"}
#: Wrappers that preserve the *order* of whatever they are given — seeing
#: through them keeps ``for x in list(some_set)`` flaggable.
_ORDER_PRESERVING_WRAPPERS = {"list", "tuple", "enumerate", "reversed", "iter"}


def call_name(node: ast.AST) -> Optional[str]:
    """The called name for ``f(...)`` or ``obj.f(...)``; None otherwise."""
    if not isinstance(node, ast.Call):
        return None
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def is_set_expression(node: ast.AST, module_set_names: Iterable[str] = ()) -> bool:
    """True when ``node`` evaluates to an unordered set, syntactically.

    Covers set literals, set comprehensions, ``set(...)`` /
    ``frozenset(...)`` / ``WeakSet(...)`` calls, names bound to one of
    those at module level, and any of the above seen through an
    order-preserving wrapper like ``list(...)``.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name) and node.id in module_set_names:
        return True
    name = call_name(node)
    if name in _SET_BUILDERS:
        return True
    if name in _ORDER_PRESERVING_WRAPPERS and isinstance(node, ast.Call) and node.args:
        return is_set_expression(node.args[0], module_set_names)
    return False


def _module_set_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for statement in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        if value is None or not is_set_expression(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def mentions_name(node: ast.AST, name: str) -> bool:
    """True when ``node``'s subtree reads the variable ``name``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == name:
            return True
    return False


def has_keyword(node: ast.Call, keyword: str, values: Optional[Iterable[str]] = None) -> bool:
    """True when the call passes ``keyword=`` (optionally one of ``values``)."""
    for item in node.keywords:
        if item.arg != keyword:
            continue
        if values is None:
            return True
        if isinstance(item.value, ast.Constant) and item.value.value in set(values):
            return True
    return False


# ---------------------------------------------------------------------------
# Rule base
# ---------------------------------------------------------------------------

class Rule:
    """One checker: a rule id, the invariant's rationale, and a scope.

    ``scope`` is a tuple of repo-relative path prefixes; empty means
    every scanned file.  ``check`` yields findings — use
    :func:`tools.reprolint.findings.make_finding` so context/snippet
    (the baseline key) are filled consistently.
    """

    id: str = "REP000"
    name: str = "rule"
    rationale: str = ""
    scope: Tuple[str, ...] = ()

    def applies(self, relpath: str) -> bool:
        if not self.scope:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scope)

    def check(self, ctx: FileContext):
        raise NotImplementedError
