"""ShapeSearch: shape-based exploration of trendlines (SIGMOD 2020 repro).

A from-scratch reproduction of Siddiqui et al.'s ShapeSearch system: the
ShapeQuery algebra, natural-language / regex / sketch front-ends, and
the optimized fuzzy-segmentation execution engine.

Quickstart::

    from repro import ShapeSearch

    session = ShapeSearch.from_csv("stocks.csv")
    prepared = session.prepare("up then down then up",
                               z="symbol", x="day", y="price")
    for match in prepared.run(k=5):
        print(match.key, match.score)

    future = prepared.submit(k=5)      # non-blocking; cancellable
    results = future.result()          # ResultSet: stats, plan, matches
"""

from repro.algebra.printer import to_regex
from repro.api import (
    PreparedSearch,
    SessionRegistry,
    ShapeSearch,
    TailSearch,
    parse_query,
)
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.cache import CacheStats, EngineCache, LRUCache
from repro.engine.control import ExecutionControl
from repro.engine.executor import ExecutionStats, Match, ShapeSearchEngine
from repro.engine.parallel import ParallelEngine, WorkerPool
from repro.engine.scoring import register_udp, temporary_udp, unregister_udp
from repro.engine.shm import ShmSession
from repro.errors import (
    AmbiguityError,
    DataError,
    ExecutionError,
    SearchCancelled,
    ShapeQuerySyntaxError,
    ShapeQueryValidationError,
    ShapeSearchDeprecationWarning,
    ShapeSearchError,
)
from repro.parser import parse as parse_regex
from repro.results import ResultSet, SearchFuture

__version__ = "1.1.0"

__all__ = [
    "ShapeSearch",
    "PreparedSearch",
    "TailSearch",
    "SessionRegistry",
    "ResultSet",
    "SearchFuture",
    "ExecutionControl",
    "parse_query",
    "parse_regex",
    "to_regex",
    "Table",
    "VisualParams",
    "Match",
    "ShapeSearchEngine",
    "ParallelEngine",
    "WorkerPool",
    "ShmSession",
    "EngineCache",
    "LRUCache",
    "CacheStats",
    "ExecutionStats",
    "register_udp",
    "unregister_udp",
    "temporary_udp",
    "ShapeSearchError",
    "ShapeQuerySyntaxError",
    "ShapeQueryValidationError",
    "ShapeSearchDeprecationWarning",
    "AmbiguityError",
    "ExecutionError",
    "SearchCancelled",
    "DataError",
    "__version__",
]
