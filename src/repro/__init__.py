"""ShapeSearch: shape-based exploration of trendlines (SIGMOD 2020 repro).

A from-scratch reproduction of Siddiqui et al.'s ShapeSearch system: the
ShapeQuery algebra, natural-language / regex / sketch front-ends, and
the optimized fuzzy-segmentation execution engine.

Quickstart::

    from repro import ShapeSearch

    session = ShapeSearch.from_csv("stocks.csv")
    for match in session.search("up then down then up",
                                z="symbol", x="day", y="price", k=5):
        print(match.key, match.score)
"""

from repro.algebra.printer import to_regex
from repro.api import ShapeSearch, parse_query
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.cache import CacheStats, EngineCache, LRUCache
from repro.engine.executor import ExecutionStats, Match, ShapeSearchEngine
from repro.engine.parallel import ParallelEngine, WorkerPool
from repro.engine.scoring import register_udp, temporary_udp, unregister_udp
from repro.engine.shm import ShmSession
from repro.errors import (
    AmbiguityError,
    DataError,
    ExecutionError,
    ShapeQuerySyntaxError,
    ShapeQueryValidationError,
    ShapeSearchError,
)
from repro.parser import parse as parse_regex

__version__ = "1.0.0"

__all__ = [
    "ShapeSearch",
    "parse_query",
    "parse_regex",
    "to_regex",
    "Table",
    "VisualParams",
    "Match",
    "ShapeSearchEngine",
    "ParallelEngine",
    "WorkerPool",
    "ShmSession",
    "EngineCache",
    "LRUCache",
    "CacheStats",
    "ExecutionStats",
    "register_udp",
    "unregister_udp",
    "temporary_udp",
    "ShapeSearchError",
    "ShapeQuerySyntaxError",
    "ShapeQueryValidationError",
    "AmbiguityError",
    "ExecutionError",
    "DataError",
    "__version__",
]
