"""The ShapeSearch session: the front-end/back-end seam of Figure 3.

:class:`ShapeSearch` is what a user of this library holds: load a
dataset, point at the z/x/y attributes, and search with any of the three
specification mechanisms — natural language, the regex dialect, or a
sketch — exactly the interchangeable-input design of §2.  The serving
API is built around three objects::

    from repro import ShapeSearch

    session = ShapeSearch.from_csv("genes.csv")
    prepared = session.prepare(                 # parse + compile once
        "rising, then going down, and then rising again",
        z="gene", x="time", y="expression",
    )
    results = prepared.run(k=5)                 # blocking -> ResultSet
    print(results.stats.scored, results.plan)

    future = prepared.submit(k=5)               # non-blocking
    results = future.result(timeout=30)         # -> the same ResultSet

:class:`PreparedSearch` binds a parsed+compiled query to the session's
visual context, so repeated interactive calls skip parse and compile by
construction; :class:`~repro.results.SearchFuture` is the cancellable
handle of the submit paths; :class:`~repro.results.ResultSet` replaces
the bare ``List[Match]`` everywhere (it still *is* a sequence of
matches, so seed-era code keeps working).

Strings are parsed as regex first and fall back to natural language, so
``session.prepare("[p=up][p=down]", ...)`` and
``session.prepare("up then down", ...)`` both work.  The historical
one-shot ``search``/``search_many`` entry points remain as deprecated
shims over the prepared path.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.algebra.nodes import Node
from repro.data.table import Table, canonical_group_key
from repro.data.visual_params import VisualParams
from repro.engine.chains import CompiledQuery
from repro.engine.executor import Match, ShapeSearchEngine  # noqa: F401  (Match re-exported)
from repro.errors import (
    DataError,
    ExecutionError,
    SearchCancelled,
    ShapeQuerySyntaxError,
    warn_deprecated,
)
from repro.nlp.tagger import EntityTagger
from repro.nlp.translator import translate
from repro.parser import parse as parse_regex
from repro.results import ResultSet, SearchFuture
from repro.sketch.canvas import Canvas
from repro.sketch.parser import parse_sketch

QueryLike = Union[str, Node, CompiledQuery]

#: Keyword names :meth:`ShapeSearch.from_arrays` routes to the session
#: (everything else is a column array).  Mirrors ``ShapeSearch.__init__``.
_SESSION_OPTIONS = (
    "engine", "tagger", "workers", "cache", "backend",
    "quantifier_threshold", "kernel", "generation", "index", "precision",
    "store",
)


def parse_query(query: QueryLike, tagger: Optional[EntityTagger] = None) -> Node:
    """Parse any supported query form into a ShapeQuery AST.

    Strings are tried as the regex dialect first; on a syntax error the
    natural-language pipeline takes over (the paper's interchangeable
    front-ends).
    """
    if isinstance(query, Node):
        return query
    if isinstance(query, CompiledQuery):
        return query.node
    if not isinstance(query, str):
        raise ShapeQuerySyntaxError("unsupported query type {!r}".format(type(query)))
    stripped = query.strip()
    if stripped.startswith(("[", "(", "!")):
        return parse_regex(stripped)
    try:
        return parse_regex(stripped)
    except ShapeQuerySyntaxError:
        return translate(stripped, tagger=tagger).query


class PreparedSearch:
    """A query parsed, compiled and bound to visual context — once.

    Created by :meth:`ShapeSearch.prepare`.  Parsing (NL/regex/sketch →
    AST) and compilation (normalize → validate → flatten, through the
    session's plan cache) happen at prepare time; every subsequent
    :meth:`run`/:meth:`submit` reuses the bound
    :class:`~repro.engine.chains.CompiledQuery` and
    :class:`~repro.data.visual_params.VisualParams`, sharing the
    session's trendline/plan caches by construction.  This is the
    serving-tier shape: prepare per query template, run per request.

    Prepared searches are immutable descriptions — cheap to hold, safe
    to run concurrently, and reusable across any number of calls.
    """

    __slots__ = ("table", "engine", "node", "compiled", "params")

    def __init__(self, table: Table, engine: ShapeSearchEngine, node: Node,
                 compiled: CompiledQuery, params: VisualParams):
        self.table = table
        self.engine = engine
        #: The parsed ShapeQuery AST (the correction-panel view's source).
        self.node = node
        #: The compiled plan every run reuses.
        self.compiled = compiled
        #: The bound visual context (z/x/y, filters, aggregate, bin width).
        self.params = params

    def run(self, k: int = 10, workers: Optional[int] = None) -> ResultSet:
        """Execute, blocking: the top-``k`` matches as a :class:`ResultSet`.

        ``workers`` overrides the engine's worker count for this call
        (results are identical for any worker count).
        """
        return self.engine.run(
            self.table, self.params, self.compiled, k=k, workers=workers
        )

    def submit(self, k: int = 10, workers: Optional[int] = None,
               progress=None) -> SearchFuture:
        """Execute without blocking: a cancellable :class:`SearchFuture`.

        Returns as soon as the execution is handed to the engine's
        dispatcher — before scoring starts, on any backend.  ``progress``
        is called as ``progress(completed_shards, total_shards)`` as the
        Score stage advances; ``future.cancel()`` drops un-dispatched
        shards cooperatively and ``future.result()`` then raises
        :class:`~repro.errors.SearchCancelled`.
        """
        return self.engine.submit(
            self.table, self.params, self.compiled, k=k, workers=workers,
            progress=progress,
        )

    def explain(self) -> str:
        """The canonical regex form of the query — the correction panel."""
        from repro.algebra.printer import to_regex

        return to_regex(self.node)

    def explain_plan(self, k: int = 10, workers: Optional[int] = None) -> str:
        """The physical operator chain :meth:`run` would execute.

        Planning only — nothing is generated or scored — and the text is
        exactly what the resulting :attr:`ResultSet.plan` will carry
        after an actual run with the same arguments.
        """
        return self.engine.explain_plan(
            self.table, self.params, self.compiled, k=k, workers=workers
        )

    def __repr__(self) -> str:
        return "PreparedSearch({!r}, z={!r}, x={!r}, y={!r})".format(
            self.explain(), self.params.z, self.params.x, self.params.y
        )


def _same_key(a, b) -> bool:
    """Group-key equality across process boundaries (NaN-aware)."""
    if a is b:
        return True
    try:
        if a == b:
            return True
    except Exception:
        return False
    return (
        isinstance(a, float) and isinstance(b, float) and a != a and b != b
    )


class TailSearch(PreparedSearch):
    """A long-lived prepared search whose results follow the table's tail.

    Created by :meth:`ShapeSearch.tail`.  Where :class:`PreparedSearch`
    executes against a table snapshot, a TailSearch *stays subscribed*:
    :meth:`append_rows` appends to the bound table and refreshes the
    ranked results by re-scoring **only the groups the appended rows
    touched** — unaffected groups keep their cached
    :class:`~repro.engine.dynamic.QueryResult` from earlier refreshes.
    The refreshed :class:`~repro.results.ResultSet` is byte-identical
    (scores, placements, tie-breaks) to a cold ``prepared.run()`` over
    the final table, because affected groups are rebuilt by exactly the
    cold code path on exactly the same bytes and the incremental merge
    re-ranks under the cold plan's total order.

    On the process backend with shared memory, each refresh publishes
    only the appended row range as a delta segment chained onto the
    previous publication (:meth:`repro.engine.shm.ShmSession.acquire_append`),
    so the per-refresh transport cost is proportional to the delta, not
    the table.  Workers extend resident state — the attached table, the
    grouping index, and (for ``algorithm="dp"``) the retained DP tables
    that make the suffix re-solve a work-skip.

    A refresh is atomic with respect to failure: a cancelled or failed
    refresh leaves every cached result, the revision counter, and the
    scored-row watermark untouched, so the next :meth:`refresh` simply
    re-consumes the same delta.
    """

    __slots__ = (
        "k", "_workers", "_progress", "_normalize_y", "_plan",
        "_use_pruning", "_merge", "_scored_rows", "_base_table", "_order",
        "_key_index", "_entries", "_trendlines", "_revision", "_results",
        "_lock",
    )

    def __init__(self, table: Table, engine: ShapeSearchEngine, node: Node,
                 compiled: CompiledQuery, params: VisualParams, k: int = 10,
                 workers: Optional[int] = None, progress=None):
        from repro.engine.pipeline import IncrementalMerge, query_constrains_y
        from repro.engine.pruning import is_prunable
        from repro.engine.pushdown import plan_pushdown

        super().__init__(table, engine, node, compiled, params)
        for name in (params.z, params.x, params.y):
            if name not in table:
                raise DataError(
                    "visual parameter column {!r} not in table (columns: {})"
                    .format(name, table.column_names)
                )
        self.k = k
        self._workers = workers
        self._progress = progress
        self._normalize_y = not query_constrains_y(compiled)
        self._plan = plan_pushdown(compiled) if engine.enable_pushdown else None
        # Mirror plan_pipeline's pruning predicate: the cold plan's
        # *selection* tie-break is (score, str(key)) under the pruning
        # driver and (score, position) everywhere else, and the
        # incremental merge must re-rank under the same total order.
        self._use_pruning = (
            engine.enable_pruning
            and engine.algorithm == "segment-tree"
            and is_prunable(compiled)
        )
        self._merge = IncrementalMerge(
            k, tie="key" if self._use_pruning else "position"
        )
        #: Rows already reflected in the cached per-group results.
        self._scored_rows = 0
        #: The table of the last *successful* refresh — the delta base
        #: the next shm publication chains onto.
        self._base_table: Optional[Table] = None
        #: Group key per group index, in the grouping's first-seen order
        #: (appends never reorder existing keys; new keys append).
        self._order: list = []
        self._key_index: dict = {}
        #: Canonical key -> latest QueryResult (None: degenerate group).
        self._entries: dict = {}
        #: Canonical key -> latest Trendline (for presenting matches).
        self._trendlines: dict = {}
        self._revision = -1
        self._results: Optional[ResultSet] = None
        self._lock = threading.RLock()
        self.refresh()

    # -- observation ---------------------------------------------------------
    @property
    def results(self) -> ResultSet:
        """The ResultSet of the last successful refresh."""
        with self._lock:
            return self._results

    @property
    def revision(self) -> int:
        """Applied-refresh counter (0 after construction)."""
        with self._lock:
            return self._revision

    @staticmethod
    def state_stats() -> dict:
        """Occupancy of the process-wide retained-DP-state cache.

        Returns ``{"entries", "bytes", "budget", "evictions"}`` for the
        tail-state cache shared by every TailSearch in this process; see
        :func:`repro.engine.pipeline.set_tail_state_budget` to bound it.
        """
        from repro.engine.pipeline import tail_state_stats

        return tail_state_stats()

    # -- the streaming surface -----------------------------------------------
    def append_rows(self, records: Sequence[dict]) -> ResultSet:
        """Append ``records`` to the bound table and refresh the results.

        The table append is incremental (digest extension, no rehash of
        resident columns) and the refresh re-scores only the groups whose
        filtered z values occur in the appended rows.  Returns the
        refreshed ResultSet; :attr:`ResultSet.revision` identifies which
        table state it reflects.
        """
        with self._lock:
            self.table = self.table.append_rows(records)
            return self._refresh_locked(None)

    def refresh(self, control=None) -> ResultSet:
        """Bring the results up to date with the bound table.

        No-op (returns the cached ResultSet) when no rows were appended
        since the last successful refresh.  ``control`` is an optional
        :class:`~repro.engine.control.ExecutionControl`: a cooperative
        cancel drops un-dispatched re-score shards and the refresh
        raises :class:`~repro.errors.SearchCancelled` *without touching
        any cached state* — retrying re-consumes the same delta.
        """
        with self._lock:
            return self._refresh_locked(control)

    # -- internals -----------------------------------------------------------
    def _refresh_locked(self, control) -> ResultSet:
        from repro.engine.control import ExecutionControl

        table = self.table
        start = self._scored_rows
        if self._results is not None and len(table) == start:
            return self._results
        appended = len(table) - start if self._results is not None else 0
        indices = self._affected_indices(table, start)
        if control is None:
            control = ExecutionControl(progress=self._progress)
        scored = self._dispatch(table, indices, control)
        if control.cancelled:
            completed, total, dropped = control.snapshot()
            raise SearchCancelled(
                "tail refresh cancelled: {} of {} shard(s) completed, "
                "{} dropped".format(completed, total, dropped)
            )
        # Dispatch succeeded in full: apply the re-scored groups, then
        # advance the watermark.  (Nothing above mutates cached state.)
        for index, key, result, trendline in scored:
            expected = self._order[index] if index < len(self._order) else None
            if not _same_key(expected, key):
                raise ExecutionError(
                    "tail grouping drift: group #{} is {!r} in the session "
                    "but {!r} in the worker grouping".format(
                        index, expected, key
                    )
                )
            ckey = canonical_group_key(expected)
            self._entries[ckey] = result
            if trendline is None:
                self._trendlines.pop(ckey, None)
            else:
                self._trendlines[ckey] = trendline
        self._scored_rows = len(table)
        self._base_table = table
        self._revision += 1
        self._results = self._merge_results(control, appended, len(indices))
        return self._results

    def _affected_indices(self, table: Table, start: int) -> list:
        """Group indices whose rows the slice ``[start:]`` touched.

        New z values are registered in the session's group order as a
        side effect — first-seen over the *filtered* delta, which is
        exactly where they land in a cold grouping of the full table
        (their first surviving row is in the delta).  Registration is
        idempotent, so a failed refresh retried over the same delta
        resolves to the same indices.
        """
        from repro.data.filters import apply_filters

        delta_columns = {
            name: table.column(name)[start:] for name in table.column_names
        }
        filtered = apply_filters(
            Table.from_shared(delta_columns), self.params.filters
        )
        indices = []
        seen = set()
        for value in filtered.column(self.params.z).tolist():
            key = canonical_group_key(value)
            if key in seen:
                continue
            seen.add(key)
            index = self._key_index.get(key)
            if index is None:
                index = len(self._order)
                self._order.append(key)
                self._key_index[key] = index
            indices.append(index)
        indices.sort()
        return indices

    def _dispatch(self, table: Table, indices: list, control) -> list:
        """Re-score ``indices`` and return (index, key, result, trendline)."""
        from repro.engine.parallel import dispatch_tail_scores
        from repro.engine.pipeline import _required_columns, score_tail_groups

        engine = self.engine
        if not indices:
            control.begin(0)
            return []
        workers = (
            engine.workers if self._workers is None
            else engine._check_workers(self._workers)
        )
        if workers <= 1:
            control.begin(1)
            if control.cancelled:
                control.drop(1)
                return []
            scored = score_tail_groups(
                table, self.params, self._normalize_y, self._plan,
                self.compiled, indices, algorithm=engine.algorithm,
                kernel=engine.kernel,
            )
            control.shard_completed()
            return scored
        pool = engine._resolve_pool(workers)
        table_ref, query_ref = table, self.compiled
        session = pinned = None
        if engine.backend == "process" and engine.shm:
            session = engine._shm_session()
            table_ref, query_ref, pinned = session.acquire_append(
                table, self._base_table, self.compiled,
                columns=_required_columns(table, self.params),
            )
        try:
            return dispatch_tail_scores(
                table_ref, self.params, self._normalize_y, self._plan,
                query_ref, indices, pool, algorithm=engine.algorithm,
                kernel=engine.kernel, control=control,
                chunk_size=engine.chunk_size,
            )
        finally:
            if session is not None:
                session.unpin(*pinned)

    def _merge_results(self, control, appended: int, rescored: int) -> ResultSet:
        from repro.engine.executor import ExecutionStats, _to_matches

        entries = []
        for key in self._order:
            result = self._entries.get(canonical_group_key(key))
            if result is None:
                continue
            # Compacted position = this group's rank among surviving
            # trendlines in group order — the cold enumeration order the
            # (score, position) selection tie-break is defined over.
            entries.append((result.score, len(entries), key, result))
        top = self._merge.merge(entries, control)
        items = []
        for score, position, key, result in top:
            trendline = self._trendlines.get(canonical_group_key(key))
            if trendline is not None:
                items.append((score, position, trendline, result))
        stats = ExecutionStats(
            candidates=len(entries),
            extracted=len(entries),
            scored=rescored,
            shards=control.total or 0,
            generation="tail",
            appended_rows=appended,
        )
        plan_text = (
            "ScanDelta(rows={}, groups={})\n"
            "  -> RescoreAffected(algorithm={}, workers={})\n"
            "  -> IncrementalMerge(k={}, tie={})".format(
                appended, rescored, self.engine.algorithm,
                self.engine.workers if self._workers is None else self._workers,
                self.k, self._merge.tie,
            )
        )
        return ResultSet(
            _to_matches(items), stats=stats, plan=plan_text,
            revision=self._revision,
        )

    def __repr__(self) -> str:
        return "TailSearch({!r}, z={!r}, rows={}, revision={})".format(
            self.explain(), self.params.z, len(self.table), self._revision
        )


class ShapeSearch:
    """An interactive exploration session over one table.

    ``workers``/``backend``/``cache`` configure the default engine:
    ``workers`` > 1 shards candidate scoring across a pool (see
    :mod:`repro.engine.parallel`), ``backend="process"`` adds real
    multi-core scaling — the session publishes its candidate collections
    into shared memory once (:mod:`repro.engine.shm`) and workers keep
    them resident, so shards travel as index ranges — and ``cache=True``
    keeps generated trendlines and compiled plans across searches so
    repeated interactive queries skip EXTRACT/GROUP entirely.
    ``quantifier_threshold`` overrides the occurrence floor of §5.2's
    quantifier scoring (default 0.3), ``kernel`` picks the DP transition
    kernel (``"matrix"`` default, ``"loop"`` the byte-identical
    reference), and ``generation`` places EXTRACT/GROUP — ``"parent"``
    materializes trendlines in this process, ``"worker"`` generates them
    inside the pool workers from the shared table so generation
    parallelizes with scoring, ``"auto"`` (default) picks worker-side on
    the process backend when no cache is configured.  ``index=True``
    turns on the persistent shape index — an IndexPrune stage discards
    candidate trendlines whose pyramid upper bound cannot reach the
    top-k floor before the DP ever runs them; results stay byte-identical
    to an unindexed search.  ``precision="float32"`` opts into
    approximate single-precision scoring (explicitly outside the
    byte-identity contract).  ``store=`` names an artifact-store
    directory (default: the ``REPRO_ARTIFACT_DIR`` environment
    variable): shape indexes persist there in a memory-mapped on-disk
    format, so a fresh process serves ``index=True`` queries without
    rebuilding — see the README's "Artifact store" section.  All are
    ignored when an explicit ``engine`` is passed.

    Sessions own OS resources once a parallel search ran (worker
    processes, dispatcher threads, shared-memory segments): call
    :meth:`close` or use the session as a context manager.  A forgotten
    session is still cleaned up at garbage collection / interpreter
    exit, but deterministic release beats relying on the safety net.
    """

    def __init__(self, table: Table, engine: Optional[ShapeSearchEngine] = None,
                 tagger: Optional[EntityTagger] = None,
                 workers: Optional[int] = 1, cache=None, backend: str = "thread",
                 quantifier_threshold: Optional[float] = None,
                 kernel: str = "matrix", generation: str = "auto",
                 index: bool = False, precision: str = "float64",
                 store: Optional[str] = None):
        self.table = table
        self.engine = engine if engine is not None else ShapeSearchEngine(
            workers=workers, cache=cache, backend=backend,
            quantifier_threshold=quantifier_threshold, kernel=kernel,
            generation=generation, index=index, precision=precision,
            store=store,
        )
        self.tagger = tagger

    def close(self) -> None:
        """Release worker pools and shared-memory segments (idempotent)."""
        self.engine.close()

    def __enter__(self) -> "ShapeSearch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- loading ------------------------------------------------------------
    @classmethod
    def from_csv(cls, path: str, **kwargs) -> "ShapeSearch":
        """Open a session over a CSV file."""
        return cls(Table.from_csv(path), **kwargs)

    @classmethod
    def from_json(cls, path: str, **kwargs) -> "ShapeSearch":
        """Open a session over a JSON file (list of records)."""
        return cls(Table.from_json(path), **kwargs)

    @classmethod
    def from_records(cls, records, lenient: bool = False, **kwargs) -> "ShapeSearch":
        """Open a session over in-memory records.

        Records whose keys do not match the schema of the first record
        raise :class:`~repro.errors.DataError`; pass ``lenient=True`` to
        restore the historical pad-with-None/NaN behavior.
        """
        return cls(Table.from_records(records, lenient=lenient), **kwargs)

    @classmethod
    def from_arrays(cls, columns=None, **kwargs) -> "ShapeSearch":
        """Open a session over keyword column arrays.

        Session/engine options (``engine``, ``tagger``, ``workers``,
        ``cache``, ``backend``, ``quantifier_threshold``, ``kernel``,
        ``generation``, ``index``, ``precision``, ``store``) are routed
        to the session; every *other* keyword
        is a column array — so
        ``ShapeSearch.from_arrays(z=..., x=..., y=..., backend="process",
        workers=4)`` builds a process-backend session, instead of
        swallowing the options as columns.  A column whose name collides
        with an option (a column literally called ``"workers"``) must be
        passed through the ``columns`` mapping, which is merged with the
        keyword arrays and always wins the column interpretation — an
        array-valued keyword that matches an option name is rejected
        loudly rather than silently misconfiguring the engine.
        """
        options = {}
        for name in _SESSION_OPTIONS:
            if name in kwargs:
                value = kwargs.pop(name)
                if isinstance(value, (np.ndarray, list, tuple)):
                    raise DataError(
                        "from_arrays keyword {!r} names a session option but "
                        "holds an array; pass column arrays that collide with "
                        "option names via the columns= mapping".format(name)
                    )
                options[name] = value
        arrays = dict(kwargs)
        if columns:
            arrays.update(columns)
        return cls(Table.from_arrays(**arrays), **options)

    # -- the prepared/submit API --------------------------------------------
    def prepare(
        self,
        query: QueryLike,
        z: str,
        x: str,
        y: str,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
    ) -> PreparedSearch:
        """Parse + compile ``query`` once and bind the visual context.

        The entry point of the serving API: the returned
        :class:`PreparedSearch` runs (or submits) any number of times
        without re-parsing or re-compiling, and shares this session's
        caches by construction.  Accepts every query form
        :func:`parse_query` does — NL, the regex dialect, a ShapeQuery
        AST, or an already compiled query.
        """
        node = parse_query(query, tagger=self.tagger)
        compiled = self.engine.compile(node)
        params = VisualParams(
            z=z, x=x, y=y, filters=tuple(filters), aggregate=aggregate,
            bin_width=bin_width,
        )
        return PreparedSearch(self.table, self.engine, node, compiled, params)

    def tail(
        self,
        query: QueryLike,
        z: str,
        x: str,
        y: str,
        k: int = 10,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
        workers: Optional[int] = None,
        progress=None,
    ) -> TailSearch:
        """Subscribe a query to the table's tail: a live top-k.

        Parses + compiles once (like :meth:`prepare`) and runs an
        initial full pass; thereafter ``tail.append_rows(records)``
        appends to the bound table and refreshes the ranked results by
        re-scoring only the groups the new rows touched — with results
        byte-identical to a cold run over the full table at every
        revision.  ``progress`` observes each refresh's re-score shards
        as ``progress(completed, total)``.
        """
        node = parse_query(query, tagger=self.tagger)
        compiled = self.engine.compile(node)
        params = VisualParams(
            z=z, x=x, y=y, filters=tuple(filters), aggregate=aggregate,
            bin_width=bin_width,
        )
        return TailSearch(
            self.table, self.engine, node, compiled, params, k=k,
            workers=workers, progress=progress,
        )

    def submit_many(
        self,
        queries: Sequence[QueryLike],
        z: str,
        x: str,
        y: str,
        k: int = 10,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
        workers: Optional[int] = None,
        progress=None,
    ) -> List[SearchFuture]:
        """Dispatch a batch without blocking: one future per query.

        The whole batch is parsed + compiled up front, then driven by a
        single dispatcher so generation work is amortized exactly as in
        the blocking batch path; futures resolve in submission order,
        and cancelling one affects only that query.  ``progress`` is
        called as ``progress(query_index, completed, total)``.
        """
        nodes = [parse_query(query, tagger=self.tagger) for query in queries]
        params = VisualParams(
            z=z, x=x, y=y, filters=tuple(filters), aggregate=aggregate,
            bin_width=bin_width,
        )
        compiled = [self.engine.compile(node) for node in nodes]
        return self.engine.submit_many(
            self.table, params, compiled, k=k, workers=workers, progress=progress
        )

    # -- front-ends ----------------------------------------------------------
    def search_sketch(
        self,
        pixels: Sequence[Tuple[float, float]],
        z: str,
        x: str,
        y: str,
        canvas: Optional[Canvas] = None,
        mode: str = "precise",
        k: int = 10,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> ResultSet:
        """Search with a drawn polyline (precise or blurry interpretation).

        Routed through :meth:`prepare` like the other front-ends, so the
        sketch path has full parity with text queries: duplicate-x
        ``aggregate``, binning by ``bin_width`` and per-call ``workers``
        all apply.  Use :meth:`prepare` directly (with
        :func:`repro.sketch.parser.parse_sketch`) to reuse a sketch
        across calls or submit it asynchronously.
        """
        node = parse_sketch(pixels, canvas=canvas, mode=mode)
        prepared = self.prepare(
            node, z=z, x=x, y=y, filters=filters, aggregate=aggregate,
            bin_width=bin_width,
        )
        result = prepared.run(k=k, workers=workers)
        # Not deprecated, but the seed-era call updated last_stats;
        # keep that visible side effect for code that inspected it.
        self.engine.last_stats = result.stats
        return result

    # -- deprecated one-shot shims -------------------------------------------
    def search(
        self,
        query: QueryLike,
        z: str,
        x: str,
        y: str,
        k: int = 10,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> ResultSet:
        """Deprecated: use ``prepare(...).run(...)``.

        One-shot top-k search, kept as a thin shim over the prepared
        path: identical matches in identical order, now as a
        list-compatible :class:`ResultSet`.
        """
        warn_deprecated(
            "ShapeSearch.search()", "ShapeSearch.prepare(...).run(...)"
        )
        prepared = self.prepare(
            query, z=z, x=x, y=y, filters=filters, aggregate=aggregate,
            bin_width=bin_width,
        )
        result = prepared.run(k=k, workers=workers)
        self.engine.last_stats = result.stats
        return result

    def search_many(
        self,
        queries: Sequence[QueryLike],
        z: str,
        x: str,
        y: str,
        k: int = 10,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> List[ResultSet]:
        """Deprecated: use :meth:`submit_many` (or prepared runs).

        Batch search, kept as a blocking shim: one ResultSet per query,
        in order, with compilation and EXTRACT/GROUP amortized across
        the batch exactly as before.
        """
        warn_deprecated(
            "ShapeSearch.search_many()",
            "ShapeSearch.submit_many(...) (gather with future.result())",
        )
        nodes = [parse_query(query, tagger=self.tagger) for query in queries]
        params = VisualParams(
            z=z, x=x, y=y, filters=tuple(filters), aggregate=aggregate,
            bin_width=bin_width,
        )
        results = self.engine.run_many(
            self.table, params, nodes, k=k, workers=workers
        )
        if results:
            self.engine.last_stats = results[-1].stats
        return results

    # -- identity -------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """The bound table's content fingerprint (the registry address)."""
        from repro.engine.cache import table_fingerprint

        return table_fingerprint(self.table)

    # -- inspection -----------------------------------------------------------
    def explain(self, query: QueryLike) -> str:
        """The canonical regex form of a query — the correction panel view."""
        from repro.algebra.printer import to_regex

        return to_regex(parse_query(query, tagger=self.tagger))

    def explain_plan(
        self,
        query: QueryLike,
        z: str,
        x: str,
        y: str,
        k: int = 10,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> str:
        """The physical operator chain a :meth:`PreparedSearch.run` would run.

        Renders the staged pipeline (``ScanTable → Extract/Group → Score
        → MergeTopK``) with the implementation the planner picked per
        stage — parent- vs worker-side generation, sequential vs
        parallel scoring, the shared-memory transport.  Planning only:
        nothing is generated or scored.
        """
        prepared = self.prepare(
            query, z=z, x=x, y=y, filters=filters, aggregate=aggregate,
            bin_width=bin_width,
        )
        return prepared.explain_plan(k=k, workers=workers)


class SessionRegistry:
    """A bounded, fingerprint-addressed pool of open sessions.

    The serving layer's table tier: clients ``POST /v1/tables`` a table
    *once*, the registry opens a :class:`ShapeSearch` session over it,
    and every later request addresses the session by the table's content
    fingerprint — requests never re-ship data the server already holds.
    Publishing the same content twice (any client, any process restart
    of the *client*) resolves to the same fingerprint and reuses the
    resident session, caches and all.

    The pool is LRU-bounded at ``capacity`` sessions because each one
    may own real OS resources (worker processes, shared-memory segments,
    mapped artifacts).  An evicted session is :meth:`ShapeSearch.close`\\ d
    and each registered eviction hook is called as ``hook(fingerprint,
    session)`` *after* the close — the serving layer hooks artifact-store
    GC (:func:`repro.engine.artifacts.prune`) here, so disk follows the
    same budget discipline as memory.  Hook errors are swallowed:
    eviction is a background concern and must not fail the publish that
    triggered it.

    Requests that *use* a session hold a lease: :meth:`checkout`
    increments the session's refcount (and promotes it), :meth:`release`
    decrements it.  Evicting a leased session — a concurrent
    :meth:`publish` pushing it out, or :meth:`close` — defers the
    :meth:`ShapeSearch.close` until the last lease is released, so an
    in-flight search never has its worker pools or shared-memory
    segments torn down underneath it.  :meth:`get` is the lease-free
    lookup for direct library use where the caller owns the lifecycle.

    ``session_options`` are the keyword arguments every opened session
    is constructed with (``workers=``, ``backend=``, ``index=``,
    ``store=`` ...), fixed at registry construction so all tenants get
    the same engine configuration.
    """

    def __init__(self, capacity: int = 8, **session_options) -> None:
        if capacity < 1:
            raise ValueError(
                "registry capacity must be >= 1, got {}".format(capacity)
            )
        self.capacity = capacity
        self.session_options = dict(session_options)
        from collections import OrderedDict

        self._sessions: "OrderedDict[str, ShapeSearch]" = OrderedDict()
        self._lock = threading.Lock()
        self._evict_hooks: list = []
        self._closed = False
        #: Live leases per session (id(session) -> count); a session is
        #: only closed when its count is zero.
        self._refs: Dict[int, int] = {}
        #: Sessions evicted while leased, awaiting their last release.
        self._draining: List[Tuple[str, ShapeSearch]] = []

    # -- eviction -------------------------------------------------------------
    def add_evict_hook(self, hook) -> None:
        """Call ``hook(fingerprint, session)`` after each eviction/close."""
        if hook not in self._evict_hooks:
            self._evict_hooks.append(hook)

    def _run_evictions(self, evicted) -> None:
        for fingerprint, session in evicted:
            try:
                session.close()
            except Exception:
                pass
            for hook in self._evict_hooks:
                try:
                    hook(fingerprint, session)
                except Exception:
                    pass

    def _evict_or_drain(self, fingerprint: str, session: ShapeSearch, evicted) -> None:
        """Route one evicted session: close now, or park until released.

        Caller holds ``self._lock``.  A leased session moves to the
        drain list (closed by the final :meth:`release`); an idle one is
        appended to ``evicted`` for the caller to close outside the
        lock.
        """
        if self._refs.get(id(session), 0) > 0:
            self._draining.append((fingerprint, session))
        else:
            evicted.append((fingerprint, session))

    # -- the registry surface -------------------------------------------------
    def publish(self, table: Table) -> str:
        """Register ``table`` (idempotent); returns its fingerprint address.

        Re-publishing resident content is a cheap promote-to-front; new
        content opens a session with the registry's ``session_options``
        and may evict the least-recently-used session to stay within
        ``capacity``.
        """
        from repro.engine.cache import table_fingerprint

        fingerprint = table_fingerprint(table)
        evicted = []
        with self._lock:
            if self._closed:
                raise ExecutionError("session registry is closed")
            if fingerprint in self._sessions:
                self._sessions.move_to_end(fingerprint)
                return fingerprint
            self._sessions[fingerprint] = ShapeSearch(
                table, **self.session_options
            )
            while len(self._sessions) > self.capacity:
                self._evict_or_drain(*self._sessions.popitem(last=False), evicted)
        self._run_evictions(evicted)
        return fingerprint

    def get(self, fingerprint: str) -> ShapeSearch:
        """The session holding ``fingerprint``; :class:`DataError` if absent.

        A lookup promotes the session (it is in use), mirroring
        :class:`~repro.engine.cache.LRUCache` recency semantics.
        """
        with self._lock:
            session = self._sessions.get(fingerprint)
            if session is not None:
                self._sessions.move_to_end(fingerprint)
        if session is None:
            raise DataError(
                "unknown table fingerprint {!r}: publish the table first "
                "(POST /v1/tables)".format(fingerprint)
            )
        return session

    # -- leases ---------------------------------------------------------------
    def checkout(self, fingerprint: str) -> ShapeSearch:
        """Like :meth:`get`, but the session is leased until :meth:`release`.

        While at least one lease is live, a concurrent eviction (LRU
        pressure from :meth:`publish`, or :meth:`close`) defers the
        session close instead of tearing down worker pools and shared
        memory under an in-flight search.  Every successful checkout
        must be paired with exactly one :meth:`release`.
        """
        with self._lock:
            session = self._sessions.get(fingerprint)
            if session is not None:
                self._sessions.move_to_end(fingerprint)
                key = id(session)
                self._refs[key] = self._refs.get(key, 0) + 1
        if session is None:
            raise DataError(
                "unknown table fingerprint {!r}: publish the table first "
                "(POST /v1/tables)".format(fingerprint)
            )
        return session

    def release(self, session: Optional[ShapeSearch]) -> None:
        """Drop one lease; closes the session if it was evicted meanwhile.

        ``None`` is accepted (and ignored) so callers can release
        unconditionally in a ``finally``.
        """
        if session is None:
            return
        to_close: List[Tuple[str, ShapeSearch]] = []
        with self._lock:
            key = id(session)
            remaining = self._refs.get(key, 0) - 1
            if remaining > 0:
                self._refs[key] = remaining
            else:
                self._refs.pop(key, None)
                to_close = [
                    entry for entry in self._draining if entry[1] is session
                ]
                if to_close:
                    self._draining = [
                        entry for entry in self._draining if entry[1] is not session
                    ]
        self._run_evictions(to_close)

    def fingerprints(self) -> List[str]:
        """Resident fingerprints, least- to most-recently used."""
        with self._lock:
            return list(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._sessions

    def close(self) -> None:
        """Evict (and close) every session; further publishes raise.

        Leased sessions drain first: their close runs when the last
        :meth:`release` lands, not while a search may still be using
        them.
        """
        evicted: List[Tuple[str, ShapeSearch]] = []
        with self._lock:
            self._closed = True
            for fingerprint, session in list(self._sessions.items()):
                self._evict_or_drain(fingerprint, session, evicted)
            self._sessions.clear()
        self._run_evictions(evicted)

    def __enter__(self) -> "SessionRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
