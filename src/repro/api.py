"""The ShapeSearch session: the front-end/back-end seam of Figure 3.

:class:`ShapeSearch` is what a user of this library holds: load a
dataset, point at the z/x/y attributes, and search with any of the three
specification mechanisms — natural language, the regex dialect, or a
sketch — exactly the interchangeable-input design of §2::

    from repro import ShapeSearch

    session = ShapeSearch.from_csv("genes.csv")
    matches = session.search(
        "rising, then going down, and then rising again",
        z="gene", x="time", y="expression", k=5,
    )

Strings are parsed as regex first and fall back to natural language, so
``session.search("[p=up][p=down]")`` and
``session.search("up then down")`` both work.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.algebra.nodes import Node
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.chains import CompiledQuery
from repro.engine.executor import Match, ShapeSearchEngine
from repro.errors import ShapeQuerySyntaxError
from repro.nlp.tagger import EntityTagger
from repro.nlp.translator import translate
from repro.parser import parse as parse_regex
from repro.sketch.canvas import Canvas
from repro.sketch.parser import parse_sketch

QueryLike = Union[str, Node, CompiledQuery]


def parse_query(query: QueryLike, tagger: Optional[EntityTagger] = None) -> Node:
    """Parse any supported query form into a ShapeQuery AST.

    Strings are tried as the regex dialect first; on a syntax error the
    natural-language pipeline takes over (the paper's interchangeable
    front-ends).
    """
    if isinstance(query, Node):
        return query
    if isinstance(query, CompiledQuery):
        return query.node
    if not isinstance(query, str):
        raise ShapeQuerySyntaxError("unsupported query type {!r}".format(type(query)))
    stripped = query.strip()
    if stripped.startswith(("[", "(", "!")):
        return parse_regex(stripped)
    try:
        return parse_regex(stripped)
    except ShapeQuerySyntaxError:
        return translate(stripped, tagger=tagger).query


class ShapeSearch:
    """An interactive exploration session over one table.

    ``workers``/``backend``/``cache`` configure the default engine:
    ``workers`` > 1 shards candidate scoring across a pool (see
    :mod:`repro.engine.parallel`), ``backend="process"`` adds real
    multi-core scaling — the session publishes its candidate collections
    into shared memory once (:mod:`repro.engine.shm`) and workers keep
    them resident, so shards travel as index ranges — and ``cache=True``
    keeps generated trendlines and compiled plans across searches so
    repeated interactive queries skip EXTRACT/GROUP entirely.
    ``quantifier_threshold`` overrides the occurrence floor of §5.2's
    quantifier scoring (default 0.3), ``kernel`` picks the DP transition
    kernel (``"matrix"`` default, ``"loop"`` the byte-identical
    reference), and ``generation`` places EXTRACT/GROUP — ``"parent"``
    materializes trendlines in this process, ``"worker"`` generates them
    inside the pool workers from the shared table so generation
    parallelizes with scoring, ``"auto"`` (default) picks worker-side on
    the process backend when no cache is configured.  All are ignored
    when an explicit ``engine`` is passed.

    Sessions own OS resources once a parallel search ran (worker
    processes, shared-memory segments): call :meth:`close` or use the
    session as a context manager.  A forgotten session is still cleaned
    up at garbage collection / interpreter exit, but deterministic
    release beats relying on the safety net.
    """

    def __init__(self, table: Table, engine: Optional[ShapeSearchEngine] = None,
                 tagger: Optional[EntityTagger] = None,
                 workers: Optional[int] = 1, cache=None, backend: str = "thread",
                 quantifier_threshold: Optional[float] = None,
                 kernel: str = "matrix", generation: str = "auto"):
        self.table = table
        self.engine = engine if engine is not None else ShapeSearchEngine(
            workers=workers, cache=cache, backend=backend,
            quantifier_threshold=quantifier_threshold, kernel=kernel,
            generation=generation,
        )
        self.tagger = tagger

    def close(self) -> None:
        """Release worker pools and shared-memory segments (idempotent)."""
        self.engine.close()

    def __enter__(self) -> "ShapeSearch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- loading ------------------------------------------------------------
    @classmethod
    def from_csv(cls, path: str, **kwargs) -> "ShapeSearch":
        """Open a session over a CSV file."""
        return cls(Table.from_csv(path), **kwargs)

    @classmethod
    def from_json(cls, path: str, **kwargs) -> "ShapeSearch":
        """Open a session over a JSON file (list of records)."""
        return cls(Table.from_json(path), **kwargs)

    @classmethod
    def from_records(cls, records, **kwargs) -> "ShapeSearch":
        """Open a session over in-memory records."""
        return cls(Table.from_records(records), **kwargs)

    @classmethod
    def from_arrays(cls, **columns) -> "ShapeSearch":
        """Open a session over keyword column arrays."""
        return cls(Table.from_arrays(**columns))

    # -- querying ----------------------------------------------------------
    def search(
        self,
        query: QueryLike,
        z: str,
        x: str,
        y: str,
        k: int = 10,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> List[Match]:
        """Top-k visualizations matching the query (NL, regex, or AST).

        ``workers`` overrides the engine's worker count for this call
        (results are identical for any worker count).
        """
        node = parse_query(query, tagger=self.tagger)
        params = VisualParams(
            z=z, x=x, y=y, filters=tuple(filters), aggregate=aggregate, bin_width=bin_width
        )
        return self.engine.execute(self.table, params, node, k=k, workers=workers)

    def search_many(
        self,
        queries: Sequence[QueryLike],
        z: str,
        x: str,
        y: str,
        k: int = 10,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> List[List[Match]]:
        """Batch search: one result list per query, in order.

        Compilation is amortized across the batch and EXTRACT/GROUP runs
        once per distinct push-down effect (once total for all-fuzzy
        batches), so issuing ten variations of a query costs little more
        than issuing one.
        """
        nodes = [parse_query(query, tagger=self.tagger) for query in queries]
        params = VisualParams(
            z=z, x=x, y=y, filters=tuple(filters), aggregate=aggregate, bin_width=bin_width
        )
        return self.engine.execute_many(self.table, params, nodes, k=k, workers=workers)

    def search_sketch(
        self,
        pixels: Sequence[Tuple[float, float]],
        z: str,
        x: str,
        y: str,
        canvas: Optional[Canvas] = None,
        mode: str = "precise",
        k: int = 10,
        filters: Sequence = (),
    ) -> List[Match]:
        """Search with a drawn polyline (precise or blurry interpretation)."""
        node = parse_sketch(pixels, canvas=canvas, mode=mode)
        params = VisualParams(z=z, x=x, y=y, filters=tuple(filters))
        return self.engine.execute(self.table, params, node, k=k)

    def explain(self, query: QueryLike) -> str:
        """The canonical regex form of a query — the correction panel view."""
        from repro.algebra.printer import to_regex

        return to_regex(parse_query(query, tagger=self.tagger))

    def explain_plan(
        self,
        query: QueryLike,
        z: str,
        x: str,
        y: str,
        k: int = 10,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> str:
        """The physical operator chain a :meth:`search` call would run.

        Renders the staged pipeline (``ScanTable → Extract/Group → Score
        → MergeTopK``) with the implementation the planner picked per
        stage — parent- vs worker-side generation, sequential vs
        parallel scoring, the shared-memory transport.  Planning only:
        nothing is generated or scored.
        """
        node = parse_query(query, tagger=self.tagger)
        params = VisualParams(
            z=z, x=x, y=y, filters=tuple(filters), aggregate=aggregate,
            bin_width=bin_width,
        )
        return self.engine.explain_plan(self.table, params, node, k=k, workers=workers)
