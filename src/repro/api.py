"""The ShapeSearch session: the front-end/back-end seam of Figure 3.

:class:`ShapeSearch` is what a user of this library holds: load a
dataset, point at the z/x/y attributes, and search with any of the three
specification mechanisms — natural language, the regex dialect, or a
sketch — exactly the interchangeable-input design of §2.  The serving
API is built around three objects::

    from repro import ShapeSearch

    session = ShapeSearch.from_csv("genes.csv")
    prepared = session.prepare(                 # parse + compile once
        "rising, then going down, and then rising again",
        z="gene", x="time", y="expression",
    )
    results = prepared.run(k=5)                 # blocking -> ResultSet
    print(results.stats.scored, results.plan)

    future = prepared.submit(k=5)               # non-blocking
    results = future.result(timeout=30)         # -> the same ResultSet

:class:`PreparedSearch` binds a parsed+compiled query to the session's
visual context, so repeated interactive calls skip parse and compile by
construction; :class:`~repro.results.SearchFuture` is the cancellable
handle of the submit paths; :class:`~repro.results.ResultSet` replaces
the bare ``List[Match]`` everywhere (it still *is* a sequence of
matches, so seed-era code keeps working).

Strings are parsed as regex first and fall back to natural language, so
``session.prepare("[p=up][p=down]", ...)`` and
``session.prepare("up then down", ...)`` both work.  The historical
one-shot ``search``/``search_many`` entry points remain as deprecated
shims over the prepared path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.algebra.nodes import Node
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.chains import CompiledQuery
from repro.engine.executor import Match, ShapeSearchEngine  # noqa: F401  (Match re-exported)
from repro.errors import DataError, ShapeQuerySyntaxError, warn_deprecated
from repro.nlp.tagger import EntityTagger
from repro.nlp.translator import translate
from repro.parser import parse as parse_regex
from repro.results import ResultSet, SearchFuture
from repro.sketch.canvas import Canvas
from repro.sketch.parser import parse_sketch

QueryLike = Union[str, Node, CompiledQuery]

#: Keyword names :meth:`ShapeSearch.from_arrays` routes to the session
#: (everything else is a column array).  Mirrors ``ShapeSearch.__init__``.
_SESSION_OPTIONS = (
    "engine", "tagger", "workers", "cache", "backend",
    "quantifier_threshold", "kernel", "generation",
)


def parse_query(query: QueryLike, tagger: Optional[EntityTagger] = None) -> Node:
    """Parse any supported query form into a ShapeQuery AST.

    Strings are tried as the regex dialect first; on a syntax error the
    natural-language pipeline takes over (the paper's interchangeable
    front-ends).
    """
    if isinstance(query, Node):
        return query
    if isinstance(query, CompiledQuery):
        return query.node
    if not isinstance(query, str):
        raise ShapeQuerySyntaxError("unsupported query type {!r}".format(type(query)))
    stripped = query.strip()
    if stripped.startswith(("[", "(", "!")):
        return parse_regex(stripped)
    try:
        return parse_regex(stripped)
    except ShapeQuerySyntaxError:
        return translate(stripped, tagger=tagger).query


class PreparedSearch:
    """A query parsed, compiled and bound to visual context — once.

    Created by :meth:`ShapeSearch.prepare`.  Parsing (NL/regex/sketch →
    AST) and compilation (normalize → validate → flatten, through the
    session's plan cache) happen at prepare time; every subsequent
    :meth:`run`/:meth:`submit` reuses the bound
    :class:`~repro.engine.chains.CompiledQuery` and
    :class:`~repro.data.visual_params.VisualParams`, sharing the
    session's trendline/plan caches by construction.  This is the
    serving-tier shape: prepare per query template, run per request.

    Prepared searches are immutable descriptions — cheap to hold, safe
    to run concurrently, and reusable across any number of calls.
    """

    __slots__ = ("table", "engine", "node", "compiled", "params")

    def __init__(self, table: Table, engine: ShapeSearchEngine, node: Node,
                 compiled: CompiledQuery, params: VisualParams):
        self.table = table
        self.engine = engine
        #: The parsed ShapeQuery AST (the correction-panel view's source).
        self.node = node
        #: The compiled plan every run reuses.
        self.compiled = compiled
        #: The bound visual context (z/x/y, filters, aggregate, bin width).
        self.params = params

    def run(self, k: int = 10, workers: Optional[int] = None) -> ResultSet:
        """Execute, blocking: the top-``k`` matches as a :class:`ResultSet`.

        ``workers`` overrides the engine's worker count for this call
        (results are identical for any worker count).
        """
        return self.engine.run(
            self.table, self.params, self.compiled, k=k, workers=workers
        )

    def submit(self, k: int = 10, workers: Optional[int] = None,
               progress=None) -> SearchFuture:
        """Execute without blocking: a cancellable :class:`SearchFuture`.

        Returns as soon as the execution is handed to the engine's
        dispatcher — before scoring starts, on any backend.  ``progress``
        is called as ``progress(completed_shards, total_shards)`` as the
        Score stage advances; ``future.cancel()`` drops un-dispatched
        shards cooperatively and ``future.result()`` then raises
        :class:`~repro.errors.SearchCancelled`.
        """
        return self.engine.submit(
            self.table, self.params, self.compiled, k=k, workers=workers,
            progress=progress,
        )

    def explain(self) -> str:
        """The canonical regex form of the query — the correction panel."""
        from repro.algebra.printer import to_regex

        return to_regex(self.node)

    def explain_plan(self, k: int = 10, workers: Optional[int] = None) -> str:
        """The physical operator chain :meth:`run` would execute.

        Planning only — nothing is generated or scored — and the text is
        exactly what the resulting :attr:`ResultSet.plan` will carry
        after an actual run with the same arguments.
        """
        return self.engine.explain_plan(
            self.table, self.params, self.compiled, k=k, workers=workers
        )

    def __repr__(self) -> str:
        return "PreparedSearch({!r}, z={!r}, x={!r}, y={!r})".format(
            self.explain(), self.params.z, self.params.x, self.params.y
        )


class ShapeSearch:
    """An interactive exploration session over one table.

    ``workers``/``backend``/``cache`` configure the default engine:
    ``workers`` > 1 shards candidate scoring across a pool (see
    :mod:`repro.engine.parallel`), ``backend="process"`` adds real
    multi-core scaling — the session publishes its candidate collections
    into shared memory once (:mod:`repro.engine.shm`) and workers keep
    them resident, so shards travel as index ranges — and ``cache=True``
    keeps generated trendlines and compiled plans across searches so
    repeated interactive queries skip EXTRACT/GROUP entirely.
    ``quantifier_threshold`` overrides the occurrence floor of §5.2's
    quantifier scoring (default 0.3), ``kernel`` picks the DP transition
    kernel (``"matrix"`` default, ``"loop"`` the byte-identical
    reference), and ``generation`` places EXTRACT/GROUP — ``"parent"``
    materializes trendlines in this process, ``"worker"`` generates them
    inside the pool workers from the shared table so generation
    parallelizes with scoring, ``"auto"`` (default) picks worker-side on
    the process backend when no cache is configured.  All are ignored
    when an explicit ``engine`` is passed.

    Sessions own OS resources once a parallel search ran (worker
    processes, dispatcher threads, shared-memory segments): call
    :meth:`close` or use the session as a context manager.  A forgotten
    session is still cleaned up at garbage collection / interpreter
    exit, but deterministic release beats relying on the safety net.
    """

    def __init__(self, table: Table, engine: Optional[ShapeSearchEngine] = None,
                 tagger: Optional[EntityTagger] = None,
                 workers: Optional[int] = 1, cache=None, backend: str = "thread",
                 quantifier_threshold: Optional[float] = None,
                 kernel: str = "matrix", generation: str = "auto"):
        self.table = table
        self.engine = engine if engine is not None else ShapeSearchEngine(
            workers=workers, cache=cache, backend=backend,
            quantifier_threshold=quantifier_threshold, kernel=kernel,
            generation=generation,
        )
        self.tagger = tagger

    def close(self) -> None:
        """Release worker pools and shared-memory segments (idempotent)."""
        self.engine.close()

    def __enter__(self) -> "ShapeSearch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- loading ------------------------------------------------------------
    @classmethod
    def from_csv(cls, path: str, **kwargs) -> "ShapeSearch":
        """Open a session over a CSV file."""
        return cls(Table.from_csv(path), **kwargs)

    @classmethod
    def from_json(cls, path: str, **kwargs) -> "ShapeSearch":
        """Open a session over a JSON file (list of records)."""
        return cls(Table.from_json(path), **kwargs)

    @classmethod
    def from_records(cls, records, **kwargs) -> "ShapeSearch":
        """Open a session over in-memory records."""
        return cls(Table.from_records(records), **kwargs)

    @classmethod
    def from_arrays(cls, columns=None, **kwargs) -> "ShapeSearch":
        """Open a session over keyword column arrays.

        Session/engine options (``engine``, ``tagger``, ``workers``,
        ``cache``, ``backend``, ``quantifier_threshold``, ``kernel``,
        ``generation``) are routed to the session; every *other* keyword
        is a column array — so
        ``ShapeSearch.from_arrays(z=..., x=..., y=..., backend="process",
        workers=4)`` builds a process-backend session, instead of
        swallowing the options as columns.  A column whose name collides
        with an option (a column literally called ``"workers"``) must be
        passed through the ``columns`` mapping, which is merged with the
        keyword arrays and always wins the column interpretation — an
        array-valued keyword that matches an option name is rejected
        loudly rather than silently misconfiguring the engine.
        """
        options = {}
        for name in _SESSION_OPTIONS:
            if name in kwargs:
                value = kwargs.pop(name)
                if isinstance(value, (np.ndarray, list, tuple)):
                    raise DataError(
                        "from_arrays keyword {!r} names a session option but "
                        "holds an array; pass column arrays that collide with "
                        "option names via the columns= mapping".format(name)
                    )
                options[name] = value
        arrays = dict(kwargs)
        if columns:
            arrays.update(columns)
        return cls(Table.from_arrays(**arrays), **options)

    # -- the prepared/submit API --------------------------------------------
    def prepare(
        self,
        query: QueryLike,
        z: str,
        x: str,
        y: str,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
    ) -> PreparedSearch:
        """Parse + compile ``query`` once and bind the visual context.

        The entry point of the serving API: the returned
        :class:`PreparedSearch` runs (or submits) any number of times
        without re-parsing or re-compiling, and shares this session's
        caches by construction.  Accepts every query form
        :func:`parse_query` does — NL, the regex dialect, a ShapeQuery
        AST, or an already compiled query.
        """
        node = parse_query(query, tagger=self.tagger)
        compiled = self.engine.compile(node)
        params = VisualParams(
            z=z, x=x, y=y, filters=tuple(filters), aggregate=aggregate,
            bin_width=bin_width,
        )
        return PreparedSearch(self.table, self.engine, node, compiled, params)

    def submit_many(
        self,
        queries: Sequence[QueryLike],
        z: str,
        x: str,
        y: str,
        k: int = 10,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
        workers: Optional[int] = None,
        progress=None,
    ) -> List[SearchFuture]:
        """Dispatch a batch without blocking: one future per query.

        The whole batch is parsed + compiled up front, then driven by a
        single dispatcher so generation work is amortized exactly as in
        the blocking batch path; futures resolve in submission order,
        and cancelling one affects only that query.  ``progress`` is
        called as ``progress(query_index, completed, total)``.
        """
        nodes = [parse_query(query, tagger=self.tagger) for query in queries]
        params = VisualParams(
            z=z, x=x, y=y, filters=tuple(filters), aggregate=aggregate,
            bin_width=bin_width,
        )
        compiled = [self.engine.compile(node) for node in nodes]
        return self.engine.submit_many(
            self.table, params, compiled, k=k, workers=workers, progress=progress
        )

    # -- front-ends ----------------------------------------------------------
    def search_sketch(
        self,
        pixels: Sequence[Tuple[float, float]],
        z: str,
        x: str,
        y: str,
        canvas: Optional[Canvas] = None,
        mode: str = "precise",
        k: int = 10,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> ResultSet:
        """Search with a drawn polyline (precise or blurry interpretation).

        Routed through :meth:`prepare` like the other front-ends, so the
        sketch path has full parity with text queries: duplicate-x
        ``aggregate``, binning by ``bin_width`` and per-call ``workers``
        all apply.  Use :meth:`prepare` directly (with
        :func:`repro.sketch.parser.parse_sketch`) to reuse a sketch
        across calls or submit it asynchronously.
        """
        node = parse_sketch(pixels, canvas=canvas, mode=mode)
        prepared = self.prepare(
            node, z=z, x=x, y=y, filters=filters, aggregate=aggregate,
            bin_width=bin_width,
        )
        result = prepared.run(k=k, workers=workers)
        # Not deprecated, but the seed-era call updated last_stats;
        # keep that visible side effect for code that inspected it.
        self.engine.last_stats = result.stats
        return result

    # -- deprecated one-shot shims -------------------------------------------
    def search(
        self,
        query: QueryLike,
        z: str,
        x: str,
        y: str,
        k: int = 10,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> ResultSet:
        """Deprecated: use ``prepare(...).run(...)``.

        One-shot top-k search, kept as a thin shim over the prepared
        path: identical matches in identical order, now as a
        list-compatible :class:`ResultSet`.
        """
        warn_deprecated(
            "ShapeSearch.search()", "ShapeSearch.prepare(...).run(...)"
        )
        prepared = self.prepare(
            query, z=z, x=x, y=y, filters=filters, aggregate=aggregate,
            bin_width=bin_width,
        )
        result = prepared.run(k=k, workers=workers)
        self.engine.last_stats = result.stats
        return result

    def search_many(
        self,
        queries: Sequence[QueryLike],
        z: str,
        x: str,
        y: str,
        k: int = 10,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> List[ResultSet]:
        """Deprecated: use :meth:`submit_many` (or prepared runs).

        Batch search, kept as a blocking shim: one ResultSet per query,
        in order, with compilation and EXTRACT/GROUP amortized across
        the batch exactly as before.
        """
        warn_deprecated(
            "ShapeSearch.search_many()",
            "ShapeSearch.submit_many(...) (gather with future.result())",
        )
        nodes = [parse_query(query, tagger=self.tagger) for query in queries]
        params = VisualParams(
            z=z, x=x, y=y, filters=tuple(filters), aggregate=aggregate,
            bin_width=bin_width,
        )
        results = self.engine.run_many(
            self.table, params, nodes, k=k, workers=workers
        )
        if results:
            self.engine.last_stats = results[-1].stats
        return results

    # -- inspection -----------------------------------------------------------
    def explain(self, query: QueryLike) -> str:
        """The canonical regex form of a query — the correction panel view."""
        from repro.algebra.printer import to_regex

        return to_regex(parse_query(query, tagger=self.tagger))

    def explain_plan(
        self,
        query: QueryLike,
        z: str,
        x: str,
        y: str,
        k: int = 10,
        filters: Sequence = (),
        aggregate: str = "mean",
        bin_width: Optional[float] = None,
        workers: Optional[int] = None,
    ) -> str:
        """The physical operator chain a :meth:`PreparedSearch.run` would run.

        Renders the staged pipeline (``ScanTable → Extract/Group → Score
        → MergeTopK``) with the implementation the planner picked per
        stage — parent- vs worker-side generation, sequential vs
        parallel scoring, the shared-memory transport.  Planning only:
        nothing is generated or scored.
        """
        prepared = self.prepare(
            query, z=z, x=x, y=y, filters=filters, aggregate=aggregate,
            bin_width=bin_width,
        )
        return prepared.explain_plan(k=k, workers=workers)
