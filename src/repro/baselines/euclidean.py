"""Z-normalized Euclidean distance — the point-wise baseline (§7.3).

The simplest measure visual query systems offer: after z-normalization
and length alignment, the root-mean-square point-wise difference.  Good
when the query *is* a trendline from the same domain; easily
overwhelmed by phase shifts and local noise, which is the behaviour the
user study contrasts against ShapeSearch's scoring functions.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.baselines.dtw import query_prototypes
from repro.engine.chains import CompiledQuery
from repro.engine.scoring import resample, znormalize
from repro.engine.trendline import Trendline


def euclidean_distance(a: np.ndarray, b: np.ndarray, normalize: bool = True) -> float:
    """RMS point-wise distance after optional z-normalization + resampling."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if len(a) != len(b):
        b = resample(b, len(a))
    if normalize:
        a = znormalize(a)
        b = znormalize(b)
    return float(math.sqrt(np.mean((a - b) ** 2)))


def euclidean_query_distance(trendline: Trendline, query: CompiledQuery) -> float:
    """Min Euclidean distance from the trendline to any chain prototype."""
    series = trendline.norm_bin_y
    return min(
        euclidean_distance(series, prototype)
        for prototype in query_prototypes(query, len(series))
    )


def rank_by_euclidean(
    trendlines: Sequence[Trendline], query: CompiledQuery, k: int = 10
) -> List[Tuple[Trendline, float]]:
    """Top-k visualizations by ascending Euclidean distance."""
    scored = [
        (trendline, euclidean_query_distance(trendline, query))
        for trendline in trendlines
    ]
    scored.sort(key=lambda item: (item[1], str(item[0].key)))
    return scored[:k]
