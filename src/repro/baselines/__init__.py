"""Baselines the paper compares against: DTW, Euclidean, and a VQS tool."""

from repro.baselines.dtw import dtw_distance, dtw_query_distance, rank_by_dtw
from repro.baselines.euclidean import (
    euclidean_distance,
    euclidean_query_distance,
    rank_by_euclidean,
)
from repro.baselines.vqs import VisualQuerySystem

__all__ = [
    "dtw_distance",
    "dtw_query_distance",
    "rank_by_dtw",
    "euclidean_distance",
    "euclidean_query_distance",
    "rank_by_euclidean",
    "VisualQuerySystem",
]
