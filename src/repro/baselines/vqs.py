"""A visual-query-system baseline (the user study's comparison tool, §7.1).

Replicates the capabilities of sketch-first VQS tools (TimeSearcher,
Google Correlate, Zenvisage's sketch mode): the user draws a shape, picks
Euclidean or DTW as the similarity measure, optionally smooths the
candidates, and the system returns the nearest trendlines by *value*
similarity.  No shape algebra, no blurry semantics — exactly the
expressiveness gap the study measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.dtw import dtw_distance
from repro.baselines.euclidean import euclidean_distance
from repro.engine.scoring import resample
from repro.engine.trendline import Trendline
from repro.errors import ExecutionError

MEASURES = ("euclidean", "dtw")


def smooth(values: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge padding (the VQS smoothing knob)."""
    if window <= 1:
        return np.asarray(values, dtype=float)
    kernel = np.ones(window) / window
    padded = np.concatenate(
        [np.repeat(values[0], window // 2), values, np.repeat(values[-1], window - 1 - window // 2)]
    )
    return np.convolve(padded, kernel, mode="valid")


@dataclass
class VisualQuerySystem:
    """The baseline tool: sketch in, nearest trendlines out."""

    measure: str = "euclidean"
    smoothing: int = 1
    band: Optional[int] = None

    def __post_init__(self):
        if self.measure not in MEASURES:
            raise ExecutionError(
                "unknown measure {!r}; choose from {}".format(self.measure, MEASURES)
            )

    def distance(self, candidate: np.ndarray, sketch: np.ndarray) -> float:
        """Distance between one candidate series and the drawn sketch."""
        candidate = smooth(np.asarray(candidate, dtype=float), self.smoothing)
        sketch = resample(np.asarray(sketch, dtype=float), len(candidate))
        if self.measure == "dtw":
            return dtw_distance(candidate, sketch, band=self.band)
        return euclidean_distance(candidate, sketch)

    def rank(
        self,
        trendlines: Sequence[Trendline],
        sketch_y: Sequence[float],
        k: int = 10,
    ) -> List[Tuple[Trendline, float]]:
        """Top-k trendlines most similar to the sketch."""
        sketch = np.asarray(list(sketch_y), dtype=float)
        scored = [
            (trendline, self.distance(trendline.norm_bin_y, sketch))
            for trendline in trendlines
        ]
        scored.sort(key=lambda item: (item[1], str(item[0].key)))
        return scored[:k]
