"""Dynamic Time Warping — the paper's principal baseline (§9, alg (vi)).

A faithful implementation of the classic O(n·m) DTW recurrence with an
optional Sakoe-Chiba band, on z-normalized series (the standard shape-
matching configuration the paper cites).  For ranking visualizations
against a *pattern* query (rather than a drawn trendline), the query is
first rendered to a piecewise-linear prototype (:func:`query_prototype`)
and candidates are ranked by ascending DTW distance to it — this is how
the performance experiments compare DTW's accuracy against the
ShapeSearch scoring functions (Figures 10 and 12).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.chains import Chain, CompiledQuery
from repro.engine.scoring import znormalize
from repro.engine.trendline import Trendline
from repro.engine.units import QuantifierUnit, SlopeUnit


def dtw_distance(
    a: np.ndarray,
    b: np.ndarray,
    band: Optional[int] = None,
    normalize: bool = True,
) -> float:
    """DTW distance between two series (squared-error local cost).

    ``band`` is the Sakoe-Chiba half-width in samples; None = unbanded.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if normalize:
        a = znormalize(a)
        b = znormalize(b)
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return math.inf
    effective_band = max(n, m) if band is None else max(band, abs(n - m))

    previous = np.full(m + 1, np.inf)
    previous[0] = 0.0
    for i in range(1, n + 1):
        current = np.full(m + 1, np.inf)
        j_lo = max(1, i - effective_band)
        j_hi = min(m, i + effective_band)
        cost = (a[i - 1] - b[j_lo - 1 : j_hi]) ** 2
        for index, j in enumerate(range(j_lo, j_hi + 1)):
            current[j] = cost[index] + min(
                previous[j], previous[j - 1], current[j - 1]
            )
        previous = current
    return float(math.sqrt(previous[m]))


def _unit_rise(unit) -> float:
    """Per-unit vertical displacement used to draw the prototype."""
    if isinstance(unit, SlopeUnit):
        if unit.kind == "up":
            rise = 1.0
        elif unit.kind == "down":
            rise = -1.0
        elif unit.kind == "slope":
            rise = math.tan(math.radians(unit.theta))
            rise = max(-3.0, min(3.0, rise))
        else:  # flat / any / empty
            rise = 0.0
        return -rise if unit.negated else rise
    if isinstance(unit, QuantifierUnit) and unit.kind in ("up", "down"):
        return 1.0 if unit.kind == "up" else -1.0
    return 0.0


def chain_prototype(chain: Chain, length: int) -> np.ndarray:
    """Piecewise-linear rendering of one alternative chain."""
    k = chain.k
    per_unit = max(2, length // k)
    values: List[float] = [0.0]
    level = 0.0
    for cu in chain.units:
        rise = _unit_rise(cu.unit)
        for step in range(1, per_unit):
            values.append(level + rise * step / (per_unit - 1))
        level += rise
    prototype = np.asarray(values, dtype=float)
    if len(prototype) < length:
        prototype = np.interp(
            np.linspace(0, 1, length), np.linspace(0, 1, len(prototype)), prototype
        )
    return prototype


def query_prototypes(query: CompiledQuery, length: int) -> List[np.ndarray]:
    """One prototype per alternative chain."""
    return [chain_prototype(chain, length) for chain in query.chains]


def dtw_query_distance(
    trendline: Trendline, query: CompiledQuery, band: Optional[int] = None
) -> float:
    """Min DTW distance from the trendline to any chain prototype."""
    series = trendline.norm_bin_y
    best = math.inf
    for prototype in query_prototypes(query, len(series)):
        best = min(best, dtw_distance(series, prototype, band=band, normalize=True))
    return best


def rank_by_dtw(
    trendlines: Sequence[Trendline],
    query: CompiledQuery,
    k: int = 10,
    band: Optional[int] = None,
) -> List[Tuple[Trendline, float]]:
    """Top-k visualizations by ascending DTW distance to the query prototype."""
    scored = [
        (trendline, dtw_query_distance(trendline, query, band=band))
        for trendline in trendlines
    ]
    scored.sort(key=lambda item: (item[1], str(item[0].key)))
    return scored[:k]
