"""Exception hierarchy for the ShapeSearch reproduction.

Every error raised by this package derives from :class:`ShapeSearchError`,
so callers can catch one type at the API boundary.  The subclasses mirror
the pipeline stages of the paper: query specification (parsing), query
validation (semantic checks and ambiguity resolution), and execution.
"""

from __future__ import annotations

import warnings
from concurrent.futures import CancelledError
from typing import Optional


class ShapeSearchError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ShapeQuerySyntaxError(ShapeSearchError):
    """A regex/NL/sketch query could not be parsed into a ShapeQuery.

    Carries the offending position so front-ends can underline it.
    """

    def __init__(
        self,
        message: str,
        position: Optional[int] = None,
        text: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.position = position
        self.text = text

    def __str__(self) -> str:
        base = super().__str__()
        if self.position is None or self.text is None:
            return base
        pointer = " " * self.position + "^"
        return "{}\n  {}\n  {}".format(base, self.text, pointer)


class ShapeQueryValidationError(ShapeSearchError):
    """A parsed ShapeQuery is syntactically well-formed but not meaningful.

    Examples: ``x.s > x.e`` on a segment, a POSITION reference to a
    non-existent ShapeSegment, or a quantifier without a pattern.
    """


class AmbiguityError(ShapeSearchError):
    """The ambiguity resolver could not produce a consistent ShapeQuery."""


class ExecutionError(ShapeSearchError):
    """The execution engine could not evaluate a ShapeQuery."""


class DataError(ShapeSearchError):
    """The data substrate was asked for something it cannot provide.

    Examples: unknown column names in visual parameters, an empty group
    after filtering, or malformed CSV/JSON input.
    """


class SearchCancelled(ExecutionError, CancelledError):
    """A submitted search was cancelled before its merge rendezvous.

    Raised by :meth:`repro.results.SearchFuture.result` (and inside the
    pipeline's MergeTopK stage, where the shards a cooperative cancel
    dropped are acknowledged).  Doubly derived so both ``except
    ShapeSearchError`` at the API boundary and the stdlib-idiomatic
    ``except concurrent.futures.CancelledError`` catch it.
    """


class UnknownPatternError(ShapeQueryValidationError):
    """A user-defined pattern (udp) name is not registered."""


class ShapeSearchDeprecationWarning(DeprecationWarning):
    """Deprecation category for superseded :mod:`repro` entry points.

    A dedicated subclass so deployments (and the CI ``deprecations``
    job) can escalate exactly the warnings this package emits::

        python -W error::repro.errors.ShapeSearchDeprecationWarning ...
    """


def warn_deprecated(old: str, replacement: str, stacklevel: int = 3) -> None:
    """Emit the standard deprecation warning for a shimmed entry point."""
    warnings.warn(
        "{} is deprecated and will be removed in a future release; "
        "use {} instead".format(old, replacement),
        ShapeSearchDeprecationWarning,
        stacklevel=stacklevel,
    )
