"""Evaluation metrics used across the study and performance experiments.

* :func:`study_accuracy` — the user-study metric of §7.1: the sum of
  ground-truth relevance scores of the retrieved visualizations over the
  best achievable sum, as a percentage.
* :func:`topk_overlap` — the Figure 12 accuracy: fraction of an
  algorithm's top-k that also appears in the DP oracle's top-k.
* :func:`kth_score_deviation` — Figure 12's annotation: how far (in %)
  the k-th selected visualization's score sits from the k-th optimal.
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence


def study_accuracy(
    retrieved: Sequence[Hashable],
    relevance: Dict[Hashable, float],
    k: int,
) -> float:
    """Percentage of the best achievable relevance captured by ``retrieved``."""
    achieved = sum(relevance.get(key, 0.0) for key in list(retrieved)[:k])
    best = sum(sorted(relevance.values(), reverse=True)[:k])
    if best <= 0:
        return 0.0
    return 100.0 * achieved / best


def topk_overlap(selected: Sequence[Hashable], reference: Sequence[Hashable]) -> float:
    """|selected ∩ reference| / |reference| — Figure 12's accuracy measure."""
    reference_set = set(reference)
    if not reference_set:
        return 0.0
    return 100.0 * len(set(selected) & reference_set) / len(reference_set)


def tie_aware_overlap(
    selected: Sequence[Hashable],
    reference_scores: Dict[Hashable, float],
    k: int,
    tolerance: float = 0.01,
) -> float:
    """Top-k accuracy robust to near-ties in the oracle's scores.

    A selected visualization counts as correct when its oracle score
    reaches the oracle's k-th best score within ``tolerance`` — the
    identity-based overlap of :func:`topk_overlap` churns arbitrarily
    when many candidates tie at the cut-off, which synthetic suites
    (and the paper's "never off by more than 2 visualizations" remark)
    make common.
    """
    if not reference_scores or k <= 0:
        return 0.0
    kth = sorted(reference_scores.values(), reverse=True)[min(k, len(reference_scores)) - 1]
    hits = sum(
        1
        for key in list(selected)[:k]
        if reference_scores.get(key, -2.0) >= kth - tolerance
    )
    return 100.0 * hits / k


def kth_score_deviation(
    algorithm_scores: Sequence[float], optimal_scores: Sequence[float]
) -> float:
    """Average % deviation of the k-th algorithm score from the k-th optimal.

    Scores live in [-1, 1]; deviations are measured relative to the
    optimal score's distance from the floor (−1) so the percentage stays
    meaningful for near-zero optima.
    """
    if not algorithm_scores or not optimal_scores:
        return 0.0
    k = min(len(algorithm_scores), len(optimal_scores))
    algorithm_k = sorted(algorithm_scores, reverse=True)[k - 1]
    optimal_k = sorted(optimal_scores, reverse=True)[k - 1]
    denominator = max(1e-9, optimal_k + 1.0)
    return 100.0 * abs(optimal_k - algorithm_k) / denominator
