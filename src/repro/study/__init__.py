"""Simulated user-study harness (Tables 8/10, Figure 9a)."""

from repro.study.harness import METHODS, StudyResult, run_method, run_study
from repro.study.metrics import kth_score_deviation, study_accuracy, topk_overlap
from repro.study.tasks import TASK_CODES, Task, build_tasks

__all__ = [
    "METHODS",
    "StudyResult",
    "run_method",
    "run_study",
    "kth_score_deviation",
    "study_accuracy",
    "topk_overlap",
    "TASK_CODES",
    "Task",
    "build_tasks",
]
