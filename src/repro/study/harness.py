"""Simulated study harness: scoring functions vs VQS measures (§7.3).

Reproduces the machine-side comparison behind Figure 9a's red bars and
Table 8's accuracy column: for every Table 10 task, rank the candidate
visualizations with

* the ShapeSearch scoring functions (DP-optimal segmentation, and
  optionally the SegmentTree engine used live during the study),
* DTW against the task's reference sketch, and
* Euclidean distance against the same sketch,

then measure each method's study accuracy against the programmatic
ground truth.  Human timing and preference results are *not* simulated
(see EXPERIMENTS.md); what is reproduced is the claim that the algebra's
scoring outranks value-based measures on blurry tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.vqs import VisualQuerySystem
from repro.engine.executor import ShapeSearchEngine
from repro.parser import parse
from repro.study.metrics import study_accuracy
from repro.study.tasks import Task, build_tasks

#: Method identifiers understood by the harness.
METHODS = ("shapesearch-dp", "shapesearch-st", "dtw", "euclidean")


@dataclass
class StudyResult:
    """Accuracy (%) per task per method, plus the task list used."""

    accuracy: Dict[str, Dict[str, float]] = field(default_factory=dict)
    tasks: List[Task] = field(default_factory=list)

    def method_average(self, method: str) -> float:
        values = [per_task[method] for per_task in self.accuracy.values() if method in per_task]
        return sum(values) / len(values) if values else 0.0


def run_method(task: Task, method: str, k: Optional[int] = None) -> List:
    """Retrieve top-k keys for one task with one method."""
    k = k if k is not None else task.k
    if method in ("shapesearch-dp", "shapesearch-st"):
        algorithm = "dp" if method.endswith("dp") else "segment-tree"
        engine = ShapeSearchEngine(algorithm=algorithm)
        matches = engine.rank(task.trendlines, parse(task.query), k=k)
        return [match.key for match in matches]
    if method in ("dtw", "euclidean"):
        vqs = VisualQuerySystem(measure=method)
        ranked = vqs.rank(task.trendlines, task.sketch, k=k)
        return [trendline.key for trendline, _ in ranked]
    raise ValueError("unknown method {!r}".format(method))


def run_study(
    methods: Sequence[str] = METHODS,
    tasks: Optional[List[Task]] = None,
    seed: int = 42,
    k: Optional[int] = None,
) -> StudyResult:
    """Evaluate every method on every task; returns accuracy percentages."""
    tasks = tasks if tasks is not None else build_tasks(seed=seed)
    result = StudyResult(tasks=tasks)
    for task in tasks:
        per_task: Dict[str, float] = {}
        for method in methods:
            retrieved = run_method(task, method, k=k)
            per_task[method] = study_accuracy(
                retrieved, task.relevance, k if k is not None else task.k
            )
        result.accuracy[task.code] = per_task
    return result
