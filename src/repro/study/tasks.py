"""The seven pattern-matching task categories of the user study (Table 10).

Each :class:`Task` instantiates one row of Table 10 on synthetic data
with *programmatic ground truth*: the generator plants fully relevant
series (relevance 5), partially relevant variants (1–4) and distractors
(0), so the study's accuracy metric — sum of relevances retrieved over
the best achievable sum (§7.1) — is computable without human raters.
Every task carries both a ShapeSearch query (regex dialect) and a
reference sketch series for the VQS baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List

import numpy as np

from repro.datasets.synthetic import flat, piecewise, seasonal
from repro.engine.trendline import Trendline, build_trendline

#: Task codes in Table 10 order.
TASK_CODES = ("ET", "SQ", "SP", "WS", "MXY", "TC", "CS")


@dataclass
class Task:
    """One study task: data, query, reference sketch, ground truth."""

    code: str
    name: str
    query: str
    sketch: np.ndarray
    trendlines: List[Trendline]
    relevance: Dict[Hashable, float]
    k: int = 5

    def best_achievable(self) -> float:
        """Sum of the k highest ground-truth relevances."""
        return sum(sorted(self.relevance.values(), reverse=True)[: self.k])


def _collection(series_by_key: Dict[str, np.ndarray]) -> List[Trendline]:
    lines = []
    for key, series in series_by_key.items():
        x = np.arange(len(series), dtype=float)
        lines.append(build_trendline(key, x, series))
    return lines


def build_tasks(seed: int = 42, length: int = 120, distractors: int = 30) -> List[Task]:
    """Instantiate all seven Table 10 tasks."""
    rng = np.random.default_rng(seed)
    tasks = [
        _exact_trend(rng, length, distractors),
        _sequence(rng, length, distractors),
        _sub_pattern(rng, length, distractors),
        _width_specific(rng, length, distractors),
        _multiple_xy(rng, length, distractors),
        _trend_characterization(rng, length, distractors),
        _complex_shape(rng, length, distractors),
    ]
    return tasks


def _distractor(rng, length: int, index: int) -> np.ndarray:
    """Structured non-matching shapes.

    Distractors must be *shapes the engine also sees as shapes* — after
    z-normalization a flat noisy line amplifies to full-scale jitter that
    genuinely contains up/flat/down sub-trends, which would make the
    ground truth wrong in the engine's (and a viewer's) perceptual space.
    Monotone rises/falls and single valleys stay distinct from every
    task's target pattern.
    """
    kind = index % 3
    if kind == 0:
        return piecewise(length, [0, rng.uniform(2, 5)], noise=0.15, rng=rng)
    if kind == 1:
        return piecewise(length, [rng.uniform(2, 5), 0], noise=0.15, rng=rng)
    return piecewise(length, [4, rng.uniform(-1, 1), 4], noise=0.15, rng=rng)


def _add_distractors(series, relevance, rng, length, count):
    for index in range(count):
        key = "bg{:03d}".format(index)
        series[key] = _distractor(rng, length, index)
        relevance[key] = 0.0


def _exact_trend(rng, length, distractors) -> Task:
    """ET: find shapes precisely similar to a reference trendline."""
    reference = seasonal(length, period=length, amplitude=2.0, phase=0.4, noise=0.0)
    series: Dict[str, np.ndarray] = {}
    relevance: Dict[Hashable, float] = {}
    for index in range(4):
        key = "match{}".format(index)
        series[key] = reference + rng.normal(0, 0.12, length)
        relevance[key] = 5.0
    for index in range(3):
        key = "near{}".format(index)
        series[key] = seasonal(length, period=length, amplitude=2.0, phase=0.4 + 0.5, noise=0.15, rng=rng)
        relevance[key] = 2.0
    _add_distractors(series, relevance, rng, length, distractors)
    sketch_query = ",".join(
        "{}:{}".format(i, round(float(v), 3)) for i, v in enumerate(reference[:: max(1, length // 24)])
    )
    return Task(
        code="ET",
        name="Exact Trend Matching",
        query="[v=({})]".format(sketch_query),
        sketch=reference,
        trendlines=_collection(series),
        relevance=relevance,
    )


def _sequence(rng, length, distractors) -> Task:
    """SQ: rise, flat, fall — a sequence of trend changes."""
    series: Dict[str, np.ndarray] = {}
    relevance: Dict[Hashable, float] = {}
    for index in range(4):
        key = "seq{}".format(index)
        series[key] = piecewise(length, [0, rng.uniform(3, 5), rng.uniform(3, 5), 0], noise=0.25, rng=rng)
        relevance[key] = 5.0
    for index in range(3):
        key = "part{}".format(index)  # rise then fall, no plateau
        series[key] = piecewise(length, [0, rng.uniform(3, 5), 0], noise=0.25, rng=rng)
        relevance[key] = 2.5
    _add_distractors(series, relevance, rng, length, distractors)
    sketch = piecewise(length, [0, 4, 4, 0])
    return Task(
        code="SQ",
        name="Sequence Matching",
        query="[p=up][p=flat][p=down]",
        sketch=sketch,
        trendlines=_collection(series),
        relevance=relevance,
    )


def _sub_pattern(rng, length, distractors) -> Task:
    """SP: a frequently occurring motif — two peaks over the span."""
    series: Dict[str, np.ndarray] = {}
    relevance: Dict[Hashable, float] = {}
    for index in range(4):
        key = "twin{}".format(index)
        series[key] = piecewise(
            length, [0, rng.uniform(3, 5), 1, rng.uniform(3, 5), 0], noise=0.2, rng=rng
        )
        relevance[key] = 5.0
    for index in range(3):
        key = "single{}".format(index)
        series[key] = piecewise(length, [0, rng.uniform(3, 5), 0], noise=0.2, rng=rng)
        relevance[key] = 1.5
    _add_distractors(series, relevance, rng, length, distractors)
    sketch = piecewise(length, [0, 4, 1, 4, 0])
    return Task(
        code="SP",
        name="Sub-pattern Matching",
        query="[p=up,m=2]",
        sketch=sketch,
        trendlines=_collection(series),
        relevance=relevance,
    )


def _width_specific(rng, length, distractors) -> Task:
    """WS: sharpest rise confined to a ~quarter-length window."""
    window = length // 4
    series: Dict[str, np.ndarray] = {}
    relevance: Dict[Hashable, float] = {}
    for index in range(4):
        key = "burst{}".format(index)
        start = int(rng.integers(10, length - window - 10))
        profile = flat(length, level=0.0, noise=0.15, rng=rng)
        profile[start : start + window] += np.linspace(0, 4, window)
        profile[start + window :] += 4
        series[key] = profile
        relevance[key] = 5.0
    for index in range(3):
        key = "slowrise{}".format(index)  # same rise spread over the whole span
        series[key] = piecewise(length, [0, 4], noise=0.15, rng=rng)
        relevance[key] = 1.0
    _add_distractors(series, relevance, rng, length, distractors)
    sketch = np.concatenate([np.zeros(length // 2), np.linspace(0, 4, window), np.full(length - length // 2 - window, 4.0)])
    return Task(
        code="WS",
        name="Width-specific Matching",
        # "Maximum rise over a window" (the paper's §3.1 iterator example).
        query="[x.s=.,x.e=.+{},p=up]".format(window),
        sketch=sketch,
        trendlines=_collection(series),
        relevance=relevance,
    )


def _multiple_xy(rng, length, distractors) -> Task:
    """MXY: rising inside one x range, falling inside a later one."""
    a, b, c = length // 6, length // 2, 5 * length // 6
    series: Dict[str, np.ndarray] = {}
    relevance: Dict[Hashable, float] = {}
    for index in range(4):
        key = "window{}".format(index)
        profile = flat(length, level=1.0, noise=0.15, rng=rng)
        profile[a:b] = np.linspace(1, 4, b - a) + rng.normal(0, 0.1, b - a)
        profile[b:c] = np.linspace(4, 1, c - b) + rng.normal(0, 0.1, c - b)
        profile[c:] = 1.0 + rng.normal(0, 0.1, length - c)
        series[key] = profile
        relevance[key] = 5.0
    for index in range(3):
        key = "shifted{}".format(index)  # the same motif but shifted early
        profile = flat(length, level=1.0, noise=0.15, rng=rng)
        profile[: b - a] = np.linspace(1, 4, b - a)
        profile[b - a : b] = np.linspace(4, 1, a)
        series[key] = profile
        relevance[key] = 1.5
    _add_distractors(series, relevance, rng, length, distractors)
    sketch = np.concatenate([
        np.ones(a), np.linspace(1, 4, b - a), np.linspace(4, 1, c - b), np.ones(length - c)
    ])
    return Task(
        code="MXY",
        name="Multiple X/Y Constraints",
        query="[p=up,x.s={},x.e={}][p=down,x.s={},x.e={}]".format(a, b, b, c),
        sketch=sketch,
        trendlines=_collection(series),
        relevance=relevance,
    )


def _trend_characterization(rng, length, distractors) -> Task:
    """TC: the 'typical' seasonal year — one broad peak mid-span."""
    series: Dict[str, np.ndarray] = {}
    relevance: Dict[Hashable, float] = {}
    for index in range(5):
        key = "typical{}".format(index)
        series[key] = piecewise(length, [0, rng.uniform(3.5, 4.5), 0], noise=0.3, rng=rng)
        relevance[key] = 5.0
    for index in range(3):
        key = "skewed{}".format(index)
        series[key] = piecewise(length, [0, rng.uniform(3.5, 4.5), 2.5], noise=0.3, rng=rng)
        relevance[key] = 2.0
    _add_distractors(series, relevance, rng, length, distractors)
    sketch = piecewise(length, [0, 4, 0])
    return Task(
        code="TC",
        name="Trend Characterization",
        query="[p=up][p=down]",
        sketch=sketch,
        trendlines=_collection(series),
        relevance=relevance,
    )


def _complex_shape(rng, length, distractors) -> Task:
    """CS: the W (double-bottom) technical pattern."""
    series: Dict[str, np.ndarray] = {}
    relevance: Dict[Hashable, float] = {}
    for index in range(4):
        key = "wshape{}".format(index)
        series[key] = piecewise(
            length, [4, rng.uniform(0.5, 1.5), 3, rng.uniform(0.5, 1.5), 4], noise=0.2, rng=rng
        )
        relevance[key] = 5.0
    for index in range(3):
        key = "vshape{}".format(index)
        series[key] = piecewise(length, [4, rng.uniform(0.5, 1.5), 4], noise=0.2, rng=rng)
        relevance[key] = 2.0
    _add_distractors(series, relevance, rng, length, distractors)
    sketch = piecewise(length, [4, 1, 3, 1, 4])
    return Task(
        code="CS",
        name="Complex Shape Matching",
        query="[p=down][p=up][p=down][p=up]",
        sketch=sketch,
        trendlines=_collection(series),
        relevance=relevance,
    )
