"""Terminal rendering of trendlines and match results.

A stand-in for the results panel (Figure 2 Box 4): Unicode sparklines of
each matched trendline with the fitted ShapeSegment boundaries and
per-segment scores — the "green fitted lines" study participants relied
on to trust the matches (§7.2).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.engine.executor import Match
from repro.engine.trendline import Trendline

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """A Unicode sparkline of a series, resampled to ``width`` characters."""
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        return ""
    if len(values) != width:
        positions = np.linspace(0, 1, width)
        source = np.linspace(0, 1, len(values))
        values = np.interp(positions, source, values)
    low, high = float(values.min()), float(values.max())
    span = high - low
    if span <= 0:
        return _BLOCKS[0] * width
    indices = np.clip(((values - low) / span) * (len(_BLOCKS) - 1), 0, len(_BLOCKS) - 1)
    return "".join(_BLOCKS[int(round(i))] for i in indices)


def render_trendline(trendline: Trendline, width: int = 60) -> str:
    """One-line sparkline of a trendline with its key."""
    return "{:>16}  {}".format(str(trendline.key)[:16], sparkline(trendline.bin_y, width))


def render_match(match: Match, width: int = 60) -> str:
    """Sparkline plus the fitted segmentation of one match."""
    lines: List[str] = []
    lines.append(
        "{:>16}  {}  score={:+.3f}".format(
            str(match.key)[:16], sparkline(match.trendline.bin_y, width), match.score
        )
    )
    n = match.trendline.n_bins
    details = []
    for placed in match.placements:
        if placed.end <= placed.start:
            continue
        details.append(
            "seg{} [{}..{}) score {:+.2f}".format(
                placed.seg_index if placed.seg_index >= 0 else "?",
                placed.start,
                placed.end,
                placed.score,
            )
        )
    if details and n > 0:
        marker = [" "] * width
        for placed in match.placements:
            position = int(placed.start / n * (width - 1))
            marker[position] = "|"
        lines.append("{:>16}  {}".format("", "".join(marker)))
        lines.append("{:>16}  {}".format("", "; ".join(details)))
    return "\n".join(lines)


def render_matches(matches: Sequence[Match], width: int = 60) -> str:
    """Render a full results panel.

    Accepts any sequence of matches — a plain list or a
    :class:`~repro.results.ResultSet` (whose :meth:`ResultSet.render`
    routes here).
    """
    return "\n".join(render_match(match, width) for match in matches)


def render_results(results, width: int = 60) -> str:
    """Results panel plus the execution footer of a :class:`ResultSet`.

    Renders the matches like :func:`render_matches` and, when ``results``
    carries per-call stats (every engine-produced ResultSet does),
    appends one line summarizing what the engine did — the at-a-glance
    companion to ``results.plan``.  Plain match lists render without the
    footer, so callers can pass either.
    """
    body = render_matches(results, width)
    stats = getattr(results, "stats", None)
    if stats is None:
        return body
    footer = (
        "-- scored {} of {} candidates in {} shard(s), generation={}".format(
            stats.scored, stats.candidates, max(stats.shards, 1), stats.generation
        )
    )
    if stats.eager_discarded:
        footer += ", eager_discarded={}".format(stats.eager_discarded)
    if stats.trendline_cache_hit:
        footer += ", trendline-cache hit"
    return body + "\n" + footer if body else footer
