"""Tokenizer for the ShapeQuery regex dialect (paper §3, Table 2).

The dialect is ASCII-first but the paper's Unicode operator glyphs are
accepted as aliases:

=========  =======================  =========================
Operator   ASCII                    Unicode alias
=========  =======================  =========================
CONCAT     adjacency or ``->``      ``⊗``
AND        ``&``                    ``⊙``
OR         ``|``                    ``⊕``
OPPOSITE   ``!``                    ``¬``
=========  =======================  =========================
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ShapeQuerySyntaxError

#: Token specification, ordered so longer lexemes win.
_TOKEN_SPEC = [
    ("WS", r"\s+"),
    ("KEY", r"[xy]\.[se]"),
    ("ARROW", r"->|⊗"),
    ("AND", r"&|⊙"),
    ("OR", r"\||⊕"),
    ("BANG", r"!|¬"),
    ("GTGT", r">>"),
    ("LTLT", r"<<"),
    ("GT", r">"),
    ("LT", r"<"),
    ("DOLLARNUM", r"\$\d+"),
    ("DOLLARPREV", r"\$-"),
    ("DOLLARNEXT", r"\$\+"),
    ("NUMBER", r"-?\d+(?:\.\d+)?"),
    ("DOTPLUS", r"\.\+"),
    ("DOT", r"\."),
    ("IDENT", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("COMMA", r","),
    ("COLON", r":"),
    ("EQ", r"="),
    ("STAR", r"\*"),
]

_MASTER = re.compile("|".join("(?P<{}>{})".format(name, pattern) for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source position (for error pointers)."""

    kind: str
    text: str
    position: int

    def __repr__(self):
        return "Token({}, {!r}, @{})".format(self.kind, self.text, self.position)


#: Sentinel kind appended at the end of every token stream.
EOF = "EOF"


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into tokens, raising on any unrecognized character."""
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _MASTER.match(text, position)
        if match is None:
            raise ShapeQuerySyntaxError(
                "unexpected character {!r}".format(text[position]),
                position=position,
                text=text,
            )
        kind = match.lastgroup
        if kind != "WS":
            tokens.append(Token(kind, match.group(), position))
        position = match.end()
    tokens.append(Token(EOF, "", len(text)))
    return tokens


def iter_tokens(text: str) -> Iterator[Token]:
    """Generator form of :func:`tokenize`."""
    return iter(tokenize(text))
