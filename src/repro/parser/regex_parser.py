"""Recursive-descent parser for the ShapeQuery regex dialect.

Implements the context-free grammar of Table 2 with conventional
precedence (OR < AND < CONCAT < OPPOSITE), where CONCAT is written by
adjacency (``[p=up][p=down]``), ``->`` or ``⊗``::

    query   := or
    or      := and   (('|' | '⊕') and)*
    and     := chain (('&' | '⊙') chain)*
    chain   := unary (('->' | '⊗')? unary)*
    unary   := ('!' | '¬') unary | '(' query ')' | segment
    segment := '[' entry (',' entry)* ']'
    entry   := key '=' value

Same-level OR/AND chains build a single n-ary node (min/max are
associative); a CONCAT chain likewise builds one n-ary node so that the
Table 6 mean weights every unit equally — parenthesized sub-chains stay
nested and are weighted as a group.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.nodes import And, Concat, Node, Opposite, Or, ShapeSegment
from repro.algebra.primitives import (
    Iterator,
    Location,
    Modifier,
    Pattern,
    PositionRef,
    Quantifier,
    Sketch,
)
from repro.errors import ShapeQuerySyntaxError, ShapeQueryValidationError
from repro.parser.lexer import EOF, Token, tokenize

#: Named pattern words accepted after ``p=``.
_PATTERN_WORDS = {"up": "up", "down": "down", "flat": "flat", "empty": "empty"}


def parse(text: str) -> Node:
    """Parse a regex-dialect ShapeQuery string into an AST."""
    return _Parser(text).parse()


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # Token-stream helpers ----------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise self.error("expected {} but found {!r}".format(kind, token.text or "end of query"))
        return self.advance()

    def accept(self, kind: str) -> Optional[Token]:
        if self.peek().kind == kind:
            return self.advance()
        return None

    def error(self, message: str) -> ShapeQuerySyntaxError:
        return ShapeQuerySyntaxError(message, position=self.peek().position, text=self.text)

    # Grammar ------------------------------------------------------------
    def parse(self) -> Node:
        node = self.parse_or()
        if self.peek().kind != EOF:
            raise self.error("trailing input after query")
        return node

    def parse_or(self) -> Node:
        children = [self.parse_and()]
        while self.accept("OR"):
            children.append(self.parse_and())
        return children[0] if len(children) == 1 else Or(tuple(children))

    def parse_and(self) -> Node:
        children = [self.parse_chain()]
        while self.accept("AND"):
            children.append(self.parse_chain())
        return children[0] if len(children) == 1 else And(tuple(children))

    def parse_chain(self) -> Node:
        children = [self.parse_unary()]
        while True:
            if self.accept("ARROW"):
                children.append(self.parse_unary())
            elif self.peek().kind in ("LBRACKET", "LPAREN", "BANG"):
                children.append(self.parse_unary())
            else:
                break
        return children[0] if len(children) == 1 else Concat(tuple(children))

    def parse_unary(self) -> Node:
        if self.accept("BANG"):
            return Opposite(self.parse_unary())
        if self.accept("LPAREN"):
            node = self.parse_or()
            self.expect("RPAREN")
            return node
        return self.parse_segment()

    # Segments -----------------------------------------------------------
    def parse_segment(self) -> ShapeSegment:
        self.expect("LBRACKET")
        fields = {
            "x_start": None,
            "x_end": None,
            "y_start": None,
            "y_end": None,
            "iterator": None,
            "pattern": None,
            "modifier": None,
            "sketch": None,
        }
        while True:
            self.parse_entry(fields)
            if not self.accept("COMMA"):
                break
        self.expect("RBRACKET")
        try:
            location = Location(
                x_start=fields["x_start"],
                x_end=fields["x_end"],
                y_start=fields["y_start"],
                y_end=fields["y_end"],
                iterator=fields["iterator"],
            )
            return ShapeSegment(
                pattern=fields["pattern"],
                location=location,
                modifier=fields["modifier"],
                sketch=fields["sketch"],
            )
        except ShapeQueryValidationError as exc:
            raise self.error(str(exc)) from exc

    def parse_entry(self, fields: dict) -> None:
        token = self.peek()
        if token.kind == "KEY":
            self.parse_location_entry(fields)
        elif token.kind == "IDENT" and token.text == "p":
            self.advance()
            self.expect("EQ")
            fields["pattern"] = self.parse_pattern_value()
        elif token.kind == "IDENT" and token.text == "m":
            self.advance()
            self.expect("EQ")
            fields["modifier"] = self.parse_modifier_value()
        elif token.kind == "IDENT" and token.text == "v":
            self.advance()
            self.expect("EQ")
            fields["sketch"] = self.parse_sketch_value()
        else:
            raise self.error(
                "expected a segment entry (x.s/x.e/y.s/y.e/p/m/v) but found {!r}".format(
                    token.text or "end of query"
                )
            )

    def parse_location_entry(self, fields: dict) -> None:
        key = self.advance().text
        self.expect("EQ")
        slot = {"x.s": "x_start", "x.e": "x_end", "y.s": "y_start", "y.e": "y_end"}[key]
        if self.peek().kind == "DOT" and key == "x.s":
            self.advance()
            # The matching "x.e=.+w" entry supplies the window width.
            fields["x_start"] = None
            fields["_iterator_start"] = True
            return
        if self.peek().kind == "DOTPLUS" and key == "x.e":
            self.advance()
            width = self.parse_number("iterator width")
            try:
                fields["iterator"] = Iterator(width)
            except ShapeQueryValidationError as exc:
                raise self.error(str(exc)) from exc
            return
        fields[slot] = self.parse_number("a {} coordinate".format(key))

    def parse_pattern_value(self) -> Pattern:
        token = self.peek()
        try:
            if token.kind == "IDENT" and token.text in _PATTERN_WORDS:
                self.advance()
                return Pattern(kind=_PATTERN_WORDS[token.text])
            if token.kind == "STAR":
                self.advance()
                return Pattern(kind="any")
            if token.kind == "NUMBER":
                return Pattern(kind="slope", theta=self.parse_number("a slope"))
            if token.kind == "DOLLARNUM":
                self.advance()
                return Pattern(kind="position", reference=PositionRef(index=int(token.text[1:])))
            if token.kind == "DOLLARPREV":
                self.advance()
                return Pattern(kind="position", reference=PositionRef(relative=-1))
            if token.kind == "DOLLARNEXT":
                self.advance()
                return Pattern(kind="position", reference=PositionRef(relative=1))
            if token.kind == "IDENT" and token.text == "udp":
                self.advance()
                self.expect("COLON")
                name = self.expect("IDENT").text
                return Pattern(kind="udp", udp_name=name)
            if token.kind in ("LBRACKET", "LPAREN", "BANG"):
                nested = self.parse_nested_query()
                return Pattern(kind="nested", nested=nested)
        except ShapeQueryValidationError as exc:
            raise self.error(str(exc)) from exc
        raise self.error("expected a pattern value but found {!r}".format(token.text))

    def parse_nested_query(self) -> Node:
        # A nested query runs until the enclosing segment's ',' or ']'.
        # parse_or naturally stops there because neither token can start
        # or continue an expression.
        return self.parse_or()

    def parse_modifier_value(self) -> Modifier:
        token = self.peek()
        try:
            if token.kind == "GTGT":
                self.advance()
                return Modifier(comparison=">>")
            if token.kind == "LTLT":
                self.advance()
                return Modifier(comparison="<<")
            if token.kind == "GT":
                self.advance()
                factor = self.maybe_number()
                return Modifier(comparison=">", factor=factor)
            if token.kind == "LT":
                self.advance()
                factor = self.maybe_number()
                return Modifier(comparison="<", factor=factor)
            if token.kind == "EQ":
                self.advance()
                return Modifier(comparison="=")
            if token.kind == "NUMBER":
                count = self.parse_count("an occurrence count")
                return Modifier(quantifier=Quantifier(low=count, high=count))
            if token.kind == "LBRACE":
                return Modifier(quantifier=self.parse_quantifier())
        except ShapeQueryValidationError as exc:
            raise self.error(str(exc)) from exc
        raise self.error("expected a modifier value but found {!r}".format(token.text))

    def parse_quantifier(self) -> Quantifier:
        self.expect("LBRACE")
        low = None
        high = None
        if self.peek().kind == "NUMBER":
            low = self.parse_count("a quantifier lower bound")
        self.expect("COMMA")
        if self.peek().kind == "NUMBER":
            high = self.parse_count("a quantifier upper bound")
        self.expect("RBRACE")
        return Quantifier(low=low, high=high)

    def parse_sketch_value(self) -> Sketch:
        self.expect("LPAREN")
        points = []
        while True:
            x = self.parse_number("a sketch x value")
            self.expect("COLON")
            y = self.parse_number("a sketch y value")
            points.append((x, y))
            if not self.accept("COMMA"):
                break
        self.expect("RPAREN")
        try:
            return Sketch(points=tuple(points))
        except ShapeQueryValidationError as exc:
            raise self.error(str(exc)) from exc

    # Scalars --------------------------------------------------------------
    def parse_number(self, what: str) -> float:
        token = self.peek()
        if token.kind != "NUMBER":
            raise self.error("expected {} but found {!r}".format(what, token.text))
        self.advance()
        return float(token.text)

    def maybe_number(self) -> Optional[float]:
        if self.peek().kind == "NUMBER":
            return self.parse_number("a factor")
        return None

    def parse_count(self, what: str) -> int:
        value = self.parse_number(what)
        if value != int(value) or value < 0:
            raise self.error("{} must be a non-negative integer".format(what))
        return int(value)
