"""Regex front-end: lexer and CFG parser for the ShapeQuery dialect."""

from repro.parser.lexer import Token, tokenize
from repro.parser.regex_parser import parse

__all__ = ["Token", "tokenize", "parse"]
