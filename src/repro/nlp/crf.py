"""A linear-chain conditional random field, from scratch (paper §4).

The paper tags shape entities with a linear-chain CRF trained with
CRFsuite's L-BFGS algorithm.  CRFsuite is unavailable offline, so this
is the same model family implemented directly:

* binary indicator features per token (string feature names), with
  emission weights ``W[feature, label]`` and transition weights
  ``T[label_prev, label]`` (plus a begin-of-sequence row);
* exact inference by forward–backward in log space;
* maximum-likelihood training (negative log-likelihood + L2 penalty)
  optimized with ``scipy.optimize.minimize(method="L-BFGS-B")``;
* Viterbi decoding.

The paper's hyper-parameters (L1 1.0, L2 0.001, 50 iterations) are
mapped to a pure-L2 configuration since L-BFGS-B requires a smooth
objective; the regularization strength is matched in magnitude (see
DESIGN.md §3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize
from scipy.special import logsumexp

FeatureSet = Sequence[str]


class LinearChainCRF:
    """Sequence labeller over string feature sets."""

    def __init__(self, labels: Sequence[str], l2: float = 0.01, max_iterations: int = 60):
        self.labels: List[str] = list(labels)
        self.label_index: Dict[str, int] = {label: i for i, label in enumerate(self.labels)}
        self.l2 = l2
        self.max_iterations = max_iterations
        self.feature_index: Dict[str, int] = {}
        self.emission: Optional[np.ndarray] = None  # [n_features, n_labels]
        self.transition: Optional[np.ndarray] = None  # [n_labels + 1, n_labels]; last row = BOS
        self.fitted = False

    # -- encoding -----------------------------------------------------------
    def _encode(self, sequence: Sequence[FeatureSet], grow: bool) -> List[List[int]]:
        encoded: List[List[int]] = []
        for features in sequence:
            ids: List[int] = []
            for feature in features:
                index = self.feature_index.get(feature)
                if index is None and grow:
                    index = len(self.feature_index)
                    self.feature_index[feature] = index
                if index is not None:
                    ids.append(index)
            encoded.append(ids)
        return encoded

    def _emission_scores(self, encoded: List[List[int]], emission: np.ndarray) -> np.ndarray:
        n_labels = len(self.labels)
        scores = np.zeros((len(encoded), n_labels))
        for t, ids in enumerate(encoded):
            if ids:
                scores[t] = emission[ids].sum(axis=0)
        return scores

    # -- training ---------------------------------------------------------
    def fit(
        self,
        sequences: Sequence[Sequence[FeatureSet]],
        label_sequences: Sequence[Sequence[str]],
    ) -> "LinearChainCRF":
        """Train by penalized maximum likelihood."""
        if len(sequences) != len(label_sequences):
            raise ValueError("sequences and labels differ in length")
        encoded = [self._encode(sequence, grow=True) for sequence in sequences]
        targets = [
            np.array([self.label_index[label] for label in labels])
            for labels in label_sequences
        ]
        n_features = len(self.feature_index)
        n_labels = len(self.labels)
        emission_size = n_features * n_labels
        transition_size = (n_labels + 1) * n_labels

        def unpack(theta: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            emission = theta[:emission_size].reshape(n_features, n_labels)
            transition = theta[emission_size:].reshape(n_labels + 1, n_labels)
            return emission, transition

        def objective(theta: np.ndarray) -> Tuple[float, np.ndarray]:
            emission, transition = unpack(theta)
            grad_emission = np.zeros_like(emission)
            grad_transition = np.zeros_like(transition)
            nll = 0.0
            for tokens, gold in zip(encoded, targets):
                nll += self._sequence_gradient(
                    tokens, gold, emission, transition, grad_emission, grad_transition
                )
            nll += 0.5 * self.l2 * float(np.sum(theta * theta))
            gradient = np.concatenate(
                [grad_emission.ravel(), grad_transition.ravel()]
            ) + self.l2 * theta
            return nll, gradient

        theta0 = np.zeros(emission_size + transition_size)
        result = minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iterations},
        )
        self.emission, self.transition = unpack(result.x)
        self.fitted = True
        return self

    def _sequence_gradient(
        self,
        tokens: List[List[int]],
        gold: np.ndarray,
        emission: np.ndarray,
        transition: np.ndarray,
        grad_emission: np.ndarray,
        grad_transition: np.ndarray,
    ) -> float:
        """Add one sequence's NLL gradient in place; return its NLL."""
        n = len(tokens)
        n_labels = len(self.labels)
        scores = self._emission_scores(tokens, emission)
        bos = n_labels  # index of the begin-of-sequence transition row

        # Forward pass.
        log_alpha = np.zeros((n, n_labels))
        log_alpha[0] = scores[0] + transition[bos]
        for t in range(1, n):
            log_alpha[t] = scores[t] + logsumexp(
                log_alpha[t - 1][:, None] + transition[:n_labels], axis=0
            )
        log_z = float(logsumexp(log_alpha[-1]))

        # Backward pass.
        log_beta = np.zeros((n, n_labels))
        for t in range(n - 2, -1, -1):
            log_beta[t] = logsumexp(
                transition[:n_labels] + (scores[t + 1] + log_beta[t + 1])[None, :], axis=1
            )

        # Expected (model) counts minus observed counts.
        for t in range(n):
            marginal = np.exp(log_alpha[t] + log_beta[t] - log_z)
            for feature in tokens[t]:
                grad_emission[feature] += marginal
                grad_emission[feature, gold[t]] -= 1.0
        pair_base = transition[:n_labels]
        for t in range(1, n):
            pair = np.exp(
                log_alpha[t - 1][:, None]
                + pair_base
                + (scores[t] + log_beta[t])[None, :]
                - log_z
            )
            grad_transition[:n_labels] += pair
            grad_transition[gold[t - 1], gold[t]] -= 1.0
        first_marginal = np.exp(log_alpha[0] + log_beta[0] - log_z)
        grad_transition[bos] += first_marginal
        grad_transition[bos, gold[0]] -= 1.0

        # Observed sequence score.
        observed = transition[bos, gold[0]] + scores[0, gold[0]]
        for t in range(1, n):
            observed += transition[gold[t - 1], gold[t]] + scores[t, gold[t]]
        return log_z - float(observed)

    # -- inference -------------------------------------------------------------
    def predict(self, sequence: Sequence[FeatureSet]) -> List[str]:
        """Viterbi decoding of the most likely label sequence."""
        if not self.fitted:
            raise RuntimeError("CRF is not fitted")
        if not sequence:
            return []
        encoded = self._encode(sequence, grow=False)
        scores = self._emission_scores(encoded, self.emission)
        n = len(encoded)
        n_labels = len(self.labels)
        bos = n_labels
        delta = np.zeros((n, n_labels))
        backpointer = np.zeros((n, n_labels), dtype=int)
        delta[0] = scores[0] + self.transition[bos]
        for t in range(1, n):
            candidate = delta[t - 1][:, None] + self.transition[:n_labels]
            backpointer[t] = np.argmax(candidate, axis=0)
            delta[t] = scores[t] + np.max(candidate, axis=0)
        path = [int(np.argmax(delta[-1]))]
        for t in range(n - 1, 0, -1):
            path.append(int(backpointer[t, path[-1]]))
        path.reverse()
        return [self.labels[i] for i in path]

    # -- persistence ---------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist the trained model (labels, feature vocab, weights)."""
        if not self.fitted:
            raise RuntimeError("cannot save an unfitted CRF")
        features = sorted(self.feature_index, key=self.feature_index.get)
        np.savez_compressed(
            path,
            labels=np.array(self.labels, dtype=object),
            features=np.array(features, dtype=object),
            emission=self.emission,
            transition=self.transition,
            l2=np.array([self.l2]),
        )

    @classmethod
    def load(cls, path: str) -> "LinearChainCRF":
        """Restore a model saved with :meth:`save`."""
        data = np.load(path, allow_pickle=True)
        model = cls(list(data["labels"]), l2=float(data["l2"][0]))
        model.feature_index = {name: i for i, name in enumerate(data["features"])}
        model.emission = data["emission"]
        model.transition = data["transition"]
        model.fitted = True
        return model

    def evaluate(
        self,
        sequences: Sequence[Sequence[FeatureSet]],
        label_sequences: Sequence[Sequence[str]],
        ignore: str = "O",
    ) -> Dict[str, float]:
        """Token-level precision / recall / F1 on entity labels."""
        true_positive = false_positive = false_negative = 0
        for sequence, gold in zip(sequences, label_sequences):
            predicted = self.predict(sequence)
            for predicted_label, gold_label in zip(predicted, gold):
                if gold_label != ignore and predicted_label == gold_label:
                    true_positive += 1
                elif predicted_label != ignore and predicted_label != gold_label:
                    false_positive += 1
                if gold_label != ignore and predicted_label != gold_label:
                    false_negative += 1
        precision = true_positive / max(1, true_positive + false_positive)
        recall = true_positive / max(1, true_positive + false_negative)
        f1 = 2 * precision * recall / max(1e-12, precision + recall)
        return {"precision": precision, "recall": recall, "f1": f1}
