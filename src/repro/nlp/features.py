"""Feature extraction for the entity CRF (paper §4, Table 3).

For a token at position ``i`` (over the full token list, noise words
included as context), the extracted feature families mirror Table 3:

* POS tags of the token and its neighbours;
* neighbouring word identities (±1, ±2);
* synonym-predicted entities of the token and neighbours, with bucketed
  distances to the nearest predicted entity on either side;
* distances to space/time prepositions on either side;
* distances to punctuation and to and/or/and-then conjunctions;
* miscellaneous: distance to x/y markers, suffix tests ``ends(ing)`` /
  ``ends(ly)``, bucketed query length.
"""

from __future__ import annotations

from typing import List, Optional

from repro.nlp import lexicon
from repro.nlp.pos import pos_tags

#: Prepositions that usually introduce a location along the x axis.
SPACE_PREPOSITIONS = {"from", "to", "between", "at", "until", "till"}
#: Prepositions that usually introduce a duration/window.
TIME_PREPOSITIONS = {"during", "within", "over", "for", "in"}
_CONJUNCTION_AND = {"and"}
_CONJUNCTION_OR = {"or"}
_PUNCTUATION = {",", ";", "."}


def _bucket(distance: Optional[int]) -> str:
    if distance is None:
        return "none"
    if distance <= 3:
        return str(distance)
    return ">3"


def _nearest(predicate, tokens: List[str], i: int, direction: int) -> Optional[int]:
    """Distance to the nearest token satisfying ``predicate``; None if absent."""
    j = i + direction
    while 0 <= j < len(tokens):
        if predicate(tokens[j]):
            return abs(j - i)
        j += direction
    return None


def extract_features(tokens: List[str]) -> List[List[str]]:
    """Per-token feature sets for a tokenized query (lowercased words)."""
    words = [token.lower() for token in tokens]
    tags = pos_tags(tokens)
    predicted = [lexicon.predict_entity(word) for word in words]
    n = len(words)
    length_bucket = "short" if n <= 6 else ("medium" if n <= 12 else "long")

    features: List[List[str]] = []
    for i, word in enumerate(words):
        row: List[str] = []
        # Word identity and neighbours (Table 3 "Words").
        row.append("word={}".format(word))
        for offset, name in ((-1, "word-"), (1, "word+"), (-2, "word--"), (2, "word++")):
            j = i + offset
            row.append("{}={}".format(name, words[j] if 0 <= j < n else "<pad>"))
        # POS tags.
        row.append("pos={}".format(tags[i]))
        row.append("pos-={}".format(tags[i - 1] if i > 0 else "<pad>"))
        row.append("pos+={}".format(tags[i + 1] if i + 1 < n else "<pad>"))
        # Predicted entities (synonym bootstrap).
        row.append("pred={}".format(predicted[i] or "none"))
        row.append("pred-={}".format(predicted[i - 1] if i > 0 else "none"))
        row.append("pred+={}".format(predicted[i + 1] if i + 1 < n else "none"))
        row.append(
            "d(pred-)={}".format(
                _bucket(_nearest(lambda w: lexicon.predict_entity(w) is not None, words, i, -1))
            )
        )
        row.append(
            "d(pred+)={}".format(
                _bucket(_nearest(lambda w: lexicon.predict_entity(w) is not None, words, i, 1))
            )
        )
        # Space/time prepositions.
        row.append(
            "d(space-)={}".format(_bucket(_nearest(lambda w: w in SPACE_PREPOSITIONS, words, i, -1)))
        )
        row.append(
            "d(space+)={}".format(_bucket(_nearest(lambda w: w in SPACE_PREPOSITIONS, words, i, 1)))
        )
        row.append(
            "d(time-)={}".format(_bucket(_nearest(lambda w: w in TIME_PREPOSITIONS, words, i, -1)))
        )
        row.append(
            "d(time+)={}".format(_bucket(_nearest(lambda w: w in TIME_PREPOSITIONS, words, i, 1)))
        )
        # Punctuation and conjunction distances.
        row.append(
            "d(punct-)={}".format(_bucket(_nearest(lambda w: w in _PUNCTUATION, words, i, -1)))
        )
        row.append(
            "d(punct+)={}".format(_bucket(_nearest(lambda w: w in _PUNCTUATION, words, i, 1)))
        )
        row.append(
            "d(and+)={}".format(_bucket(_nearest(lambda w: w in _CONJUNCTION_AND, words, i, 1)))
        )
        row.append(
            "d(or-)={}".format(_bucket(_nearest(lambda w: w in _CONJUNCTION_OR, words, i, -1)))
        )
        then_next = _nearest(lambda w: w == "then", words, i, 1)
        and_next = _nearest(lambda w: w in _CONJUNCTION_AND, words, i, 1)
        and_then = then_next if (then_next is not None and and_next == then_next - 1) else None
        row.append("d(and-then+)={}".format(_bucket(and_then)))
        # Miscellaneous.
        row.append("d(x)={}".format(_bucket(_nearest(lambda w: w == "x", words, i, 1))))
        row.append("d(y)={}".format(_bucket(_nearest(lambda w: w == "y", words, i, 1))))
        row.append("d(next)={}".format(_bucket(_nearest(lambda w: w == "next", words, i, 1))))
        row.append("ends(ing)={}".format(word.endswith("ing")))
        row.append("ends(ly)={}".format(word.endswith("ly")))
        row.append("len={}".format(length_bucket))
        features.append(row)
    return features
