"""Shape-entity tagging pipeline (paper §4).

Two stages, as in the paper: a noise/non-noise decision and an entity
labeller.  Here the two are fused into one sequence model — ``O`` (noise)
is simply one of the CRF's labels — trained on the generated corpus of
:mod:`repro.nlp.corpus`.  A pure rule-based mode (synonym lexicon only)
is available for tests and for environments where the one-off training
cost is unwanted; the CRF is trained lazily on first use and cached per
process.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.nlp import lexicon
from repro.nlp.corpus import build_corpus
from repro.nlp.crf import LinearChainCRF
from repro.nlp.features import extract_features
from repro.nlp.pos import tokenize

#: CRF label space: the entity labels plus noise.
LABELS = list(lexicon.ENTITY_LABELS) + ["O"]

_MODEL_LOCK = threading.Lock()
_MODEL: Optional[LinearChainCRF] = None


@dataclass(frozen=True)
class TaggedWord:
    """One non-noise token with its entity label and source position."""

    word: str
    index: int
    label: str


#: Pre-trained weights shipped with the package (regenerate with
#: ``python -m repro.nlp.tagger``).
_WEIGHTS_PATH = os.path.join(os.path.dirname(__file__), "crf_weights.npz")


def train_default_crf(
    min_size: int = 250, l2: float = 0.05, max_iterations: int = 50
) -> LinearChainCRF:
    """Train the entity CRF on the generated corpus (used by the cache)."""
    corpus = build_corpus(min_size=min_size)
    sequences = [extract_features(tokens) for tokens, _ in corpus]
    labels = [label_sequence for _, label_sequence in corpus]
    model = LinearChainCRF(LABELS, l2=l2, max_iterations=max_iterations)
    model.fit(sequences, labels)
    return model


def default_crf() -> LinearChainCRF:
    """The process-wide CRF: shipped weights if present, else train once."""
    global _MODEL
    if _MODEL is None:
        with _MODEL_LOCK:
            if _MODEL is None:
                if os.path.exists(_WEIGHTS_PATH):
                    _MODEL = LinearChainCRF.load(_WEIGHTS_PATH)
                else:
                    _MODEL = train_default_crf()
    return _MODEL


class EntityTagger:
    """Tokenize a query and label its shape entities.

    ``mode="crf"`` uses the trained sequence model with a lexicon
    fallback for tokens the CRF marks as noise but the synonym lists
    recognize (the paper's bootstrap in reverse); ``mode="rule"`` uses
    the lexicon alone.
    """

    def __init__(self, mode: str = "crf"):
        if mode not in ("crf", "rule"):
            raise ValueError("mode must be 'crf' or 'rule'")
        self.mode = mode

    def tag(self, text: str) -> Tuple[List[str], List[TaggedWord]]:
        """Return (all tokens, entity-labelled non-noise words)."""
        tokens = tokenize(text)
        if not tokens:
            return [], []
        if self.mode == "crf":
            labels = default_crf().predict(extract_features(tokens))
        else:
            labels = [lexicon.predict_entity(token) or "O" for token in tokens]
        tagged: List[TaggedWord] = []
        for index, (token, label) in enumerate(zip(tokens, labels)):
            if label == "O" and self.mode == "crf":
                # Lexicon fallback for high-confidence synonym hits.
                fallback = lexicon.predict_entity(token)
                if fallback in ("PATTERN", "OP_NOT", "NUM"):
                    label = fallback
            if label != "O":
                tagged.append(TaggedWord(word=token.lower(), index=index, label=label))
        return tokens, tagged


if __name__ == "__main__":  # pragma: no cover - weight regeneration entry point
    print("training entity CRF on the generated corpus ...")
    trained = train_default_crf()
    trained.save(_WEIGHTS_PATH)
    print("saved weights to", _WEIGHTS_PATH)
