"""Entity synonym lexicon and edit-distance matching (paper §4).

The paper keeps "a list of frequently occurring words, called synonyms,
for each entity type (e.g. 'increasing' for up, 'next' for CONCAT)" and
tags a token with the entity whose synonym it matches within a small
edit distance.  This module holds those lists for the whole entity
space, plus the normalized-edit-distance matcher used both as a CRF
feature (``predicted-entity``) and as the value-resolution step for
PATTERN/MODIFIER words.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Entity labels used across the NL pipeline (CRF label space minus O).
ENTITY_LABELS = (
    "PATTERN",
    "MODIFIER",
    "QUANT",
    "OP_SEQ",
    "OP_OR",
    "OP_AND",
    "OP_NOT",
    "LOC",
    "NUM",
    "WIDTH",
)

#: value -> synonyms, for PATTERN words.  Values marked "compound:*" are
#: expanded by the translator (a peak is up-then-down).
PATTERN_SYNONYMS: Dict[str, Tuple[str, ...]] = {
    "up": (
        "up", "rise", "rises", "rising", "rose", "increase", "increases",
        "increasing", "increased", "grow", "grows", "growing", "grew",
        "climb", "climbs", "climbing", "climbed", "upward", "uptrend",
        "recover", "recovers", "recovering", "gaining", "expressed",
        "ascending", "improving", "higher",
    ),
    "down": (
        "down", "fall", "falls", "falling", "fell", "decrease", "decreases",
        "decreasing", "decreased", "drop", "drops", "dropping", "dropped",
        "decline", "declines", "declining", "declined", "downward",
        "downtrend", "reduce", "reduces", "reducing", "reduced", "shrinking",
        "descending", "lower", "suppressed",
    ),
    "flat": (
        "flat", "stable", "stabilize", "stabilizes", "stabilized",
        "stabilizing", "constant", "steady", "plateau", "plateaus", "level",
        "unchanged", "still", "stagnant", "remains", "remain", "remained",
    ),
    "compound:peak": ("peak", "peaks", "spike", "spikes", "bump", "top", "tops", "maxima"),
    "compound:valley": ("valley", "valleys", "dip", "dips", "trough", "troughs", "bottom", "bottoms"),
}

#: value -> synonyms for MODIFIER words ('sharp' => m='>>', 'gradual' => m='>').
MODIFIER_SYNONYMS: Dict[str, Tuple[str, ...]] = {
    "sharp": (
        "sharp", "sharply", "steep", "steeply", "quickly", "rapid", "rapidly",
        "sudden", "suddenly", "fast", "drastically", "strongly",
    ),
    "gradual": (
        "gradual", "gradually", "slow", "slowly", "gentle", "gently",
        "slight", "slightly", "steadily", "mildly",
    ),
}

QUANT_SYNONYMS: Dict[str, Tuple[str, ...]] = {
    "times": ("times", "occurrences", "occurrence"),
    "at-least": ("least", "atleast"),
    "at-most": ("most", "atmost"),
    "exactly": ("exactly",),
    "once": ("once",),
    "twice": ("twice",),
    "thrice": ("thrice",),
}

OP_SEQ_SYNONYMS = (
    "then", "next", "followed", "after", "afterwards", "later", "subsequently",
    "finally", "first", "initially", "before", "thereafter",
)
OP_OR_SYNONYMS = ("or",)
OP_AND_SYNONYMS = ("while", "simultaneously", "meanwhile", "also", "whilst")
OP_NOT_SYNONYMS = ("not", "without", "never", "opposite", "isnt", "arent")
LOC_SYNONYMS = ("from", "to", "between", "at", "until", "till", "starting", "ending", "x", "y")
WIDTH_SYNONYMS = (
    "within", "span", "window", "width", "during", "wide", "months", "month",
    "weeks", "week", "days", "day", "points", "hours", "hour",
)

_NUMBER_WORDS = {
    "zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
    "six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
    "eleven": 11, "twelve": 12,
}

#: Words that must never fuzzy-match an entity synonym: command verbs,
#: function words and domain nouns (the z-attribute vocabulary).  The
#: rule-based tagger treats these as noise outright; the CRF learns the
#: same from corpus context, but the stop-list also guards its
#: ``predicted-entity`` feature against lookalike matches ("show"/"slow").
NOISE_WORDS = frozenset(
    """
    show shows me find finds want wants search searching searches give get
    see look looking a an the this that these those is are was were be been
    being with without whose which where what who when has have had do does
    did of in on it its as by for i we you they them their there here and
    but so if than me us our your all any some each every other another
    either neither going moving getting maximum minimum
    trend trends data dataset visualization visualizations chart charts
    gene genes stock stocks city cities product products object objects
    luminosity temperature sales price prices expression series pattern
    patterns shape shapes value values middle start end beginning year years
    """.split()
)


def edit_distance(a: str, b: str) -> int:
    """Classic Levenshtein distance (iterative, O(|a|·|b|))."""
    if a == b:
        return 0
    if not a or not b:
        return len(a) + len(b)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def normalized_edit_distance(a: str, b: str) -> float:
    """Edit distance divided by the average word length (paper §4)."""
    average = (len(a) + len(b)) / 2.0
    if average == 0:
        return 0.0
    return edit_distance(a, b) / average


def _best_in(word: str, synonyms: Iterable[str]) -> Tuple[Optional[str], float]:
    best_synonym, best_distance = None, float("inf")
    for synonym in synonyms:
        distance = normalized_edit_distance(word, synonym)
        if distance < best_distance:
            best_synonym, best_distance = synonym, distance
    return best_synonym, best_distance


def parse_number_word(word: str) -> Optional[float]:
    """Numeric value of a digit string or a small number word."""
    lower = word.lower()
    if lower in _NUMBER_WORDS:
        return float(_NUMBER_WORDS[lower])
    try:
        return float(lower)
    except ValueError:
        return None


#: Matching threshold: normalized edit distance at or below this counts as
#: a synonym hit (paper: raw edit distance <= 2 on typical word lengths).
MATCH_THRESHOLD = 0.26


def predict_entity(word: str) -> Optional[str]:
    """Entity label suggested by the synonym lists (a CRF feature)."""
    lower = word.lower()
    if parse_number_word(lower) is not None:
        return "NUM"
    if lower in NOISE_WORDS:
        return None
    candidates: List[Tuple[str, float]] = []
    for synonyms in PATTERN_SYNONYMS.values():
        _, distance = _best_in(lower, synonyms)
        candidates.append(("PATTERN", distance))
    for synonyms in MODIFIER_SYNONYMS.values():
        _, distance = _best_in(lower, synonyms)
        candidates.append(("MODIFIER", distance))
    for synonyms in QUANT_SYNONYMS.values():
        _, distance = _best_in(lower, synonyms)
        candidates.append(("QUANT", distance))
    for label, synonyms in (
        ("OP_SEQ", OP_SEQ_SYNONYMS),
        ("OP_OR", OP_OR_SYNONYMS),
        ("OP_AND", OP_AND_SYNONYMS),
        ("OP_NOT", OP_NOT_SYNONYMS),
        ("LOC", LOC_SYNONYMS),
        ("WIDTH", WIDTH_SYNONYMS),
    ):
        _, distance = _best_in(lower, synonyms)
        candidates.append((label, distance))
    label, distance = min(candidates, key=lambda item: item[1])
    if distance <= MATCH_THRESHOLD:
        return label
    return None


def resolve_pattern_value(word: str) -> Tuple[Optional[str], float]:
    """Best PATTERN value for a word (possibly a compound like peak)."""
    lower = word.lower()
    best_value, best_distance = None, float("inf")
    for value, synonyms in PATTERN_SYNONYMS.items():
        _, distance = _best_in(lower, synonyms)
        if distance < best_distance:
            best_value, best_distance = value, distance
    return best_value, best_distance


def resolve_modifier_value(word: str) -> Tuple[Optional[str], float]:
    """Best MODIFIER value (sharp/gradual) for a word."""
    lower = word.lower()
    best_value, best_distance = None, float("inf")
    for value, synonyms in MODIFIER_SYNONYMS.items():
        _, distance = _best_in(lower, synonyms)
        if distance < best_distance:
            best_value, best_distance = value, distance
    return best_value, best_distance


def resolve_quant_value(word: str) -> Tuple[Optional[str], float]:
    """Best QUANT marker for a word (times/at-least/at-most/...)."""
    lower = word.lower()
    best_value, best_distance = None, float("inf")
    for value, synonyms in QUANT_SYNONYMS.items():
        _, distance = _best_in(lower, synonyms)
        if distance < best_distance:
            best_value, best_distance = value, distance
    return best_value, best_distance
