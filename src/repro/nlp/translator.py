"""Natural-language → ShapeQuery translation (paper §4).

The pipeline: entity tagging (:mod:`repro.nlp.tagger`), a left-to-right
scan that groups primitives between operator entities into
:class:`~repro.nlp.ambiguity.ProtoSegment` records, value resolution for
PATTERN/MODIFIER words (edit distance, then semantic-network fallback —
the paper's two-tier scheme), Table 4 ambiguity resolution, and finally
AST construction with OR binding tighter than the CONCAT sequence.

Compound shape nouns expand structurally: a *peak* is up⊗down and a
*valley* down⊗up; a quantified peak ("two peaks") becomes an
occurrence-quantified up pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.algebra.nodes import And, Concat, Node, Or, ShapeSegment
from repro.algebra.primitives import (
    Iterator,
    Location,
    Modifier,
    Pattern,
    Quantifier,
)
from repro.algebra.validate import validate
from repro.errors import AmbiguityError, ShapeQuerySyntaxError
from repro.nlp import lexicon, semantics
from repro.nlp.ambiguity import ProtoSegment, Resolution, resolve
from repro.nlp.tagger import EntityTagger, TaggedWord

#: Above this normalized edit distance the semantic network takes over.
_EDIT_THRESHOLD = 0.1


@dataclass
class Translation:
    """The parsed query plus everything the correction panel displays."""

    query: Node
    segments: List[ProtoSegment]
    operators: List[str]
    log: List[str] = field(default_factory=list)


def parse_natural_language(text: str, tagger: Optional[EntityTagger] = None) -> Node:
    """Translate an NL query to a validated ShapeQuery AST."""
    return translate(text, tagger=tagger).query


def translate(text: str, tagger: Optional[EntityTagger] = None) -> Translation:
    """Full translation, keeping the intermediate structures."""
    tagger = tagger if tagger is not None else EntityTagger()
    _, tagged = tagger.tag(text)
    if not tagged:
        raise ShapeQuerySyntaxError("no shape entities recognized in {!r}".format(text))
    segments, operators = _scan(tagged)
    resolution = resolve(segments, operators)
    if not resolution.segments:
        raise AmbiguityError("query {!r} resolved to no ShapeSegments".format(text))
    query = _build_ast(resolution)
    validate(query)
    return Translation(
        query=query,
        segments=resolution.segments,
        operators=resolution.operators,
        log=resolution.log,
    )


# ---------------------------------------------------------------------------
# Scan: tagged entities -> proto segments + operators
# ---------------------------------------------------------------------------


def _scan(tagged: List[TaggedWord]) -> Tuple[List[ProtoSegment], List[str]]:
    segments: List[ProtoSegment] = [ProtoSegment()]
    operators: List[str] = []
    pending_location: Optional[str] = None  # "start" | "end" | "both" | "window"
    pending_number: Optional[float] = None
    pending_quant: Optional[str] = None  # "at-least" | "at-most"
    negate_next = False
    last_operator_index: Optional[int] = None

    def current() -> ProtoSegment:
        return segments[-1]

    def open_segment(op: str, index: int) -> None:
        nonlocal last_operator_index, pending_location, pending_quant
        # Merge multi-token operators ("and then", "followed by").
        if last_operator_index is not None and index - last_operator_index <= 1 and (
            current().empty
        ):
            operators[-1] = op if op != "SEQ" else operators[-1]
            last_operator_index = index
            return
        segments.append(ProtoSegment())
        operators.append(op)
        last_operator_index = index
        pending_location = None
        pending_quant = None

    for position, word in enumerate(tagged):
        label = word.label
        if label == "LOC" and word.word == "at":
            # "at least 2 times" — the LOC reading of "at" yields to the
            # quantifier when the next entity is a QUANT marker.
            following = tagged[position + 1] if position + 1 < len(tagged) else None
            if following is not None and following.label == "QUANT":
                continue
        if label == "PATTERN":
            value = _resolve_pattern(word.word)
            if value is None:
                continue
            segment = current()
            if negate_next:
                segment.negated = True
            if pending_number is not None and value.startswith("compound:"):
                # "two peaks" — quantified occurrence of the compound's rise.
                segment.quantifier = Quantifier(
                    low=int(pending_number), high=int(pending_number)
                )
            segment.patterns.append(value)
            negate_next = False
            pending_number = None
        elif label == "MODIFIER":
            value, distance = lexicon.resolve_modifier_value(word.word)
            if distance > _EDIT_THRESHOLD:
                value = semantics.semantic_value(word.word, "modifier") or value
            current().modifier = value
        elif label == "QUANT":
            value, _ = lexicon.resolve_quant_value(word.word)
            if value in ("once", "twice", "thrice"):
                count = {"once": 1, "twice": 2, "thrice": 3}[value]
                current().quantifier = Quantifier(low=count, high=count)
            elif value in ("at-least", "at-most"):
                pending_quant = value
            elif value == "times" and pending_number is not None:
                count = int(pending_number)
                if pending_quant == "at-least":
                    current().quantifier = Quantifier(low=count)
                elif pending_quant == "at-most":
                    current().quantifier = Quantifier(high=count)
                else:
                    current().quantifier = Quantifier(low=count, high=count)
                pending_number = None
                pending_quant = None
        elif label == "LOC":
            if word.word in ("from", "starting"):
                pending_location = "start"
            elif word.word in ("to", "until", "till", "ending"):
                pending_location = "end"
            elif word.word == "between":
                pending_location = "both"
            elif word.word == "at":
                pending_location = "start"
        elif label == "WIDTH":
            if pending_number is not None:
                current().window = pending_number
                pending_number = None
                pending_location = None
            else:
                pending_location = "window"
        elif label == "NUM":
            number = lexicon.parse_number_word(word.word)
            if number is None:
                continue
            segment = current()
            if pending_location == "start":
                segment.x_start = number
                segment.axis_ambiguous = True
                pending_location = None
            elif pending_location == "end":
                segment.x_end = number
                segment.axis_ambiguous = True
                pending_location = None
            elif pending_location == "both":
                segment.x_start = number
                segment.axis_ambiguous = True
                pending_location = "end"
            elif pending_location == "window":
                segment.window = number
                pending_location = None
            elif pending_quant is not None:
                count = int(number)
                if pending_quant == "at-least":
                    segment.quantifier = Quantifier(low=count)
                else:
                    segment.quantifier = Quantifier(high=count)
                pending_quant = None
            else:
                pending_number = number
        elif label == "OP_SEQ":
            open_segment("SEQ", word.index)
        elif label == "OP_OR":
            open_segment("OR", word.index)
        elif label == "OP_AND":
            open_segment("AND", word.index)
        elif label == "OP_NOT":
            negate_next = True
    return segments, operators


#: Directional helper verbs: part of a pattern phrase ("going down") but
#: carrying no direction themselves — the companion word decides.
_HELPER_VERBS = frozenset({"going", "moving", "getting", "trending", "heading"})


def _resolve_pattern(word: str) -> Optional[str]:
    if word in _HELPER_VERBS:
        return None
    value, distance = lexicon.resolve_pattern_value(word)
    if distance <= _EDIT_THRESHOLD:
        return value
    return semantics.semantic_value(word, "pattern") or value


# ---------------------------------------------------------------------------
# AST construction
# ---------------------------------------------------------------------------


def _build_ast(resolution: Resolution) -> Node:
    nodes = [_segment_to_node(segment) for segment in resolution.segments]
    operators = resolution.operators

    # OR binds tighter than the implicit CONCAT sequence; AND likewise.
    grouped: List[Node] = [nodes[0]]
    for op, node in zip(operators, nodes[1:]):
        if op == "OR":
            previous = grouped.pop()
            if isinstance(previous, Or):
                grouped.append(Or(previous.children + (node,)))
            else:
                grouped.append(Or((previous, node)))
        elif op == "AND":
            previous = grouped.pop()
            if isinstance(previous, And):
                grouped.append(And(previous.children + (node,)))
            else:
                grouped.append(And((previous, node)))
        else:
            grouped.append(node)
    if len(grouped) == 1:
        return grouped[0]
    return Concat(tuple(grouped))


def _segment_to_node(proto: ProtoSegment) -> Node:
    pattern_value = proto.patterns[0] if proto.patterns else None

    location = Location(
        x_start=proto.x_start,
        x_end=proto.x_end,
        y_start=proto.y_start,
        y_end=proto.y_end,
        iterator=Iterator(proto.window) if proto.window is not None else None,
    )

    modifier: Optional[Modifier] = None
    if proto.quantifier is not None:
        modifier = Modifier(quantifier=proto.quantifier)
    elif proto.modifier is not None and pattern_value in ("up", "down"):
        if proto.modifier == "sharp":
            modifier = Modifier(comparison=">>" if pattern_value == "up" else "<<")
        else:
            modifier = Modifier(comparison=">" if pattern_value == "up" else "<")

    if pattern_value is None:
        segment = ShapeSegment(pattern=None, location=location, modifier=modifier)
        return segment

    if pattern_value.startswith("compound:"):
        return _compound_to_node(pattern_value, proto, location, modifier)

    segment = ShapeSegment(
        pattern=Pattern(kind=pattern_value),
        location=location,
        modifier=modifier,
        negated=proto.negated,
    )
    return segment


def _compound_to_node(
    value: str, proto: ProtoSegment, location: Location, modifier: Optional[Modifier]
) -> Node:
    first, second = ("up", "down") if value == "compound:peak" else ("down", "up")
    if proto.quantifier is not None:
        # "two peaks": count occurrences of the leading trend.
        return ShapeSegment(
            pattern=Pattern(kind=first),
            location=location,
            modifier=Modifier(quantifier=proto.quantifier),
            negated=proto.negated,
        )
    sharp = proto.modifier == "sharp"
    first_modifier = None
    second_modifier = None
    if sharp:
        first_modifier = Modifier(comparison=">>" if first == "up" else "<<")
        second_modifier = Modifier(comparison=">>" if second == "up" else "<<")
    head = ShapeSegment(
        pattern=Pattern(kind=first),
        location=location,
        modifier=first_modifier,
        negated=proto.negated,
    )
    tail = ShapeSegment(
        pattern=Pattern(kind=second), modifier=second_modifier, negated=proto.negated
    )
    return Concat((head, tail))
