"""Tagged NL training corpus (the paper's 250 Mechanical-Turk queries).

The paper collected and hand-tagged 250 crowd-sourced descriptions of
trendline patterns.  Offline, this module *generates* an equivalent
corpus: templated sentences covering the phrasing families the paper
lists (sequences, sharp/gradual modifiers, quantifiers, locations,
widths, disjunction, negation), expanded with synonym and noise-word
variation under a fixed seed.  Each item is ``(tokens, labels)`` with
labels from the entity set of :mod:`repro.nlp.lexicon` plus ``"O"``.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.nlp.pos import tokenize

TaggedSentence = Tuple[List[str], List[str]]

#: Slot fillers: (surface form, label).
_UP = [("rising", "PATTERN"), ("increasing", "PATTERN"), ("going up", "PATTERN"),
       ("growing", "PATTERN"), ("climbing", "PATTERN"), ("recovering", "PATTERN")]
_DOWN = [("falling", "PATTERN"), ("decreasing", "PATTERN"), ("going down", "PATTERN"),
         ("dropping", "PATTERN"), ("declining", "PATTERN")]
_FLAT = [("flat", "PATTERN"), ("stable", "PATTERN"), ("constant", "PATTERN"),
         ("steady", "PATTERN"), ("stabilizing", "PATTERN")]
_PEAK = [("peak", "PATTERN"), ("spike", "PATTERN"), ("peaks", "PATTERN"), ("spikes", "PATTERN")]
_VALLEY = [("dip", "PATTERN"), ("valley", "PATTERN"), ("dips", "PATTERN")]
_SHARP = [("sharply", "MODIFIER"), ("steeply", "MODIFIER"), ("rapidly", "MODIFIER"),
          ("suddenly", "MODIFIER"), ("sharp", "MODIFIER")]
_GRADUAL = [("gradually", "MODIFIER"), ("slowly", "MODIFIER"), ("gently", "MODIFIER"),
            ("slightly", "MODIFIER")]
_SEQ = [("then", "OP_SEQ"), ("and then", "OP_SEQ"), ("followed by", "OP_SEQ"),
        ("next", "OP_SEQ"), ("after that", "OP_SEQ"), ("finally", "OP_SEQ")]
_OR = [("or", "OP_OR")]
_NOT = [("not", "OP_NOT"), ("without", "OP_NOT")]
_SUBJECT = ["show me genes that are", "find stocks that are", "find cities where temperature is",
            "objects with luminosity", "i want trends that are", "search for products whose sales are",
            "genes", "stocks", "find me visualizations"]
_NOISE_TAIL = ["", "over time", "in the data", "during the year"]

_NUMBERS = ["2", "3", "4", "5", "6", "10", "two", "three"]
_UNITS = [("months", "WIDTH"), ("weeks", "WIDTH"), ("days", "WIDTH"), ("points", "WIDTH")]


def _emit(parts: List[Tuple[str, str]]) -> TaggedSentence:
    """Expand multi-word fillers to tokens, propagating the label."""
    tokens: List[str] = []
    labels: List[str] = []
    for text, label in parts:
        for token in tokenize(text):
            tokens.append(token)
            labels.append(label)
    return tokens, labels


def _noise(text: str) -> List[Tuple[str, str]]:
    return [(text, "O")] if text else []


def build_corpus(seed: int = 5, min_size: int = 250) -> List[TaggedSentence]:
    """Generate a deterministic tagged corpus of at least ``min_size`` queries."""
    rng = random.Random(seed)
    corpus: List[TaggedSentence] = []

    def add(parts):
        corpus.append(_emit([p for p in parts if p]))

    while len(corpus) < min_size:
        subject = rng.choice(_SUBJECT)
        tail = rng.choice(_NOISE_TAIL)
        up = rng.choice(_UP)
        down = rng.choice(_DOWN)
        flat = rng.choice(_FLAT)
        seq1, seq2 = rng.choice(_SEQ), rng.choice(_SEQ)
        template = len(corpus) % 14

        if template == 0:  # simple sequence: up then down
            add(_noise(subject) + [up, seq1, down] + _noise(tail))
        elif template == 1:  # three-pattern sequence (the genomics query)
            add(_noise(subject) + [up, seq1, down, seq2, up] + _noise(tail))
        elif template == 2:  # sharp modifier before pattern
            sharp = rng.choice(_SHARP)
            add(_noise(subject) + [sharp, up, seq1, down] + _noise(tail))
        elif template == 3:  # modifier after pattern
            gradual = rng.choice(_GRADUAL)
            add(_noise(subject) + [up, gradual, seq1, flat] + _noise(tail))
        elif template == 4:  # quantifier: rising at least 2 times
            number = rng.choice(_NUMBERS)
            add(
                _noise(subject)
                + [up, ("at", "O"), ("least", "QUANT"), (number, "NUM"), ("times", "QUANT")]
                + _noise(tail)
            )
        elif template == 5:  # quantifier with peaks: 2 peaks
            peak = rng.choice(_PEAK)
            number = rng.choice(_NUMBERS)
            add(_noise(subject) + [("with", "O"), (number, "NUM"), peak] + _noise(tail))
        elif template == 6:  # location: rising from 2 to 5
            a, b = sorted(rng.sample([2, 3, 5, 8, 10, 20], 2))
            add(
                _noise(subject)
                + [up, ("from", "LOC"), (str(a), "NUM"), ("to", "LOC"), (str(b), "NUM")]
                + _noise(tail)
            )
        elif template == 7:  # width: maximum rise over 3 months
            number = rng.choice(_NUMBERS)
            unit = rng.choice(_UNITS)
            add(
                _noise(subject)
                + [up, ("within", "WIDTH"), (number, "NUM"), unit]
                + _noise(tail)
            )
        elif template == 8:  # disjunction: either stabilized or decreased
            add(
                _noise(subject)
                + [up, seq1, ("either", "O"), flat, ("or", "OP_OR"), down]
                + _noise(tail)
            )
        elif template == 9:  # negation: not flat
            negation = rng.choice(_NOT)
            add(_noise(subject) + [negation, flat] + _noise(tail))
        elif template == 10:  # dip/valley
            valley = rng.choice(_VALLEY)
            add(_noise(subject) + [("with", "O"), ("a", "O"), valley, ("in", "O"), ("the", "O"), ("middle", "O")])
        elif template == 11:  # sharp peak (the supernova query)
            sharp = rng.choice(_SHARP)
            peak = rng.choice(_PEAK)
            add(_noise("find me objects with a") + [sharp, peak] + _noise("in luminosity"))
        elif template == 12:  # long mixed query with punctuation
            add(
                _noise(subject)
                + [up, (",", "O"), seq1, down, (",", "O"), ("and", "O"), seq2, up]
                + _noise(tail)
            )
        else:  # flat then rise sharply between locations
            sharp = rng.choice(_SHARP)
            a, b = sorted(rng.sample([1, 4, 6, 12], 2))
            add(
                _noise(subject)
                + [flat, seq1, up, sharp, ("between", "LOC"), (str(a), "NUM"),
                   ("and", "O"), (str(b), "NUM")]
            )
    return corpus
