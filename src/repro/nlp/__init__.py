"""Natural-language front-end: tagging, CRF, ambiguity resolution (§4)."""

from repro.nlp.ambiguity import ProtoSegment, Resolution, resolve
from repro.nlp.crf import LinearChainCRF
from repro.nlp.tagger import EntityTagger, TaggedWord, default_crf, train_default_crf
from repro.nlp.translator import Translation, parse_natural_language, translate

__all__ = [
    "ProtoSegment",
    "Resolution",
    "resolve",
    "LinearChainCRF",
    "EntityTagger",
    "TaggedWord",
    "default_crf",
    "train_default_crf",
    "Translation",
    "parse_natural_language",
    "translate",
]
