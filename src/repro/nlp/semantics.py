"""Semantic similarity over the shape vocabulary (paper §4).

When edit distance fails to match a word to a supported value, the paper
falls back to WordNet synset similarity.  WordNet is unavailable offline,
so this module builds the slice of it that matters — a small semantic
network over shape/trend vocabulary — and measures similarity by inverse
shortest-path length, the same formula as WordNet's ``path_similarity``
(see DESIGN.md §3 for the substitution note).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Tuple

import networkx as nx

#: Edges of the semantic network.  Each tuple links two related words;
#: concept hubs (``up``, ``down``, ``flat``, ``sharp``, ``gradual``)
#: anchor their synonym neighbourhoods.
_EDGES = [
    # up neighbourhood
    ("up", "rise"), ("up", "increase"), ("up", "grow"), ("up", "climb"),
    ("up", "ascend"), ("rise", "soar"), ("rise", "surge"), ("increase", "gain"),
    ("grow", "expand"), ("climb", "scale"), ("up", "improve"), ("rise", "rally"),
    ("up", "recover"), ("surge", "jump"), ("up", "higher"), ("gain", "advance"),
    # down neighbourhood
    ("down", "fall"), ("down", "decrease"), ("down", "drop"), ("down", "decline"),
    ("down", "descend"), ("fall", "plunge"), ("fall", "tumble"), ("decrease", "reduce"),
    ("drop", "dive"), ("decline", "slump"), ("down", "worsen"), ("fall", "sink"),
    ("down", "lower"), ("decrease", "shrink"), ("drop", "crash"), ("down", "suppress"),
    # flat neighbourhood
    ("flat", "stable"), ("flat", "constant"), ("flat", "steady"), ("flat", "level"),
    ("stable", "unchanged"), ("constant", "fixed"), ("steady", "plateau"),
    ("flat", "stagnant"), ("stable", "still"), ("flat", "horizontal"),
    # sharp neighbourhood
    ("sharp", "steep"), ("sharp", "sudden"), ("sharp", "rapid"), ("sharp", "quick"),
    ("sudden", "abrupt"), ("rapid", "fast"), ("steep", "drastic"), ("quick", "swift"),
    ("sharp", "strong"), ("rapid", "speedy"),
    # gradual neighbourhood
    ("gradual", "slow"), ("gradual", "gentle"), ("gradual", "slight"),
    ("gradual", "steady"), ("slow", "mild"), ("gentle", "soft"), ("slight", "small"),
    # shape nouns
    ("peak", "top"), ("peak", "spike"), ("peak", "summit"), ("peak", "maximum"),
    ("valley", "dip"), ("valley", "trough"), ("valley", "bottom"), ("valley", "minimum"),
    ("peak", "up"), ("valley", "down"), ("spike", "jump"), ("dip", "drop"),
    # cross-concept antonymy bridges keep the graph connected while
    # staying distant (>= 3 hops between opposite hubs).
    ("higher", "trend"), ("lower", "trend"), ("horizontal", "trend"),
]


@lru_cache(maxsize=1)
def semantic_network() -> nx.Graph:
    """The shape-vocabulary graph (built once)."""
    graph = nx.Graph()
    graph.add_edges_from(_EDGES)
    return graph


def path_similarity(a: str, b: str) -> float:
    """``1 / (1 + shortest path length)``; 0.0 when unrelated/unknown."""
    graph = semantic_network()
    a, b = a.lower(), b.lower()
    if a == b:
        return 1.0
    if a not in graph or b not in graph:
        return 0.0
    try:
        distance = nx.shortest_path_length(graph, a, b)
    except nx.NetworkXNoPath:
        return 0.0
    return 1.0 / (1.0 + distance)


#: Representative anchor per resolvable value.
_VALUE_ANCHORS: Dict[str, Tuple[str, ...]] = {
    "up": ("up", "rise", "increase"),
    "down": ("down", "fall", "decrease"),
    "flat": ("flat", "stable", "constant"),
    "compound:peak": ("peak", "spike"),
    "compound:valley": ("valley", "dip"),
    "sharp": ("sharp", "sudden", "rapid"),
    "gradual": ("gradual", "slow", "gentle"),
}


def semantic_value(word: str, kind: str) -> Optional[str]:
    """Resolve a word to a PATTERN or MODIFIER value by graph proximity.

    ``kind`` is ``"pattern"`` or ``"modifier"``; returns the best value
    or None when the word is not in the network's neighbourhood.
    """
    if kind == "pattern":
        values = ("up", "down", "flat", "compound:peak", "compound:valley")
    else:
        values = ("sharp", "gradual")
    best_value, best_score = None, 0.0
    for value in values:
        score = max(path_similarity(word, anchor) for anchor in _VALUE_ANCHORS[value])
        if score > best_score:
            best_value, best_score = value, score
    if best_score >= 0.25:  # within two hops of an anchor
        return best_value
    return None
