"""Rule-based ambiguity resolution (paper §4, Table 4).

The translator first groups entities between operators into
:class:`ProtoSegment` records; this module then applies the paper's
transformation rules until the proto query is consistent:

1. *Multiple p in one segment* — move the extra pattern into an adjacent
   segment that lacks one, else split into two OR-ed segments.
2. *m without p* — move the modifier to an adjacent segment with a
   pattern but no modifier, else drop it.
3. *Conflicting l and p* — reinterpret reversed x endpoints as y values
   when that matches the pattern's direction, else swap the endpoints.
4. *Overlapping consecutive segments under ⊗* — move x to y when y is
   free, else turn the CONCAT into an AND.

Each applied rule is recorded in the resolution log so the front-end
correction panel can show users what was assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.algebra.primitives import Quantifier


@dataclass
class ProtoSegment:
    """A pre-AST ShapeSegment: entity values grouped between operators."""

    patterns: List[str] = field(default_factory=list)
    modifier: Optional[str] = None  # "sharp" | "gradual"
    quantifier: Optional[Quantifier] = None
    x_start: Optional[float] = None
    x_end: Optional[float] = None
    y_start: Optional[float] = None
    y_end: Optional[float] = None
    window: Optional[float] = None
    negated: bool = False
    #: True when the location numbers came without an explicit axis word.
    axis_ambiguous: bool = False

    @property
    def empty(self) -> bool:
        return (
            not self.patterns
            and self.modifier is None
            and self.quantifier is None
            and self.x_start is None
            and self.x_end is None
            and self.y_start is None
            and self.y_end is None
            and self.window is None
        )


@dataclass
class Resolution:
    """Outcome of ambiguity resolution: cleaned protos, operators, log."""

    segments: List[ProtoSegment]
    operators: List[str]  # between consecutive segments: "SEQ" | "OR" | "AND"
    log: List[str] = field(default_factory=list)


def resolve(segments: List[ProtoSegment], operators: List[str]) -> Resolution:
    """Apply the Table 4 rules; returns cleaned structures plus a log."""
    segments = [seg for seg in segments]
    operators = list(operators)
    log: List[str] = []

    _drop_empty(segments, operators, log)
    _fix_multiple_patterns(segments, operators, log)
    _fix_dangling_modifiers(segments, operators, log)
    _fix_location_conflicts(segments, log)
    _fix_overlaps(segments, operators, log)
    _drop_empty(segments, operators, log)
    return Resolution(segments=segments, operators=operators, log=log)


def _drop_empty(segments, operators, log) -> None:
    index = 0
    while index < len(segments):
        if segments[index].empty:
            segments.pop(index)
            if operators:
                operators.pop(index if index < len(operators) else len(operators) - 1)
            log.append("dropped empty segment {}".format(index))
        else:
            index += 1
    # Normalize the operator count to len(segments) - 1.
    while len(operators) > max(0, len(segments) - 1):
        operators.pop()
    while len(operators) < max(0, len(segments) - 1):
        operators.append("SEQ")


def _fix_multiple_patterns(segments, operators, log) -> None:
    index = 0
    while index < len(segments):
        segment = segments[index]
        while len(segment.patterns) > 1:
            extra = segment.patterns.pop()  # keep the first, rehome the rest
            neighbor = _adjacent_without_pattern(segments, index)
            if neighbor is not None:
                segments[neighbor].patterns.append(extra)
                log.append(
                    "moved extra pattern {!r} from segment {} to {}".format(extra, index, neighbor)
                )
            else:
                # Split: new OR-ed segment right after this one (Table 4 row 1).
                new_segment = ProtoSegment(patterns=[extra])
                segments.insert(index + 1, new_segment)
                operators.insert(index, "OR")
                log.append(
                    "split extra pattern {!r} of segment {} into an OR branch".format(extra, index)
                )
        index += 1


def _adjacent_without_pattern(segments, index) -> Optional[int]:
    for neighbor in (index + 1, index - 1):
        if 0 <= neighbor < len(segments) and not segments[neighbor].patterns:
            return neighbor
    return None


def _fix_dangling_modifiers(segments, operators, log) -> None:
    for index, segment in enumerate(segments):
        if segment.modifier is None or segment.patterns:
            continue
        moved = False
        for neighbor in (index - 1, index + 1):
            if 0 <= neighbor < len(segments) and segments[neighbor].patterns and (
                segments[neighbor].modifier is None
            ):
                segments[neighbor].modifier = segment.modifier
                log.append(
                    "moved modifier {!r} from segment {} to {}".format(
                        segment.modifier, index, neighbor
                    )
                )
                moved = True
                break
        segment.modifier = None
        if not moved:
            log.append("ignored dangling modifier at segment {}".format(index))


def _fix_location_conflicts(segments, log) -> None:
    for index, segment in enumerate(segments):
        pattern = segment.patterns[0] if segment.patterns else None
        # Reversed x endpoints: either the user meant y values, or the
        # endpoints should swap (Table 4 row 3).
        if segment.x_start is not None and segment.x_end is not None and (
            segment.x_start > segment.x_end
        ):
            if segment.axis_ambiguous and pattern == "down":
                segment.y_start, segment.y_end = segment.x_start, segment.x_end
                segment.x_start = segment.x_end = None
                log.append("reinterpreted reversed x endpoints of segment {} as y".format(index))
            else:
                segment.x_start, segment.x_end = segment.x_end, segment.x_start
                log.append("swapped reversed x endpoints of segment {}".format(index))
        # y endpoints conflicting with the pattern direction swap.
        if segment.y_start is not None and segment.y_end is not None:
            rising = segment.y_end > segment.y_start
            if pattern == "down" and rising and not segment.axis_ambiguous:
                segment.y_start, segment.y_end = segment.y_end, segment.y_start
                log.append("swapped y endpoints of segment {} to match 'down'".format(index))
            if pattern == "up" and not rising:
                segment.y_start, segment.y_end = segment.y_end, segment.y_start
                log.append("swapped y endpoints of segment {} to match 'up'".format(index))


def _fix_overlaps(segments, operators, log) -> None:
    for index in range(len(segments) - 1):
        left, right = segments[index], segments[index + 1]
        if operators[index] != "SEQ":
            continue
        if left.x_end is None or right.x_start is None:
            continue
        if right.x_start < left.x_end:
            if left.y_start is None and right.y_start is None and left.axis_ambiguous:
                left.y_start, left.y_end = left.x_start, left.x_end
                right.y_start, right.y_end = right.x_start, right.x_end
                left.x_start = left.x_end = None
                right.x_start = right.x_end = None
                log.append(
                    "reinterpreted overlapping x ranges of segments {}–{} as y".format(
                        index, index + 1
                    )
                )
            else:
                operators[index] = "AND"
                log.append(
                    "replaced CONCAT between overlapping segments {}–{} with AND".format(
                        index, index + 1
                    )
                )
