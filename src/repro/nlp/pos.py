"""A lightweight rule-based part-of-speech tagger (paper §4).

The paper's noise/non-noise classifier keys off POS tags: determiners,
prepositions and stop-words are likely noise, while nouns, adjectives,
adverbs, numbers, transition words and conjunctions likely carry shape
entities.  Full statistical POS tagging is unnecessary for this closed
domain, so the tagger combines a curated lexicon with suffix heuristics
— the same features CRFsuite-based taggers would bootstrap from.
"""

from __future__ import annotations

import re
from typing import List, Tuple

#: Coarse tag set (subset of the Penn tags the paper's features need).
TAGS = ("NOUN", "VERB", "ADJ", "ADV", "NUM", "DET", "PREP", "CONJ", "PRON", "PUNCT", "OTHER")

_DETERMINERS = {"a", "an", "the", "this", "that", "these", "those", "some", "any", "all", "each", "every"}
_PREPOSITIONS = {
    "in", "on", "at", "by", "for", "with", "within", "from", "to", "until", "till",
    "between", "over", "during", "of", "across", "around", "near", "after", "before",
}
_CONJUNCTIONS = {"and", "or", "but", "then", "while", "whereas", "either", "neither", "nor"}
_PRONOUNS = {"i", "me", "my", "we", "us", "our", "you", "your", "it", "its", "they", "them", "their", "which", "whose"}
_VERBS = {
    "is", "are", "was", "were", "be", "been", "show", "find", "search", "want",
    "rise", "rises", "rose", "fall", "falls", "fell", "increase", "increases",
    "increased", "decrease", "decreases", "decreased", "grow", "grows", "grew",
    "drop", "drops", "dropped", "climb", "climbs", "climbed", "decline",
    "declines", "declined", "stabilize", "stabilizes", "stabilized", "stay",
    "stays", "stayed", "remain", "remains", "remained", "peak", "peaks",
    "peaked", "dip", "dips", "dipped", "spike", "spikes", "spiked", "recover",
    "recovers", "recovered", "plateau", "plateaus",
}
_ADVERBS = {
    "sharply", "steeply", "quickly", "rapidly", "suddenly", "gradually",
    "slowly", "gently", "slightly", "steadily", "first", "finally", "again",
    "twice", "once", "thrice", "least", "most", "never", "always", "not",
}
_ADJECTIVES = {
    "sharp", "steep", "quick", "rapid", "sudden", "gradual", "slow", "gentle",
    "slight", "steady", "flat", "stable", "constant", "high", "low", "increasing",
    "decreasing", "rising", "falling", "growing", "declining", "upward", "downward",
}
_NOUNS = {
    "gene", "genes", "stock", "stocks", "city", "cities", "trend", "trends",
    "pattern", "patterns", "peak", "peaks", "valley", "valleys", "dip", "dips",
    "spike", "spikes", "plateau", "shape", "shapes", "expression", "temperature",
    "luminosity", "price", "prices", "month", "months", "week", "weeks", "day",
    "days", "point", "points", "window", "span", "times", "slope", "uptrend",
    "downtrend", "head", "shoulders", "top", "bottom", "start", "end",
}

_NUMBER_RE = re.compile(r"^-?\d+(\.\d+)?$")
_NUMBER_WORDS = {
    "zero", "one", "two", "three", "four", "five", "six", "seven", "eight",
    "nine", "ten", "eleven", "twelve",
}
_PUNCT_RE = re.compile(r"^[,.;:!?()\[\]{}]+$")


def tag_word(word: str) -> str:
    """POS tag for one lowercase token."""
    lower = word.lower()
    if _PUNCT_RE.match(lower):
        return "PUNCT"
    if _NUMBER_RE.match(lower) or lower in _NUMBER_WORDS:
        return "NUM"
    if lower in _DETERMINERS:
        return "DET"
    if lower in _PREPOSITIONS:
        return "PREP"
    if lower in _CONJUNCTIONS:
        return "CONJ"
    if lower in _PRONOUNS:
        return "PRON"
    if lower in _ADVERBS:
        return "ADV"
    if lower in _ADJECTIVES:
        return "ADJ"
    if lower in _VERBS:
        return "VERB"
    if lower in _NOUNS:
        return "NOUN"
    # Suffix heuristics for open-vocabulary words.
    if lower.endswith("ly"):
        return "ADV"
    if lower.endswith("ing") or lower.endswith("ed"):
        return "VERB"
    if lower.endswith("s") and len(lower) > 3:
        return "NOUN"
    return "NOUN" if lower.isalpha() else "OTHER"


def tokenize(text: str) -> List[str]:
    """Split a query into word and punctuation tokens."""
    return re.findall(r"[A-Za-z_]+|-?\d+(?:\.\d+)?|[,.;:!?()\[\]{}]", text)


def pos_tags(tokens: List[str]) -> List[str]:
    """POS tags for a token list."""
    return [tag_word(token) for token in tokens]


def tag(text: str) -> List[Tuple[str, str]]:
    """Tokenize and tag a raw query string."""
    tokens = tokenize(text)
    return list(zip(tokens, pos_tags(tokens)))
