"""Perceptually-aware scoring functions (paper §5.2, Tables 5–6).

All scores live in ``[-1, +1]``: +1 is a perfect match, −1 the perfect
opposite.  Pattern scores are functions of the fitted slope of the
VisualSegment, shaped by ``tan⁻¹`` so that improvements in an already
strong pattern matter less than improvements in a weak one (the paper's
law-of-diminishing-returns argument).  Slopes are measured in normalized
coordinates — σ of y per full trendline width — so a slope of 1.0 reads
as a 45° line on a square canvas.

The module also implements:

* operator combination rules (Table 6): CONCAT = mean, AND = min,
  OR = max, OPPOSITE = negation;
* POSITION/MODIFIER comparison scores (``$i`` with ``>``, ``>>``, …);
* quantifier occurrence counting over directional runs (§5.2);
* sketch similarity (normalized L2, Table 5's ``v`` row); and
* the user-defined-pattern (udp) registry.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algebra.primitives import (
    GRADUAL_SLOPE_DEGREES,
    SHARP_SLOPE_DEGREES,
    Quantifier,
)
from repro.errors import UnknownPatternError

_HALF_PI = math.pi / 2.0

#: Margin (in normalized slope units) a ``>>``/``<<`` comparison must clear.
SHARP_COMPARISON_MARGIN = 1.0

#: RMSE (in z-scored units) at which a sketch match bottoms out at −1.
SKETCH_RMSE_CAP = 2.0

#: Default minimum pattern score for a run to count as a quantifier
#: occurrence (paper §5.2 uses zero "which can be overridden by users"; a
#: slightly positive floor stops barely-drifting runs from counting as
#: rises).  Overridable per engine/session via the
#: ``quantifier_threshold`` option, threaded through
#: :func:`repro.engine.chains.compile_query` into each QuantifierUnit.
QUANTIFIER_POSITIVE_THRESHOLD = 0.3


# --------------------------------------------------------------------------
# Pattern scores (Table 5)
# --------------------------------------------------------------------------

def up_score(slopes):
    """``2·tan⁻¹(slope)/π`` — rises from −1 to +1 with the slope."""
    return 2.0 * np.arctan(slopes) / math.pi


def down_score(slopes):
    """Mirror of :func:`up_score`."""
    return -up_score(slopes)


def flat_score(slopes):
    """``1 − |4·tan⁻¹(slope)/π|`` — +1 at slope 0, −1 at ±90°."""
    return 1.0 - np.abs(4.0 * np.arctan(slopes) / math.pi)


def theta_score(slopes, theta_degrees: float):
    """Slope-target score: +1 at ``θ = x``, −1 at the farthest deviation.

    Table 5's printed formula is garbled in the arXiv copy; this
    implements the stated endpoint semantics (see DESIGN.md §2.2):
    with ``a = tan⁻¹(slope)`` and ``t = radians(x)``,
    ``score = 1 − 2·|a − t| / (π/2 + |t|)``.
    """
    target = math.radians(theta_degrees)
    deviation = np.abs(np.arctan(slopes) - target)
    return 1.0 - 2.0 * deviation / (_HALF_PI + abs(target))


def pattern_score(kind: str, slopes, theta: Optional[float] = None):
    """Dispatch a Table 5 scorer over a slope array (or scalar)."""
    if kind == "up":
        return up_score(slopes)
    if kind == "down":
        return down_score(slopes)
    if kind == "flat":
        return flat_score(slopes)
    if kind == "slope":
        return theta_score(slopes, theta)
    if kind == "any":
        return np.ones_like(np.asarray(slopes, dtype=float))
    if kind == "empty":
        return -np.ones_like(np.asarray(slopes, dtype=float))
    raise UnknownPatternError("no slope-based scorer for pattern kind {!r}".format(kind))


def pattern_score_from_atan(kind: str, atans, theta: Optional[float] = None):
    """Table 5 scorers over *precomputed* ``tan⁻¹(slope)`` values.

    The DP matrix kernel computes one arctan transform per tile
    (:data:`repro.engine.dynamic.SHARE_ATAN`) and every slope-based
    layer consumes it, so the transcendental — the expensive part of the
    slope algebra at large n — is paid once per tile instead of once per
    layer.  Each expression mirrors its :func:`pattern_score` twin
    operation for operation, so shared and private paths agree bit for
    bit.
    """
    if kind == "up":
        return 2.0 * atans / math.pi
    if kind == "down":
        return -(2.0 * atans / math.pi)
    if kind == "flat":
        return 1.0 - np.abs(4.0 * atans / math.pi)
    if kind == "slope":
        target = math.radians(theta)
        deviation = np.abs(atans - target)
        return 1.0 - 2.0 * deviation / (_HALF_PI + abs(target))
    if kind == "any":
        return np.ones_like(np.asarray(atans, dtype=float))
    if kind == "empty":
        return -np.ones_like(np.asarray(atans, dtype=float))
    raise UnknownPatternError("no slope-based scorer for pattern kind {!r}".format(kind))


def sharpened_kind(kind: str, comparison: str) -> Tuple[str, Optional[float]]:
    """Resolve a sharp/gradual modifier on up/down into a θ-target pattern.

    ``[p=up, m=>>]`` (sharply rising) scores as ``θ=75°`` and
    ``[p=up, m=>]`` (gradually rising) as ``θ=30°`` (DESIGN.md §2.3);
    mirrored for ``down``.
    """
    if kind not in ("up", "down"):
        return kind, None
    sign = 1.0 if kind == "up" else -1.0
    if comparison in (">>", "<<"):
        return "slope", sign * SHARP_SLOPE_DEGREES
    if comparison in (">", "<"):
        return "slope", sign * GRADUAL_SLOPE_DEGREES
    return kind, None


# --------------------------------------------------------------------------
# Operator combination (Table 6)
# --------------------------------------------------------------------------

def concat_scores(scores: Sequence[float]) -> float:
    """CONCAT: arithmetic mean of the children's scores."""
    return float(np.mean(scores))


def and_scores(scores: Sequence[float]) -> float:
    """AND: minimum — every pattern must hold in the sub-region."""
    return float(np.min(scores))


def or_scores(scores: Sequence[float]) -> float:
    """OR: maximum — the best matching alternative wins."""
    return float(np.max(scores))


def opposite_score(score: float) -> float:
    """OPPOSITE: negation."""
    return -score


# --------------------------------------------------------------------------
# POSITION comparisons (§3.1 MODIFIER + POSITION)
# --------------------------------------------------------------------------

def position_score(
    slope: float,
    reference_slope: float,
    comparison: Optional[str],
    factor: Optional[float] = None,
) -> float:
    """Score a segment's slope against a referenced segment's slope.

    ``=`` rewards similar fitted angles; ``>``/``<`` reward exceeding or
    undercutting (optionally by a multiplicative ``factor``, e.g. ``>2``
    = at least twice the referenced slope); ``>>``/``<<`` additionally
    require a margin of :data:`SHARP_COMPARISON_MARGIN` normalized slope
    units.  With no comparison at all, ``$i`` defaults to ``=``.
    """
    if comparison is None or comparison == "=":
        deviation = abs(math.atan(slope) - math.atan(reference_slope))
        return 1.0 - 2.0 * deviation / math.pi
    if comparison == ">":
        target = reference_slope * (factor if factor is not None else 1.0)
        return 2.0 * math.atan(slope - target) / math.pi
    if comparison == "<":
        target = reference_slope * (factor if factor is not None else 1.0)
        return 2.0 * math.atan(target - slope) / math.pi
    if comparison == ">>":
        return 2.0 * math.atan(slope - reference_slope - SHARP_COMPARISON_MARGIN) / math.pi
    if comparison == "<<":
        return 2.0 * math.atan(reference_slope - slope - SHARP_COMPARISON_MARGIN) / math.pi
    raise UnknownPatternError("unknown position comparison {!r}".format(comparison))


# --------------------------------------------------------------------------
# Sketch similarity (Table 5 row ``v``)
# --------------------------------------------------------------------------

def resample(values: np.ndarray, length: int) -> np.ndarray:
    """Linear re-interpolation of a series to ``length`` samples.

    Degenerate sources are defined rather than left to ``np.interp``'s
    mercy (an empty source grid raises, a one-point grid is a division
    hazard): an empty series resamples to zeros and a single point
    broadcasts to a constant series.
    """
    values = np.asarray(values, dtype=float)
    length = max(0, int(length))
    if len(values) == length:
        return values
    if len(values) == 0:
        return np.zeros(length)
    if len(values) == 1:
        return np.full(length, float(values[0]))
    source = np.linspace(0.0, 1.0, len(values))
    target = np.linspace(0.0, 1.0, length)
    return np.interp(target, source, values)


def znormalize(values: np.ndarray) -> np.ndarray:
    """z-score a series; constant (and empty) series map to zeros."""
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        return np.zeros(0)
    std = values.std()
    if std < 1e-12:
        return np.zeros_like(values)
    return (values - values.mean()) / std


def sketch_score(segment_values: np.ndarray, sketch_values: np.ndarray) -> float:
    """Normalized-L2 similarity in ``[-1, 1]``.

    Both series are z-normalized and length-aligned; the RMSE between
    them is mapped linearly so 0 → +1 and :data:`SKETCH_RMSE_CAP` → −1.
    Degenerate input has a defined score: a segment or sketch with fewer
    than two points cannot express a shape and scores −1.
    """
    if len(segment_values) < 2 or len(sketch_values) < 2:
        return -1.0
    reference = resample(sketch_values, len(segment_values))
    a = znormalize(segment_values)
    b = znormalize(reference)
    rmse = math.sqrt(float(np.mean((a - b) ** 2)))
    return 1.0 - 2.0 * min(rmse, SKETCH_RMSE_CAP) / SKETCH_RMSE_CAP


# --------------------------------------------------------------------------
# Quantifier occurrence counting (§5.2 "Scoring quantifiers")
# --------------------------------------------------------------------------

def directional_runs(values: np.ndarray, min_points: int = 2) -> List[Tuple[int, int]]:
    """Maximal same-direction runs as bin ranges; see :func:`classified_runs`."""
    return [(a, b) for a, b, _ in classified_runs(values, min_points)]


def classified_runs(
    values: np.ndarray, min_points: int = 2
) -> List[Tuple[int, int, int]]:
    """Maximal same-direction runs of a series: ``(a, b, class)`` triples.

    Consecutive differences are classified into rising (+1), falling (−1)
    and flat (0); maximal stretches of the same class become runs; runs
    spanning fewer than ``min_points`` differences are merged into their
    neighbour — the blurring step that ignores one-or-two-sample wiggles
    (paper §3's "minor fluctuations").  Consecutive runs share their
    junction point, so a run's ``b`` equals the next run's ``a`` + 1.
    The class lets quantifiers count only genuinely-rising runs when
    asked for "rises at least twice" (a long flat stretch whose fitted
    slope is barely positive is not a rise).
    """
    values = np.asarray(values, dtype=float)
    if len(values) < 2:
        return []
    diffs = np.diff(values)
    span = float(values.max() - values.min())
    tolerance = 1e-12 if span == 0 else span * 1e-3
    classes = np.where(diffs > tolerance, 1, np.where(diffs < -tolerance, -1, 0))

    runs: List[Tuple[int, int, int]] = []  # (start, end, class) over diff indices
    start = 0
    for i in range(1, len(classes)):
        if classes[i] != classes[start]:
            runs.append((start, i, int(classes[start])))
            start = i
    runs.append((start, len(classes), int(classes[start])))

    threshold = max(1, min_points)
    merged: List[Tuple[int, int, int]] = []
    for run in runs:
        if merged and (run[1] - run[0]) < threshold:
            previous = merged.pop()
            merged.append((previous[0], run[1], previous[2]))
        else:
            merged.append(run)
    # A short leading run merges forward instead.
    while len(merged) >= 2 and (merged[0][1] - merged[0][0]) < threshold:
        first, second = merged[0], merged[1]
        merged = [(first[0], second[1], second[2])] + merged[2:]
    # Coalesce same-class neighbours created by absorbing wiggles.
    coalesced: List[Tuple[int, int, int]] = []
    for run in merged:
        if coalesced and coalesced[-1][2] == run[2]:
            previous = coalesced.pop()
            coalesced.append((previous[0], run[1], previous[2]))
        else:
            coalesced.append(run)
    # Diff index range [a, b) covers points/bins [a, b+1).
    return [(a, b + 1, cls) for a, b, cls in coalesced]


def quantifier_score(
    quantifier: Quantifier,
    run_scores: Sequence[float],
    positive_threshold: float = 0.0,
) -> float:
    """Combine per-run pattern scores under an occurrence quantifier.

    Runs scoring above ``positive_threshold`` count as occurrences.  If
    the count violates the quantifier the segment scores −1; otherwise
    the score is the mean of the best ``q`` occurrences where ``q`` is
    the quantifier's minimum requirement ("the minimum number of
    sub-segments that satisfy the constraint").  A satisfied quantifier
    with zero occurrences required and none present scores +1.
    """
    occurrences = sorted(
        (score for score in run_scores if score > positive_threshold), reverse=True
    )
    if not quantifier.accepts(len(occurrences)):
        return -1.0
    needed = quantifier.required
    if needed == 0:
        if not occurrences:
            return 1.0
        needed = len(occurrences)
    return float(np.mean(occurrences[:needed]))


# --------------------------------------------------------------------------
# User-defined patterns (§3.1 ``udp``)
# --------------------------------------------------------------------------

#: A UDP takes (normalized segment values, fitted slope) and returns [-1, 1].
UdpFunction = Callable[[np.ndarray, float], float]

_UDP_REGISTRY: Dict[str, UdpFunction] = {}


def register_udp(name: str, function: UdpFunction) -> None:
    """Register a user-defined pattern under ``name`` (``p=udp:name``)."""
    _UDP_REGISTRY[name] = function


def unregister_udp(name: str) -> None:
    """Remove a registered UDP; unknown names are ignored."""
    _UDP_REGISTRY.pop(name, None)


def get_udp(name: str) -> UdpFunction:
    """Look up a UDP, raising :class:`UnknownPatternError` if missing."""
    try:
        return _UDP_REGISTRY[name]
    except KeyError:
        raise UnknownPatternError(
            "user-defined pattern {!r} is not registered".format(name)
        ) from None


@contextmanager
def temporary_udp(name: str, function: UdpFunction):
    """Scoped UDP registration (used by tests and examples)."""
    register_udp(name, function)
    try:
        yield
    finally:
        unregister_udp(name)
