"""Persistent multi-resolution shape index for sublinear top-k (ROADMAP).

Every rank path used to score every candidate trendline — the paper's
§6.2/§6.3 machinery bounds one trendline at a time, so top-k latency is
linear in collection size even though most candidates can never enter
the top k.  This module inverts that structure into a *collection-level*
index:

* Per trendline, a **pyramid of position buckets**: at each level the
  bins are cut into ``W`` super-bins of width ``w`` and every bucket
  ``(a, b)`` summarizes the min/max ``tan⁻¹(fitted slope)`` over *all*
  segments ``[l, r)`` with ``l`` in super-bin ``a``, ``r−1`` in
  super-bin ``b`` and at least :data:`~repro.engine.units.MIN_SEGMENT_BINS`
  bins — computed in one vectorized pass per start super-bin from
  :meth:`~repro.engine.statistics.PrefixStats.slope_matrix`.  Coarser
  levels double ``w``; because ``floor(l / 2w) = floor(floor(l / w) / 2)``
  they derive *exactly* from the finer level by pairwise min/max
  combines, so the whole pyramid costs one O(n²) sweep.

* Per query, a **coarse max-plus DP over the buckets**: for chains whose
  units are all statically bounded (the
  :func:`~repro.engine.pushdown.chain_statically_bounded` gate shared
  with ``eager_upper_bound``), each unit's Table 5 score over a bucket
  is bounded by its value at the bucket's atan endpoints — the same
  endpoint-extreme + flat/θ straddle reasoning as
  :meth:`SlopeUnit.bounds_from_slopes <repro.engine.units.SlopeUnit.bounds_from_slopes>`
  and :func:`~repro.engine.bounds.chain_bounds`, but *without* the
  regression-slack margin: a bucket's interval covers the fitted atan of
  every admissible segment exactly (the segment itself is one of the
  aggregated ranges, fitted by the same bit-identical
  ``PrefixStats._slopes`` algebra), not a blend of node slopes.  A
  max-plus recurrence over (start super-bin, end super-bin) then bounds
  the best full segmentation; the query bound is the max over chains,
  min over levels, clamped to the score range at −1.

**Soundness** (what makes index-pruned runs byte-identical): every
engine algorithm places each chain as a full cover of ``[0, n)`` with
per-unit width ≥ ``run_min_length(0, n, m)`` (dp/loop, segment-tree,
greedy, exhaustive all share that floor), so any true placement maps to
a bucket path the coarse DP admits — consecutive units share their
boundary bin, so the next start super-bin is the previous end super-bin
or its successor — and every per-unit score is ≤ its bucket bound
(y-location masks only *lower* scores).  Infeasible chains score
:data:`~repro.engine.units.INFEASIBLE` = −1, which the −1 clamp covers.
A candidate is discarded only when its bound is **strictly below** the
running top-k floor (the k-th best of exactly-scored seed candidates),
so its true score is strictly below at least k other candidates' and it
cannot appear in the top k under any tie-break; survivors keep their
relative positions, so the *(score desc, position asc)* shard order —
and the key-based presentation order — select exactly the unindexed
run's matches.

Pruning decisions route through one seam — :func:`survives_floor` —
enforced by reprolint rule REP061: no ad-hoc floor thresholds.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.table import canonical_group_key
from repro.engine import scoring
from repro.engine.chains import Chain, CompiledQuery
from repro.engine.trendline import Trendline
from repro.engine.units import MIN_SEGMENT_BINS, LineUnit, SlopeUnit, run_min_length

#: Target super-bin count of the finest pyramid level.  32² buckets keep
#: the per-candidate query work trivial (a few (32, 32) array ops per
#: unit) while still resolving where in the trendline a pattern can live.
MAX_SUPER_BINS = 32

#: Coarsening stops once a level would have fewer super-bins than this;
#: trendlines too short to host even the coarsest level are left
#: unindexed (their entry is None — never pruned, trivially exact).
MIN_SUPER_BINS = 4

_NEG_INF = -np.inf
_POS_INF = np.inf


def survives_floor(upper_bounds, floor):
    """THE top-k floor seam: may these bounds still reach the floor?

    Every index pruning decision — scalar or vectorized — is this single
    comparison: a candidate survives iff its upper bound is ≥ the
    running top-k floor, i.e. discards are *strict* ``upper < floor``.
    Strictness is what makes pruning exact under ties: a candidate tied
    with the floor always survives and competes under the normal
    tie-break order.  Centralizing the comparison here (reprolint
    REP061) keeps the discard rule from drifting into ad-hoc thresholds.

    Vectorized inputs of any shape are fine, including the empty
    candidate vector: ``survives_floor(np.zeros(0), floor)`` is an empty
    boolean array — no candidates, no verdicts — so callers iterating
    the verdict never special-case an empty collection.
    """
    return np.greater_equal(upper_bounds, floor)


def index_supports(query: CompiledQuery) -> bool:
    """Can the shape index bound this query? (else: full-scan fallback)

    Requires the fully fuzzy shape :func:`~repro.engine.pruning.is_prunable`
    demands (no x pins, no iterators — pinned layouts change the DP's
    piece structure), every chain statically bounded (the
    :func:`~repro.engine.pushdown.chain_statically_bounded` gate shared
    with the eager push-down bound), and at least one directional /
    slope-target unit somewhere — a query of only ``any``/line units
    bounds every candidate at 1.0, so the planner skips the stage
    rather than running a vacuous one.
    """
    from repro.engine.pruning import is_prunable
    from repro.engine.pushdown import chain_statically_bounded

    if not is_prunable(query):
        return False
    directional = False
    for chain in query.chains:
        if not chain_statically_bounded(chain):
            return False
        for cu in chain.units:
            if isinstance(cu.unit, SlopeUnit) and cu.unit.kind in (
                "up", "down", "flat", "slope"
            ):
                directional = True
    return directional


# ---------------------------------------------------------------------------
# Build: one O(n²) vectorized sweep per trendline
# ---------------------------------------------------------------------------


class TrendlineEntry:
    """One trendline's pyramid: ``(w, atan min, atan max)`` per level.

    ``levels`` runs fine → coarse; queries iterate it reversed.  Bucket
    matrices are ``(W, W)`` with ``+inf``/``−inf`` sentinels marking
    buckets that contain no admissible segment.  ``witness`` identifies
    the exact bits the entry was built from (canonical group key, bin
    count, prefix digest) so :meth:`ShapeIndex.extended` can reuse it
    only when reuse is bitwise free.
    """

    __slots__ = ("n_bins", "levels", "witness")

    def __init__(self, n_bins: int, levels: List[Tuple[int, np.ndarray, np.ndarray]],
                 witness: Optional[tuple]):
        self.n_bins = n_bins
        self.levels = levels
        self.witness = witness

    @property
    def nbytes(self) -> int:
        return sum(amin.nbytes + amax.nbytes for _w, amin, amax in self.levels)


def _prefix_digest(prefix) -> str:
    """Content digest of a trendline's cumulative statistics.

    The index is a pure function of these bits (every bucket aggregates
    ``PrefixStats._slopes`` outputs), so two trendlines with equal
    digests build bitwise-equal entries — the reuse gate of
    :meth:`ShapeIndex.extended`.  The five arrays are digested in
    :data:`~repro.engine.statistics.PrefixStats.STACKED_ROWS` order
    whether or not the stacked block exists, so publishers and
    reattached copies agree.
    """
    if prefix.stacked is not None:
        block = np.ascontiguousarray(prefix.stacked)
    else:
        block = np.ascontiguousarray(
            np.stack([prefix.count, prefix.sx, prefix.sy, prefix.sxy, prefix.sxx])
        )
    digest = hashlib.sha1(block.tobytes())
    digest.update(str(block.dtype).encode("ascii"))
    return digest.hexdigest()


def _trendline_witness(trendline: Trendline) -> tuple:
    return (
        canonical_group_key(trendline.key),
        trendline.n_bins,
        _prefix_digest(trendline.prefix),
    )


def _pair_combine(matrix: np.ndarray, fill: float, op) -> np.ndarray:
    """Exact one-level coarsening: 2×2 block reduce with sentinel padding."""
    size = matrix.shape[0]
    if size % 2:
        matrix = np.pad(matrix, ((0, 1), (0, 1)), constant_values=fill)
    rows = op(matrix[0::2, :], matrix[1::2, :])
    return op(rows[:, 0::2], rows[:, 1::2])


def _finest_level(trendline: Trendline, w: int, W: int) -> Tuple[np.ndarray, np.ndarray]:
    """Min/max fitted slope per (start super-bin, end super-bin) bucket.

    One :meth:`PrefixStats.slope_matrix` call per start super-bin (≤ w
    start rows × n+1 end columns), masked to admissible widths, reduced
    over rows, then group-reduced over end columns with ``reduceat`` at
    the super-bin boundaries — O(n²) element work in ~W numpy dispatches.
    """
    prefix = trendline.prefix
    n = trendline.n_bins
    ends = np.arange(n + 1)
    smin = np.empty((W, n), dtype=float)
    smax = np.empty((W, n), dtype=float)
    for a in range(W):
        starts = np.arange(a * w, min((a + 1) * w, n))
        block = np.asarray(prefix.slope_matrix(starts, ends), dtype=float)
        valid = ends[None, :] - starts[:, None] >= MIN_SEGMENT_BINS
        # Column r=0 can never end a segment; slicing it off aligns
        # column i with end bin r = i + 1, whose bucket is i // w.
        smin[a] = np.where(valid, block, _POS_INF).min(axis=0)[1:]
        smax[a] = np.where(valid, block, _NEG_INF).max(axis=0)[1:]
    offsets = np.arange(W) * w
    bucket_min = np.minimum.reduceat(smin, offsets, axis=1)
    bucket_max = np.maximum.reduceat(smax, offsets, axis=1)
    return bucket_min, bucket_max


def _atan_buckets(bucket_min: np.ndarray, bucket_max: np.ndarray):
    """Slope extremes → atan extremes, preserving the ±inf empty sentinels.

    ``arctan`` is (weakly) monotone, including under IEEE rounding, so
    the atan of the bucket's slope extremes bounds the atan of every
    aggregated segment's slope — which is what the Table 5 transforms
    consume.
    """
    empty = ~np.isfinite(bucket_min)
    amin = np.where(empty, _POS_INF, np.arctan(np.where(empty, 0.0, bucket_min)))
    amax = np.where(empty, _NEG_INF, np.arctan(np.where(empty, 0.0, bucket_max)))
    return amin, amax


def _build_entry(trendline: Trendline) -> Optional[TrendlineEntry]:
    n = trendline.n_bins
    w = max(MIN_SEGMENT_BINS, -(-n // MAX_SUPER_BINS))
    W = -(-n // w)
    if W < MIN_SUPER_BINS:
        return None
    bucket_min, bucket_max = _finest_level(trendline, w, W)
    levels = [(w, *_atan_buckets(bucket_min, bucket_max))]
    while (W + 1) // 2 >= MIN_SUPER_BINS:
        bucket_min = _pair_combine(bucket_min, _POS_INF, np.minimum)
        bucket_max = _pair_combine(bucket_max, _NEG_INF, np.maximum)
        w, W = w * 2, (W + 1) // 2
        levels.append((w, *_atan_buckets(bucket_min, bucket_max)))
    return TrendlineEntry(n, levels, _trendline_witness(trendline))


class ShapeIndex:
    """The collection-level index: one pyramid entry per candidate.

    Built once per collection (:meth:`build`), extended incrementally
    across appends (:meth:`extended` — unchanged trendlines keep their
    entries bit for bit), packable into one flat float64 block for
    zero-copy shared-memory publication and on-disk persistence
    (:meth:`pack` / :meth:`packed` / :meth:`from_packed` — the same
    layout a worker attaches over shm, ``engine/artifacts.py`` memory-maps
    from disk).
    """

    __slots__ = ("entries", "_by_key", "_packed", "_tile_memo")

    def __init__(self, entries: List[Optional[TrendlineEntry]]):
        self.entries = entries
        self._packed: Optional[Tuple[np.ndarray, list]] = None
        self._tile_memo: Dict[Tuple[int, int], list] = {}
        self._by_key: Dict[object, TrendlineEntry] = {}
        for entry in entries:
            if entry is not None and entry.witness is not None:
                self._by_key[entry.witness[0]] = entry

    @classmethod
    def build(cls, trendlines: Sequence[Trendline]) -> "ShapeIndex":
        return cls([_build_entry(trendline) for trendline in trendlines])

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def indexed(self) -> int:
        """Entries that actually carry a pyramid (others never prune)."""
        return sum(1 for entry in self.entries if entry is not None)

    @property
    def nbytes(self) -> int:
        return sum(entry.nbytes for entry in self.entries if entry is not None)

    # -- incremental extension ---------------------------------------------
    def extended(self, trendlines: Sequence[Trendline]) -> "ShapeIndex":
        """The index of ``trendlines``, reusing every bitwise-unchanged entry.

        Matching is by content witness (canonical group key + bin count
        + prefix digest), not position, so appends that add new groups —
        or re-generations that drop degenerate ones — still reuse every
        untouched trendline's pyramid.  An entry is a pure function of
        the witnessed bits, so the result equals :meth:`build` on the
        same trendlines bit for bit; reuse is only ever a work-skip.
        """
        entries: List[Optional[TrendlineEntry]] = []
        for trendline in trendlines:
            witness = _trendline_witness(trendline)
            previous = self._by_key.get(witness[0])
            if previous is not None and previous.witness == witness:
                entries.append(previous)
            else:
                entries.append(_build_entry(trendline))
        return ShapeIndex(entries)

    # -- query-time bounds --------------------------------------------------
    def upper_bound(
        self, position: int, query: CompiledQuery, floor: float = _NEG_INF
    ) -> float:
        """Upper bound on ``query``'s score for candidate ``position``.

        Levels are consulted coarse → fine, each tightening the bound
        (min over levels), stopping early once the candidate can no
        longer reach ``floor`` — the returned value is always a valid
        upper bound, and the :func:`survives_floor` verdict on it is
        final.  Unindexed candidates bound at ``+inf`` (never pruned).
        """
        entry = self.entries[position]
        if entry is None:
            return _POS_INF
        bound = _POS_INF
        for w, amin, amax in reversed(entry.levels):
            level_bound = -1.0
            shared: dict = {"empty": np.isinf(amin)}
            for chain in query.chains:
                level_bound = max(
                    level_bound,
                    _chain_level_bound(entry.n_bins, chain, w, amin, amax, shared),
                )
            bound = max(-1.0, min(bound, level_bound))
            if not survives_floor(bound, floor):
                return float(bound)
        return float(bound)

    def upper_bounds(
        self, query: CompiledQuery, floor: float = _NEG_INF
    ) -> np.ndarray:
        """Per-candidate upper bounds (block-batched twin of :meth:`upper_bound`).

        One coarse max-plus DP per pyramid level across *all* candidates
        at once: same-shaped levels are stacked into ``(candidates, W,
        W)`` tiles over the packed block (zero-copy strided views when
        the block is contiguous — the shm and memmap forms always are)
        and the recurrence runs on ``(candidates, W)`` state tiles, so
        there is no per-candidate Python dispatch.  Bitwise-equal to the
        retained scalar oracle: every max/min/clamp mirrors
        :meth:`upper_bound` operation for operation, including the
        per-candidate coarse-level early-exit freeze when ``floor`` is
        bounded.  Unindexed entries bound at ``+inf`` (never pruned);
        an empty index returns a well-formed empty float64 vector.
        """
        return self.upper_bounds_range(query, 0, len(self.entries), floor)

    def upper_bounds_range(
        self, query: CompiledQuery, start: int, end: int,
        floor: float = _NEG_INF,
    ) -> np.ndarray:
        """Bounds for candidate positions ``[start, end)`` — the shard form.

        ``dispatch_index_bounds`` workers call this over their range of
        the attached index; the DP is per-candidate independent, so
        sharding never changes a float and the concatenated shards equal
        the in-process :meth:`upper_bounds` bit for bit.
        """
        count = max(0, end - start)
        out = np.full(count, _POS_INF, dtype=np.float64)
        for n_bins, positions, levels in self._tiles(start, end):
            out[positions] = _batched_level_bounds(n_bins, levels, query, floor)
        return out

    def _tiles(self, start: int, end: int) -> list:
        """Stacked per-level tiles of ``[start, end)``, grouped by ``n_bins``.

        The pyramid's level shapes are a pure function of ``n_bins``, so
        grouping by it makes every group's levels stackable.  Tiles are
        views (or one-time gathers) over the packed block and carry no
        query state, so they are memoized per range — repeated queries
        and the deterministic worker shard ranges reuse them.
        """
        key = (start, end)
        tiles = self._tile_memo.get(key)
        if tiles is None:
            values, layout = self.packed()
            groups: Dict[int, List[int]] = {}
            for local in range(max(0, end - start)):
                item = layout[start + local]
                if item is not None:
                    groups.setdefault(item[0], []).append(local)
            tiles = []
            for n_bins, locals_ in groups.items():
                shapes = layout[start + locals_[0]][1]
                levels = []
                for depth, (w, W, _offset) in enumerate(shapes):
                    offsets = np.fromiter(
                        (layout[start + local][1][depth][2] for local in locals_),
                        dtype=np.int64, count=len(locals_),
                    )
                    amin, amax = _gather_level(values, offsets, W)
                    levels.append((w, amin, amax))
                tiles.append((n_bins, np.asarray(locals_, dtype=np.intp), levels))
            if len(self._tile_memo) >= _MAX_TILE_MEMO:
                self._tile_memo.clear()
            self._tile_memo[key] = tiles
        return tiles

    # -- flat packing (the shared-memory and on-disk export form) ------------
    def packed(self) -> Tuple[np.ndarray, list]:
        """The packed ``(values, layout)`` form, computed once and memoized.

        Shared by the batched bound kernel, shm publication and the
        artifact store; indexes reconstructed by :meth:`from_packed`
        (attached segments, memory-mapped artifacts) keep their source
        block here zero-copy instead of repacking.
        """
        if self._packed is None:
            self._packed = self.pack()
        return self._packed

    def pack(self) -> Tuple[np.ndarray, list]:
        """Flatten into ``(values, layout)`` for shared-memory publication.

        ``values`` is one contiguous float64 block — per indexed entry,
        per level, the bucket-min then bucket-max matrices raveled —
        and ``layout`` the per-entry shape metadata (``None`` for
        unindexed entries, else ``(n_bins, [(w, W, offset), ...])``).
        :meth:`from_packed` reconstructs entries as zero-copy views.
        """
        parts: List[np.ndarray] = []
        layout: list = []
        offset = 0
        for entry in self.entries:
            if entry is None:
                layout.append(None)
                continue
            shapes = []
            for w, amin, amax in entry.levels:
                shapes.append((w, amin.shape[0], offset))
                parts.append(np.ascontiguousarray(amin, dtype=np.float64).ravel())
                parts.append(np.ascontiguousarray(amax, dtype=np.float64).ravel())
                offset += 2 * amin.size
            layout.append((entry.n_bins, shapes))
        values = (
            np.concatenate(parts) if parts else np.zeros(0, dtype=np.float64)
        )
        return values, layout

    @classmethod
    def from_packed(
        cls, values: np.ndarray, layout: list,
        witnesses: Optional[Sequence[Optional[tuple]]] = None,
    ) -> "ShapeIndex":
        """Rebuild from :meth:`pack` output without copying bucket data.

        By default entries carry no witness (an attached shm index is a
        read-only consumer view — extension happens publisher-side and
        republishes).  The artifact store passes the persisted
        ``witnesses`` back in so a memory-mapped index keeps the
        :meth:`extended` reuse contract across process restarts.
        """
        entries: List[Optional[TrendlineEntry]] = []
        for position, item in enumerate(layout):
            if item is None:
                entries.append(None)
                continue
            n_bins, shapes = item
            levels = []
            for w, W, offset in shapes:
                size = W * W
                amin = values[offset:offset + size].reshape(W, W)
                amax = values[offset + size:offset + 2 * size].reshape(W, W)
                levels.append((w, amin, amax))
            witness = witnesses[position] if witnesses is not None else None
            entries.append(TrendlineEntry(n_bins, levels, witness))
        index = cls(entries)
        index._packed = (values, layout)
        return index


# ---------------------------------------------------------------------------
# Per-level chain bound: unit bucket bounds + coarse max-plus DP
# ---------------------------------------------------------------------------


def _unit_upper(unit, amin: np.ndarray, amax: np.ndarray, shared: dict) -> np.ndarray:
    """(W, W) upper bound on one unit's score over each bucket's segments.

    For up/down the Table 5 score is monotone in the atan, so the
    endpoint maximum is exact; flat/θ scores additionally peak at 1.0
    when the bucket's atan interval straddles the target (for a negated
    flat/θ the peak is a trough, so the endpoint maximum stays exact).
    ``any``/``empty`` and line units score constants ≤ 1.0.  y-location
    masks only ever lower scores, so they need no handling in an upper
    bound.  Empty-bucket sentinels are substituted before the transform
    and re-masked by the caller.
    """
    if not isinstance(unit, SlopeUnit) or unit.kind in ("any", "empty"):
        if isinstance(unit, SlopeUnit):
            value = 1.0 if unit.kind == "any" else -1.0
            value = -value if unit.negated else value
        else:
            value = 1.0  # LineUnit (and any future bounded unit): score ≤ 1
        return np.full(amin.shape, value)
    empty = shared["empty"]
    a_lo = shared.get("a_lo")
    if a_lo is None:
        a_lo = shared["a_lo"] = np.where(empty, 0.0, amin)
        shared["a_hi"] = np.where(empty, 0.0, amax)
    a_hi = shared["a_hi"]
    score_lo = scoring.pattern_score_from_atan(unit.kind, a_lo, unit.theta)
    score_hi = scoring.pattern_score_from_atan(unit.kind, a_hi, unit.theta)
    if unit.negated:
        score_lo, score_hi = -score_lo, -score_hi
    upper = np.maximum(score_lo, score_hi)
    if not unit.negated and unit.kind in ("flat", "slope"):
        target = 0.0 if unit.kind == "flat" else math.radians(unit.theta)
        upper = np.where((a_lo < target) & (target < a_hi), 1.0, upper)
    return upper


def _chain_level_bound(
    n_bins: int,
    chain: Chain,
    w: int,
    amin: np.ndarray,
    amax: np.ndarray,
    shared: dict,
) -> float:
    """Bound one chain's best full-cover score from one pyramid level.

    Max-plus DP over (start super-bin, end super-bin) bucket bounds:
    the first unit starts at bin 0 (super-bin 0), the last ends at bin
    ``n`` (super-bin W−1), and consecutive units share their boundary
    bin — so the next start super-bin is the previous end super-bin or
    its successor.  Buckets that are empty, inverted, or too narrow to
    host the run's minimum segment width are −inf.
    """
    W = amin.shape[0]
    grid = np.arange(W)
    min_len = run_min_length(0, n_bins, len(chain.units))
    infeasible = (
        shared["empty"]
        | (grid[:, None] > grid[None, :])
        | ((grid[None, :] - grid[:, None] + 1) * w < min_len)
    )
    memo = shared.setdefault("units", {})
    state: Optional[np.ndarray] = None
    for cu in chain.units:
        unit = cu.unit
        if isinstance(unit, SlopeUnit):
            key = ("slope", unit.kind, unit.theta, unit.negated)
        else:
            key = ("line",)
        upper = memo.get(key)
        if upper is None:
            upper = memo[key] = _unit_upper(unit, amin, amax, shared)
        weighted = np.where(infeasible, _NEG_INF, cu.weight * upper)
        if state is None:
            state = weighted[0, :].copy()
            continue
        reach = state.copy()
        reach[1:] = np.maximum(state[1:], state[:-1])
        state = np.max(reach[:, None] + weighted, axis=0)
    return float(state[W - 1])


# ---------------------------------------------------------------------------
# Block-batched bounds: the same DP, one pass per level over all candidates
# ---------------------------------------------------------------------------

#: Cap on memoized tile sets per index: the full range plus the handful
#: of deterministic worker shard ranges; cleared wholesale if a caller
#: somehow produces more (correctness never depends on the memo).
_MAX_TILE_MEMO = 64


def _gather_level(values: np.ndarray, offsets: np.ndarray, W: int):
    """Stack one pyramid level across candidates: ``(C, W, W)`` min/max tiles.

    When the packed block is contiguous and the candidates' level blocks
    are evenly strided (always true for a full-collection pack, an
    attached shm block, or a memory-mapped artifact), the stack is a
    zero-copy ``as_strided`` view; otherwise one fancy-index gather
    copies exactly the needed buckets.  Either way the floats are the
    packed bytes, untouched.
    """
    size = W * W
    span = 2 * size
    count = len(offsets)
    flat = None
    if count == 1:
        first = int(offsets[0])
        flat = values[first:first + span][None, :]
    else:
        steps = np.diff(offsets)
        step = int(steps[0])
        if (
            values.ndim == 1
            and values.strides == (values.itemsize,)
            and step > 0
            and bool((steps == step).all())
            and int(offsets[-1]) + span <= values.shape[0]
        ):
            flat = np.lib.stride_tricks.as_strided(
                values[int(offsets[0]):],
                shape=(count, span),
                strides=(step * values.itemsize, values.itemsize),
                writeable=False,
            )
    if flat is None:
        gather = offsets[:, None] + np.arange(span)[None, :]
        flat = np.asarray(values)[gather]
    amin = flat[:, :size].reshape(count, W, W)
    amax = flat[:, size:].reshape(count, W, W)
    return amin, amax


def _batched_chain_bound(
    n_bins: int,
    chain: Chain,
    w: int,
    amin: np.ndarray,
    amax: np.ndarray,
    shared: dict,
) -> np.ndarray:
    """:func:`_chain_level_bound` across a ``(C, W, W)`` candidate tile.

    The recurrence is per-candidate independent, so running it on
    ``(C, W)`` state tiles is the scalar DP replicated along axis 0 —
    the same ufuncs reduce the same elements, so every chain bound is
    the scalar oracle's float bit for bit.  :func:`_unit_upper` is
    shape-agnostic and shared verbatim (memoized per level in
    ``shared`` exactly like the scalar path).
    """
    W = amin.shape[1]
    grid = np.arange(W)
    min_len = run_min_length(0, n_bins, len(chain.units))
    infeasible = (
        shared["empty"]
        | (grid[:, None] > grid[None, :])
        | ((grid[None, :] - grid[:, None] + 1) * w < min_len)
    )
    memo = shared.setdefault("units", {})
    state: Optional[np.ndarray] = None
    for cu in chain.units:
        unit = cu.unit
        if isinstance(unit, SlopeUnit):
            key = ("slope", unit.kind, unit.theta, unit.negated)
        else:
            key = ("line",)
        upper = memo.get(key)
        if upper is None:
            upper = memo[key] = _unit_upper(unit, amin, amax, shared)
        weighted = np.where(infeasible, _NEG_INF, cu.weight * upper)
        if state is None:
            state = weighted[:, 0, :].copy()
            continue
        reach = state.copy()
        reach[:, 1:] = np.maximum(state[:, 1:], state[:, :-1])
        state = np.max(reach[:, :, None] + weighted, axis=1)
    return state[:, W - 1]


def _batched_level_bounds(
    n_bins: int,
    levels: list,
    query: CompiledQuery,
    floor: float,
) -> np.ndarray:
    """:meth:`ShapeIndex.upper_bound`'s level loop across a candidate group.

    Mirrors the scalar loop decision for decision: levels coarse → fine,
    chain max / level min / −1 clamp spelled as the scalar ``max``/``min``
    (``b if b > a else a`` elementwise — bitwise the same picks), and the
    bounded-``floor`` early exit becomes an ``alive`` mask freeze: a
    candidate that fails :func:`survives_floor` at a coarse level keeps
    that level's bound, exactly the float the scalar early return yields.
    """
    count = levels[0][1].shape[0]
    bound = np.full(count, _POS_INF)
    alive = np.ones(count, dtype=bool)
    for w, amin, amax in reversed(levels):
        shared = {"empty": np.isinf(amin)}
        level_bound = np.full(count, -1.0)
        for chain in query.chains:
            chain_bound = _batched_chain_bound(n_bins, chain, w, amin, amax, shared)
            level_bound = np.where(
                chain_bound > level_bound, chain_bound, level_bound
            )
        tightened = np.where(level_bound < bound, level_bound, bound)
        tightened = np.where(tightened > -1.0, tightened, -1.0)
        bound = np.where(alive, tightened, bound)
        alive = alive & survives_floor(bound, floor)
        if not alive.any():
            break
    return bound


# ---------------------------------------------------------------------------
# Seeded pruning pass (the IndexPrune operator's core)
# ---------------------------------------------------------------------------

#: Minimum seed pool: collections at or below this size are never pruned
#: (scoring them outright is cheaper than bounding them).
MIN_SEED_CANDIDATES = 16


def prune_candidates(
    trendlines: Sequence[Trendline],
    index: ShapeIndex,
    query: CompiledQuery,
    k: int,
    solve,
    bounds: Optional[np.ndarray] = None,
) -> Tuple[List[int], int]:
    """Select the candidate positions that can still reach the top k.

    Seeds — the ``max(k, MIN_SEED_CANDIDATES)`` candidates with the
    highest index bounds (position-ascending on ties) — are scored
    exactly with ``solve``; the k-th best seed score becomes the floor,
    and every other candidate is kept iff :func:`survives_floor` says
    its bound can reach it.  Returns ``(surviving positions ascending,
    pruned count)``.  ``bounds`` lets the caller supply worker-computed
    bounds (bitwise the same floats — same function, same published
    buckets); seeds always survive, so their exact scores are recomputed
    downstream by the ordinary Score stage and byte-identity needs no
    score plumbing through this pass.
    """
    total = len(trendlines)
    seed_count = max(int(k), MIN_SEED_CANDIDATES)
    if total <= seed_count or k < 1:
        return list(range(total)), 0
    if bounds is None:
        bounds = index.upper_bounds(query)
    else:
        bounds = np.asarray(bounds, dtype=float)
    order = sorted(range(total), key=lambda i: (-bounds[i], i))
    seeds = order[:seed_count]
    seed_scores = sorted(
        (float(solve(trendlines[i]).score) for i in seeds), reverse=True
    )
    floor = seed_scores[k - 1]
    keep = survives_floor(bounds, floor)
    keep[seeds] = True
    survivors = [i for i in range(total) if keep[i]]
    return survivors, total - len(survivors)
