"""Optimal fuzzy segmentation via dynamic programming (paper §6.1).

Implements the recurrence of Theorem 6.1/6.2 in O(n²k) per alternative
chain: ``OPT(j, r)`` is the best weighted score of fitting the first
``j`` fuzzy units of a chain so that they exactly cover the bins
``[lo, r)``.  Transitions are vectorized over the split point using the
prefix summarized statistics, so the inner maximization is a numpy
reduction rather than a Python loop.

Hybrid (partially pinned) chains are handled exactly: x-pinned units are
scored at their pinned bins, and each maximal run of fuzzy units between
pins becomes an independent full-cover sub-problem (paper §6's remark
that hybrid queries reduce to fuzzy segmentation around the non-fuzzy
VisualSegments).

POSITION references are resolved with a second pass: once boundaries are
fixed, every unit is re-scored with the fitted slopes of all units in
context (DESIGN.md §2.7), and the reported per-unit scores always come
from that final pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.engine.chains import Chain, ChainUnit, CompiledQuery
from repro.engine.trendline import Trendline
from repro.engine.units import INFEASIBLE, MIN_SEGMENT_BINS, run_min_length

_NEG_INF = -np.inf


@dataclass
class PlacedUnit:
    """A unit's final placement: bins ``[start, end)`` and its scores."""

    seg_index: int
    start: int
    end: int
    score: float
    weight: float
    slope: float


@dataclass
class ChainSolution:
    """Result of solving one alternative chain on one trendline."""

    score: float
    placements: List[PlacedUnit] = field(default_factory=list)

    @property
    def boundaries(self) -> List[int]:
        bounds: List[int] = []
        for placed in self.placements:
            if not bounds or bounds[-1] != placed.start:
                bounds.append(placed.start)
            bounds.append(placed.end)
        return bounds


@dataclass
class QueryResult:
    """Best solution across a query's alternative chains."""

    score: float
    chain_index: int
    solution: ChainSolution


def solve_query(
    trendline: Trendline,
    query: CompiledQuery,
    lo: Optional[int] = None,
    hi: Optional[int] = None,
    run_solver=None,
) -> QueryResult:
    """Score a compiled query on a trendline: max over alternative chains.

    ``run_solver`` swaps the fuzzy-run algorithm (DP by default; the
    SegmentTree and greedy engines plug in here).
    """
    best: Optional[QueryResult] = None
    for index, chain in enumerate(query.chains):
        solution = solve_chain(trendline, chain, lo=lo, hi=hi, run_solver=run_solver)
        if best is None or solution.score > best.score:
            best = QueryResult(score=solution.score, chain_index=index, solution=solution)
    return best


def solve_query_over_range(
    trendline: Trendline, query: CompiledQuery, lo: int, hi: int
) -> QueryResult:
    """Entry point for NestedUnit: solve the sub-query inside ``[lo, hi)``."""
    return solve_query(trendline, query, lo=lo, hi=hi)


def solve_chain(
    trendline: Trendline,
    chain: Chain,
    lo: Optional[int] = None,
    hi: Optional[int] = None,
    context: Optional[dict] = None,
    run_solver=None,
) -> ChainSolution:
    """Optimally place one chain's units on ``trendline`` bins ``[lo, hi)``."""
    solver = run_solver if run_solver is not None else _solve_fuzzy_run
    lo = 0 if lo is None else lo
    hi = trendline.n_bins if hi is None else hi
    layout = plan_layout(trendline, chain, lo, hi)
    if layout is None:
        return ChainSolution(score=INFEASIBLE)

    placements: List[Optional[Tuple[int, int]]] = [None] * chain.k
    feasible = True
    for piece in layout:
        if piece.kind == "pinned":
            placements[piece.indices[0]] = (piece.start, piece.end)
            continue
        result = solver(
            trendline,
            [chain.units[i] for i in piece.indices],
            piece.start,
            piece.end,
            context,
        )
        if result is None:
            feasible = False
            for i in piece.indices:
                placements[i] = (piece.start, piece.start)
            continue
        for i, bounds in zip(piece.indices, result):
            placements[i] = bounds

    return _finalize(trendline, chain, placements, context, feasible)


def solve_chain_exact_cover(
    trendline: Trendline,
    chain: Chain,
    lo: int,
    hi: int,
    context: Optional[dict] = None,
) -> ChainSolution:
    """Fit a chain to cover exactly ``[lo, hi)`` (used inside AND units)."""
    return solve_chain(trendline, chain, lo=lo, hi=hi, context=context)


# ---------------------------------------------------------------------------
# Layout planning: pins split the chain into independent runs
# ---------------------------------------------------------------------------


@dataclass
class LayoutPiece:
    """A maximal run of fuzzy units (or one pinned unit) and its bin range."""

    kind: str  # "pinned" | "fuzzy"
    indices: List[int]
    start: int
    end: int


def plan_layout(
    trendline: Trendline, chain: Chain, lo: int, hi: int
) -> Optional[List[LayoutPiece]]:
    """Split a chain around its x-pinned units.

    Fuzzy runs must exactly cover the space between the surrounding fixed
    boundaries; a single-sided pin (only x.s or only x.e) fixes one
    boundary of its unit while the other side stays free, which the DP
    models by treating the fixed side as a run boundary.
    """
    k = chain.k
    starts: List[Optional[int]] = [None] * k
    ends: List[Optional[int]] = [None] * k
    for i, cu in enumerate(chain.units):
        pin_start, pin_end = cu.unit.resolve_pins(trendline)
        starts[i], ends[i] = pin_start, pin_end

    pieces: List[LayoutPiece] = []
    cursor = lo
    run: List[int] = []

    def flush_run(run_end: int) -> bool:
        nonlocal cursor
        if run:
            pieces.append(LayoutPiece("fuzzy", list(run), cursor, run_end))
            run.clear()
        cursor = run_end
        return True

    for i in range(k):
        fully_pinned = starts[i] is not None and ends[i] is not None
        if fully_pinned:
            if not flush_run(starts[i]):
                return None
            pieces.append(LayoutPiece("pinned", [i], starts[i], ends[i]))
            cursor = ends[i]
        elif starts[i] is not None:  # start-only pin: fixes the left boundary
            flush_run(starts[i])
            run.append(i)
        elif ends[i] is not None:  # end-only pin: closes the current run
            run.append(i)
            flush_run(ends[i])
        else:
            run.append(i)
    flush_run(hi)
    return pieces


# ---------------------------------------------------------------------------
# Fuzzy full-cover DP (Theorem 6.2)
# ---------------------------------------------------------------------------


def _solve_fuzzy_run(
    trendline: Trendline,
    units: List[ChainUnit],
    lo: int,
    hi: int,
    context: Optional[dict],
) -> Optional[List[Tuple[int, int]]]:
    """Best exact cover of bins ``[lo, hi)`` by the given fuzzy units.

    Returns per-unit ``(start, end)`` placements or None when the range
    cannot host them (fewer than 2 bins per unit available).
    """
    m = len(units)
    if m == 0:
        return [] if hi >= lo else None
    length = hi - lo
    if length < MIN_SEGMENT_BINS * m:
        return None
    min_len = run_min_length(lo, hi, m)
    if m == 1:
        return [(lo, hi)]

    # opt[j][r-lo]: best weighted score of units[0..j] covering [lo, r).
    grid = np.arange(lo, hi + 1)
    opt = np.full((m, length + 1), _NEG_INF)
    split = np.zeros((m, length + 1), dtype=int)

    first = units[0]
    ends = grid[min_len:]
    opt[0, min_len:] = first.weight * first.unit.score_ends(
        trendline, lo, ends, context
    )

    for j in range(1, m):
        cu = units[j]
        # Valid split points m for OPT[j][r]: lo + min_len*j <= m <= r - min_len.
        min_split = lo + min_len * j
        for r in range(lo + min_len * (j + 1), hi + 1):
            ms = np.arange(min_split, r - min_len + 1)
            if len(ms) == 0:
                continue
            left = opt[j - 1, ms - lo]
            right = cu.weight * cu.unit.score_starts(trendline, ms, r, context)
            candidates = left + right
            best = int(np.argmax(candidates))
            if candidates[best] > _NEG_INF:
                opt[j, r - lo] = candidates[best]
                split[j, r - lo] = ms[best]

    if not np.isfinite(opt[m - 1, length]):
        return None

    # Backtrack the boundaries.
    bounds: List[Tuple[int, int]] = []
    r = hi
    for j in range(m - 1, 0, -1):
        s = int(split[j, r - lo])
        bounds.append((s, r))
        r = s
    bounds.append((lo, r))
    bounds.reverse()
    return bounds


# ---------------------------------------------------------------------------
# Final scoring pass (handles POSITION and reports per-unit detail)
# ---------------------------------------------------------------------------


def _finalize(
    trendline: Trendline,
    chain: Chain,
    placements: List[Optional[Tuple[int, int]]],
    context: Optional[dict],
    feasible: bool,
) -> ChainSolution:
    slopes = dict(context) if context else {}
    for cu, bounds in zip(chain.units, placements):
        if bounds is None or cu.unit.seg_index < 0:
            continue
        start, end = bounds
        if end - start >= MIN_SEGMENT_BINS:
            slopes[cu.unit.seg_index] = trendline.prefix.slope(start, end)

    placed: List[PlacedUnit] = []
    total = 0.0
    for cu, bounds in zip(chain.units, placements):
        if bounds is None:
            score = INFEASIBLE
            start = end = 0
            slope = 0.0
        else:
            start, end = bounds
            if end - start < MIN_SEGMENT_BINS:
                score = INFEASIBLE
                slope = 0.0
            else:
                score = cu.unit.score(trendline, start, end, slopes)
                slope = trendline.prefix.slope(start, end)
        total += cu.weight * score
        placed.append(
            PlacedUnit(
                seg_index=cu.unit.seg_index,
                start=start,
                end=end,
                score=score,
                weight=cu.weight,
                slope=slope,
            )
        )
    if not feasible:
        total = INFEASIBLE
    return ChainSolution(score=float(total), placements=placed)
