"""Optimal fuzzy segmentation via dynamic programming (paper §6.1).

Implements the recurrence of Theorem 6.1/6.2 in O(n²k) per alternative
chain: ``OPT(j, r)`` is the best weighted score of fitting the first
``j`` fuzzy units of a chain so that they exactly cover the bins
``[lo, r)``.

Two kernels drive the transitions:

* ``"matrix"`` (the default) — each DP layer is computed from tiled
  *(splits × ends)* unit score matrices
  (:meth:`~repro.engine.units.CompiledUnit.score_matrix`):
  ``opt[j, ends] = max over splits of (opt[j-1, splits][:, None]
  + weight · W[splits, ends])`` — one masked ``np.max``/``np.argmax``
  per tile instead of one Python iteration per end bin.  Ends are tiled
  in fixed-size blocks (:data:`MATRIX_TILE`) so peak memory stays
  O(n·B) however long the trendline is.
* ``"loop"`` — the retained reference kernel: a Python loop over end
  bins with the inner maximization vectorized over the split point.

The two kernels are byte-identical — same scores, same placements, same
lowest-split-index tie-breaking — which the property suite asserts; the
loop kernel doubles as the oracle for the matrix kernel.

Hybrid (partially pinned) chains are handled exactly: x-pinned units are
scored at their pinned bins, and each maximal run of fuzzy units between
pins becomes an independent full-cover sub-problem (paper §6's remark
that hybrid queries reduce to fuzzy segmentation around the non-fuzzy
VisualSegments).

POSITION references are resolved with a second pass: once boundaries are
fixed, every unit is re-scored with the fitted slopes of all units in
context (DESIGN.md §2.7), and the reported per-unit scores always come
from that final pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.engine.chains import Chain, ChainUnit, CompiledQuery
from repro.engine.trendline import Trendline, trendline_extends
from repro.engine.units import INFEASIBLE, MIN_SEGMENT_BINS, run_min_length

_NEG_INF = -np.inf

#: Supported DP transition kernels (see module docstring).
KERNELS = ("matrix", "loop")

#: Kernel used when no explicit choice is made.
DEFAULT_KERNEL = "matrix"

#: Solve-context key carrying the active kernel into nested/AND
#: sub-solves (their fuzzy runs dispatch through the same context), so
#: ``kernel="loop"`` is honored end to end, not just at the top level.
KERNEL_KEY = "__kernel__"

#: End bins per block of the matrix kernel: each layer materializes at
#: most (n splits × MATRIX_TILE ends) unit scores at a time, keeping
#: peak memory O(n·B) while amortizing the per-tile numpy dispatch.
MATRIX_TILE = 256

#: Share the ``tan⁻¹`` transform of a tile's slope matrix across all of
#: its slope-based layers (on by default).  At n ≳ 3000 the matrix
#: kernel is bandwidth/transcendental-bound on the slope algebra; paying
#: the arctan once per tile instead of once per layer lifts that regime.
#: The flag exists so benchmarks can measure the per-layer path and the
#: property suite can assert the two are byte-identical.
SHARE_ATAN = True


@dataclass
class PlacedUnit:
    """A unit's final placement: bins ``[start, end)`` and its scores."""

    seg_index: int
    start: int
    end: int
    score: float
    weight: float
    slope: float


@dataclass
class ChainSolution:
    """Result of solving one alternative chain on one trendline."""

    score: float
    placements: List[PlacedUnit] = field(default_factory=list)

    @property
    def boundaries(self) -> List[int]:
        bounds: List[int] = []
        for placed in self.placements:
            if not bounds or bounds[-1] != placed.start:
                bounds.append(placed.start)
            bounds.append(placed.end)
        return bounds


@dataclass
class QueryResult:
    """Best solution across a query's alternative chains."""

    score: float
    chain_index: int
    solution: ChainSolution


def solve_query(
    trendline: Trendline,
    query: CompiledQuery,
    lo: Optional[int] = None,
    hi: Optional[int] = None,
    run_solver=None,
    context: Optional[dict] = None,
    kernel: Optional[str] = None,
) -> QueryResult:
    """Score a compiled query on a trendline: max over alternative chains.

    ``run_solver`` swaps the fuzzy-run algorithm (DP by default; the
    SegmentTree and greedy engines plug in here); ``kernel`` instead
    picks the DP transition kernel and records it in the solve context
    so nested/AND sub-solves use the same one.  The solve context is
    shared across the alternative chains so per-trendline memos (e.g.
    QuantifierUnit's classified runs) carry across chains that share
    units.
    """
    best: Optional[QueryResult] = None
    if context is None:
        context = {}
    if kernel is not None:
        context[KERNEL_KEY] = kernel
        if run_solver is None:
            run_solver = fuzzy_run_solver(kernel)
    for index, chain in enumerate(query.chains):
        solution = solve_chain(
            trendline, chain, lo=lo, hi=hi, context=context, run_solver=run_solver
        )
        if best is None or solution.score > best.score:
            best = QueryResult(score=solution.score, chain_index=index, solution=solution)
    return best


def solve_query_over_range(
    trendline: Trendline,
    query: CompiledQuery,
    lo: int,
    hi: int,
    context: Optional[dict] = None,
) -> QueryResult:
    """Entry point for NestedUnit: solve the sub-query inside ``[lo, hi)``.

    ``context`` carries only solve-scoped auxiliaries (kernel choice,
    runs memo) — the nested query has its own segment-index space, so
    the caller must not leak its slope context in here.
    """
    return solve_query(trendline, query, lo=lo, hi=hi, context=context)


@dataclass
class TailSolveState:
    """DP state retained across streaming appends for one (trendline, query).

    Holds the trendline the state was computed on (to gate reuse via
    :func:`~repro.engine.trendline.trendline_extends`) and one
    :class:`FuzzyRunState` (or None) per alternative chain.
    """

    trendline: Trendline
    chains: List[Optional[FuzzyRunState]]

    def state_nbytes(self) -> int:
        """Retained bytes: the DP tables plus the pinned trendline arrays.

        The trendline is counted because the state holds it strongly for
        the ``trendline_extends`` reuse gate — for eviction-accounting
        purposes those arrays are retained *by this state*, whether or
        not other live references share them.
        """
        total = 0
        for state in self.chains:
            if state is not None:
                total += state.opt.nbytes + state.split.nbytes
        trendline = self.trendline
        for values in (
            trendline.x,
            trendline.y,
            trendline.bin_x,
            trendline.bin_y,
            trendline.norm_bin_y,
        ):
            total += values.nbytes
        prefix = trendline.prefix
        if prefix.stacked is not None:
            total += prefix.stacked.nbytes
        else:
            total += (
                prefix.count.nbytes
                + prefix.sx.nbytes
                + prefix.sy.nbytes
                + prefix.sxy.nbytes
                + prefix.sxx.nbytes
            )
        return total


def solve_query_extend(
    trendline: Trendline,
    query: CompiledQuery,
    state: Optional[TailSolveState] = None,
    kernel: Optional[str] = None,
) -> Tuple[QueryResult, Optional[TailSolveState]]:
    """Suffix re-solve: :func:`solve_query` that reuses retained DP state.

    Byte-identical to a cold :func:`solve_query` on the same inputs —
    retained tables only ever *skip recomputing* cells whose inputs are
    bitwise unchanged (the :func:`trendline_extends` gate), never change
    a value.  Only the matrix kernel retains state; ``kernel="loop"``
    (the oracle) always solves cold and returns ``state=None``.  State
    is also dropped (cold solve) when the trendline's history changed —
    on live appends the z-scored normalization typically shifts with
    every batch, so this path degrades gracefully to exactly the cold
    solve rather than ever trading accuracy for reuse.
    """
    if (kernel or DEFAULT_KERNEL) != "matrix":
        return solve_query(trendline, query, kernel=kernel), None
    context: dict = {}
    if kernel is not None:
        context[KERNEL_KEY] = kernel
    usable = (
        state is not None
        and len(state.chains) == len(query.chains)
        and trendline_extends(state.trendline, trendline)
    )
    best: Optional[QueryResult] = None
    new_chain_states: List[Optional[FuzzyRunState]] = []
    for index, chain in enumerate(query.chains):
        chain_state = state.chains[index] if usable else None
        solution, new_chain_state = _solve_chain_stateful(
            trendline, chain, chain_state, context
        )
        new_chain_states.append(new_chain_state)
        if best is None or solution.score > best.score:
            best = QueryResult(score=solution.score, chain_index=index, solution=solution)
    return best, TailSolveState(trendline=trendline, chains=new_chain_states)


def _solve_chain_stateful(
    trendline: Trendline,
    chain: Chain,
    state: Optional[FuzzyRunState],
    context: dict,
) -> Tuple[ChainSolution, Optional[FuzzyRunState]]:
    """:func:`solve_chain` over the full trendline, retaining DP tables.

    State is carried only for the common single-piece layout (one run of
    fuzzy units, possibly bounded by one-sided pins); multi-piece hybrid
    layouts fall back to the plain solve — their per-piece tables are
    small and pin positions may move as bins arrive.
    """
    lo, hi = 0, trendline.n_bins
    layout = plan_layout(trendline, chain, lo, hi)
    if layout is None:
        return ChainSolution(score=INFEASIBLE), None
    if len(layout) != 1 or layout[0].kind != "fuzzy":
        return solve_chain(trendline, chain, context=context), None
    piece = layout[0]
    units = [chain.units[i] for i in piece.indices]
    result, new_state = solve_fuzzy_run_extend(
        trendline, units, piece.start, piece.end, context, state
    )
    placements: List[Optional[Tuple[int, int]]] = [None] * chain.k
    feasible = True
    if result is None:
        feasible = False
        for i in piece.indices:
            placements[i] = (piece.start, piece.start)
    else:
        for i, bounds in zip(piece.indices, result):
            placements[i] = bounds
    return _finalize(trendline, chain, placements, context, feasible), new_state


def solve_chain(
    trendline: Trendline,
    chain: Chain,
    lo: Optional[int] = None,
    hi: Optional[int] = None,
    context: Optional[dict] = None,
    run_solver=None,
) -> ChainSolution:
    """Optimally place one chain's units on ``trendline`` bins ``[lo, hi)``."""
    solver = run_solver if run_solver is not None else _solve_fuzzy_run
    lo = 0 if lo is None else lo
    hi = trendline.n_bins if hi is None else hi
    layout = plan_layout(trendline, chain, lo, hi)
    if layout is None:
        return ChainSolution(score=INFEASIBLE)

    placements: List[Optional[Tuple[int, int]]] = [None] * chain.k
    feasible = True
    for piece in layout:
        if piece.kind == "pinned":
            placements[piece.indices[0]] = (piece.start, piece.end)
            continue
        result = solver(
            trendline,
            [chain.units[i] for i in piece.indices],
            piece.start,
            piece.end,
            context,
        )
        if result is None:
            feasible = False
            for i in piece.indices:
                placements[i] = (piece.start, piece.start)
            continue
        for i, bounds in zip(piece.indices, result):
            placements[i] = bounds

    return _finalize(trendline, chain, placements, context, feasible)


def solve_chain_exact_cover(
    trendline: Trendline,
    chain: Chain,
    lo: int,
    hi: int,
    context: Optional[dict] = None,
) -> ChainSolution:
    """Fit a chain to cover exactly ``[lo, hi)`` (used inside AND units)."""
    return solve_chain(trendline, chain, lo=lo, hi=hi, context=context)


# ---------------------------------------------------------------------------
# Layout planning: pins split the chain into independent runs
# ---------------------------------------------------------------------------


@dataclass
class LayoutPiece:
    """A maximal run of fuzzy units (or one pinned unit) and its bin range."""

    kind: str  # "pinned" | "fuzzy"
    indices: List[int]
    start: int
    end: int


def plan_layout(
    trendline: Trendline, chain: Chain, lo: int, hi: int
) -> Optional[List[LayoutPiece]]:
    """Split a chain around its x-pinned units.

    Fuzzy runs must exactly cover the space between the surrounding fixed
    boundaries; a single-sided pin (only x.s or only x.e) fixes one
    boundary of its unit while the other side stays free, which the DP
    models by treating the fixed side as a run boundary.
    """
    k = chain.k
    starts: List[Optional[int]] = [None] * k
    ends: List[Optional[int]] = [None] * k
    for i, cu in enumerate(chain.units):
        pin_start, pin_end = cu.unit.resolve_pins(trendline)
        starts[i], ends[i] = pin_start, pin_end

    pieces: List[LayoutPiece] = []
    cursor = lo
    run: List[int] = []

    def flush_run(run_end: int) -> bool:
        nonlocal cursor
        if run:
            pieces.append(LayoutPiece("fuzzy", list(run), cursor, run_end))
            run.clear()
        cursor = run_end
        return True

    for i in range(k):
        fully_pinned = starts[i] is not None and ends[i] is not None
        if fully_pinned:
            if not flush_run(starts[i]):
                return None
            pieces.append(LayoutPiece("pinned", [i], starts[i], ends[i]))
            cursor = ends[i]
        elif starts[i] is not None:  # start-only pin: fixes the left boundary
            flush_run(starts[i])
            run.append(i)
        elif ends[i] is not None:  # end-only pin: closes the current run
            run.append(i)
            flush_run(ends[i])
        else:
            run.append(i)
    flush_run(hi)
    return pieces


# ---------------------------------------------------------------------------
# Fuzzy full-cover DP (Theorem 6.2): loop and matrix transition kernels
# ---------------------------------------------------------------------------


def fuzzy_run_solver(kernel: Optional[str] = None):
    """Resolve a kernel name to its fuzzy-run solver function.

    ``None`` selects :data:`DEFAULT_KERNEL`.  Both kernels implement the
    identical recurrence and tie-breaking, so they are interchangeable;
    ``"loop"`` is kept as the reference oracle for ``"matrix"``.
    """
    kernel = DEFAULT_KERNEL if kernel is None else kernel
    if kernel == "matrix":
        return _solve_fuzzy_run_matrix
    if kernel == "loop":
        return _solve_fuzzy_run_loop
    raise ValueError(
        "unknown DP kernel {!r}; choose from {}".format(kernel, KERNELS)
    )


def _fuzzy_run_plan(lo: int, hi: int, units: List[ChainUnit]):
    """Shared feasibility triage for both kernels.

    Returns ``(handled, result, min_len)``: when ``handled`` is True the
    run needs no DP (empty, too short, or a single unit) and ``result``
    is the answer; otherwise ``min_len`` is the per-unit width floor.
    """
    m = len(units)
    if m == 0:
        return True, ([] if hi >= lo else None), 0
    if hi - lo < MIN_SEGMENT_BINS * m:
        return True, None, 0
    min_len = run_min_length(lo, hi, m)
    if m == 1:
        return True, [(lo, hi)], min_len
    return False, None, min_len


def _backtrack(split: np.ndarray, lo: int, hi: int, m: int) -> List[Tuple[int, int]]:
    """Recover per-unit boundaries from the split table."""
    bounds: List[Tuple[int, int]] = []
    r = hi
    for j in range(m - 1, 0, -1):
        s = int(split[j, r - lo])
        bounds.append((s, r))
        r = s
    bounds.append((lo, r))
    bounds.reverse()
    return bounds


def _solve_fuzzy_run_loop(
    trendline: Trendline,
    units: List[ChainUnit],
    lo: int,
    hi: int,
    context: Optional[dict],
) -> Optional[List[Tuple[int, int]]]:
    """Best exact cover of bins ``[lo, hi)`` by the given fuzzy units.

    The reference kernel: a Python loop over every end bin ``r``, with
    the inner maximization vectorized over the split point.  Returns
    per-unit ``(start, end)`` placements or None when the range cannot
    host them (fewer than 2 bins per unit available).
    """
    handled, result, min_len = _fuzzy_run_plan(lo, hi, units)
    if handled:
        return result
    m = len(units)
    length = hi - lo

    # opt[j][r-lo]: best weighted score of units[0..j] covering [lo, r).
    grid = np.arange(lo, hi + 1)
    opt = np.full((m, length + 1), _NEG_INF)
    split = np.zeros((m, length + 1), dtype=int)

    first = units[0]
    ends = grid[min_len:]
    opt[0, min_len:] = first.weight * first.unit.score_ends(
        trendline, lo, ends, context
    )

    for j in range(1, m):
        cu = units[j]
        # Valid split points m for OPT[j][r]: lo + min_len*j <= m <= r - min_len.
        min_split = lo + min_len * j
        for r in range(lo + min_len * (j + 1), hi + 1):
            ms = np.arange(min_split, r - min_len + 1)
            if len(ms) == 0:
                continue
            left = opt[j - 1, ms - lo]
            right = cu.weight * cu.unit.score_starts(trendline, ms, r, context)
            candidates = left + right
            best = int(np.argmax(candidates))
            if candidates[best] > _NEG_INF:
                opt[j, r - lo] = candidates[best]
                split[j, r - lo] = ms[best]

    if not np.isfinite(opt[m - 1, length]):
        return None
    return _backtrack(split, lo, hi, m)


def _solve_fuzzy_run_matrix(
    trendline: Trendline,
    units: List[ChainUnit],
    lo: int,
    hi: int,
    context: Optional[dict],
) -> Optional[List[Tuple[int, int]]]:
    """Matrix-kernel twin of :func:`_solve_fuzzy_run_loop`.

    Each layer ``j`` consumes tiled *(splits × ends)* unit score
    matrices: for a block of end bins the kernel materializes
    ``W[splits, ends]`` once (vectorized for slope/line units), masks
    splits outside each end's feasible window to −∞, and reduces whole
    columns with one ``argmax``.  Non-vectorized units (nested queries,
    UDPs, sketches, quantifiers) keep the loop kernel's per-column
    evaluation inside the tile structure — they gain nothing from a
    rectangular tile and would pay for cells the mask discards.  ``argmax`` returns
    the first maximum and splits are enumerated ascending, so ties
    resolve to the lowest split index — exactly the loop kernel's
    ``np.argmax`` over the same ascending candidates, which keeps the
    two kernels byte-identical.
    """
    handled, result, min_len = _fuzzy_run_plan(lo, hi, units)
    if handled:
        return result
    m = len(units)
    length = hi - lo

    opt = np.full((m, length + 1), _NEG_INF)
    split = np.zeros((m, length + 1), dtype=int)
    _matrix_fill(trendline, units, lo, hi, min_len, context, opt, split, lo)

    if not np.isfinite(opt[m - 1, length]):
        return None
    return _backtrack(split, lo, hi, m)


def _matrix_fill(
    trendline: Trendline,
    units: List[ChainUnit],
    lo: int,
    hi: int,
    min_len: int,
    context: Optional[dict],
    opt: np.ndarray,
    split: np.ndarray,
    from_end: int,
) -> None:
    """Fill the matrix kernel's DP tables for end bins ``>= from_end``.

    The cold solve passes ``from_end=lo`` (fill everything); the
    streaming suffix re-solve passes ``from_end=old_hi + 1`` with the
    previous solve's tables copied into ``opt``/``split``, so only the
    columns an append can affect are recomputed.  Per-cell DP values are
    tiling-independent — elementwise transforms commute with slicing and
    each column's maximization reads only layer ``j-1`` at split
    positions ``<= r - min_len`` — so restricting the end range produces
    bitwise the same cells a full fill would.
    """
    m = len(units)
    first = units[0]
    start0 = max(lo + min_len, from_end)
    if start0 <= hi:
        ends0 = np.arange(start0, hi + 1)
        opt[0, ends0 - lo] = first.weight * first.unit.score_ends(
            trendline, lo, ends0, context
        )

    # Tile-major wavefront over end bins.  Layers run *inside* each
    # tile (ascending j), which is dependency-safe: OPT[j][r] only reads
    # OPT[j-1] at split positions s ≤ r − min_len, all of which were
    # finalized either by an earlier tile or by layer j−1 of this tile.
    # The payoff is slope sharing: the (splits × ends) fitted-slope
    # matrix of a tile is computed once and every slope-based layer
    # (up/down/flat/θ — the overwhelmingly common case) reuses it, so
    # the expensive part of the transition work is paid once per tile
    # rather than once per layer.
    prefix = trendline.prefix
    share_slopes = any(cu.unit.slope_based for cu in units[1:])
    base_split = lo + min_len  # lowest split any layer can use
    # Earliest layer-1 end, clipped to the requested wavefront start.
    all_ends = np.arange(max(lo + 2 * min_len, from_end), hi + 1)
    for block in range(0, len(all_ends), MATRIX_TILE):
        ends_tile = all_ends[block : block + MATRIX_TILE]
        tile_first = int(ends_tile[0])
        tile_last = int(ends_tile[-1])
        splits_union = np.arange(base_split, tile_last - min_len + 1)
        shared = (
            prefix.slope_matrix(splits_union, ends_tile) if share_slopes else None
        )
        # One arctan per tile, consumed by every slope-based layer below:
        # the Table 5 transforms are all functions of tan⁻¹(slope), so
        # the transcendental — the dominant cost of the slope algebra at
        # large n — need not be recomputed per layer.
        shared_atan = (
            np.arctan(shared) if (shared is not None and SHARE_ATAN) else None
        )
        # Per-tile transform memo: layers with the same (kind, θ) — and
        # down vs up, which are exact negations — share one Table 5
        # transform of the tile's arctan matrix (see
        # SlopeUnit.tile_transform; memoized arrays are read-only by
        # convention, every consumer allocates fresh output).
        transform_memo = {} if shared_atan is not None else None
        # The (split, end) feasibility triangle is the same for every
        # layer of the tile (min_len is per-run, not per-layer); build
        # the boolean mask once over the union rectangle and let each
        # layer slice its window instead of re-deriving the comparison.
        infeasible_union = (
            splits_union[:, None] > ends_tile[None, :] - min_len
            if m > 1
            else None
        )
        for j in range(1, m):
            # Valid for OPT[j][r]: lo + min_len*j <= s <= r - min_len.
            col0 = max(0, lo + min_len * (j + 1) - tile_first)
            if col0 >= len(ends_tile):
                continue
            ends_j = ends_tile[col0:]
            cu = units[j]
            min_split = lo + min_len * j
            if not cu.unit.vectorized:
                # Expensive fallback units (nested solves, UDPs, sketches,
                # quantifiers) are evaluated per column over only the
                # feasible splits — the rectangular tile would score the
                # masked triangle too, wasting up to min_len scalar calls
                # per end bin the loop kernel never makes.  This is the
                # loop kernel's inner body verbatim, so identity is free.
                prev = opt[j - 1]
                for r in ends_j:
                    r = int(r)
                    ms = np.arange(min_split, r - min_len + 1)
                    left = prev[ms - lo]
                    right = cu.weight * cu.unit.score_starts(trendline, ms, r, context)
                    column = left + right
                    best_row = int(np.argmax(column))
                    if column[best_row] > _NEG_INF:
                        opt[j, r - lo] = column[best_row]
                        split[j, r - lo] = ms[best_row]
                continue
            row0 = min_len * (j - 1)
            splits_j = splits_union[row0:]
            loc = cu.unit.location
            if cu.unit.slope_based and shared_atan is not None and (
                loc.y_start is None and loc.y_end is None
            ):
                # Fast path: transform once over the tile union (memoized
                # across layers), slice per layer.  The width-infeasibility
                # substitution of score_matrix_from_values is dead work
                # here — every sub-MIN_SEGMENT_BINS cell lies inside the
                # −∞ triangle below (min_len ≥ MIN_SEGMENT_BINS) — so the
                # slice is consumed directly, multiplying out of place to
                # leave the shared transform intact.  Bits match the
                # per-layer path exactly: elementwise transforms commute
                # with slicing, and every skipped cell is overwritten.
                values = cu.unit.tile_transform(shared_atan, transform_memo)
                candidates = values[row0:, col0:] * cu.weight
            else:
                if cu.unit.slope_based:
                    if shared_atan is not None:
                        values = cu.unit.tile_transform(shared_atan, transform_memo)
                        scores = cu.unit.score_matrix_from_values(
                            trendline, splits_j, ends_j, values[row0:, col0:]
                        )
                    else:
                        scores = cu.unit.score_matrix_from_slopes(
                            trendline, splits_j, ends_j, shared[row0:, col0:], context
                        )
                else:
                    scores = cu.unit.score_matrix(trendline, splits_j, ends_j, context)
                # candidates = opt[j-1][s] + weight·W[s, r], built in place
                # on the tile's score matrix (fresh per layer; IEEE
                # addition is commutative, so left + w·W and w·W + left
                # agree bit for bit with the loop kernel).
                candidates = np.multiply(scores, cu.weight, out=scores)
            candidates += opt[j - 1][splits_j - lo][:, None]
            candidates[infeasible_union[row0:, col0:]] = _NEG_INF
            best = np.argmax(candidates, axis=0)
            best_values = candidates[best, np.arange(len(ends_j))]
            take = best_values > _NEG_INF
            columns = (ends_j - lo)[take]
            opt[j, columns] = best_values[take]
            split[j, columns] = splits_j[best[take]]


@dataclass
class FuzzyRunState:
    """The matrix kernel's DP tables, retained for a streaming re-solve.

    Valid for reuse only when the next solve covers the same ``lo`` with
    the same ``min_len`` and a ``hi`` at or past :attr:`hi` on a
    trendline whose prefix of bins is bitwise unchanged (gated by
    :func:`~repro.engine.trendline.trendline_extends` at the query
    level) — then the retained columns are exactly what a cold solve
    would recompute and only the new end bins need work.
    """

    lo: int
    hi: int
    min_len: int
    opt: np.ndarray
    split: np.ndarray


def solve_fuzzy_run_extend(
    trendline: Trendline,
    units: List[ChainUnit],
    lo: int,
    hi: int,
    context: Optional[dict],
    state: Optional[FuzzyRunState],
) -> Tuple[Optional[List[Tuple[int, int]]], Optional[FuzzyRunState]]:
    """Matrix-kernel solve that can seed from (and emit) retained tables.

    Returns ``(placements, new_state)``.  When ``state`` matches this
    run (same ``lo``, same ``min_len``, ``state.hi <= hi``), its tables
    seed the new ones and the wavefront runs only over end bins
    ``> state.hi``; otherwise the fill starts cold.  Either way the
    resulting tables are bitwise what :func:`_solve_fuzzy_run_matrix`
    would produce, because per-cell values are tiling-independent.
    Trivial runs (``m <= 1``, infeasible width) carry no tables and
    return ``new_state=None``.
    """
    handled, result, min_len = _fuzzy_run_plan(lo, hi, units)
    if handled:
        return result, None
    m = len(units)
    length = hi - lo

    opt = np.full((m, length + 1), _NEG_INF)
    split = np.zeros((m, length + 1), dtype=int)
    from_end = lo
    if (
        state is not None
        and state.lo == lo
        and state.min_len == min_len
        and state.hi <= hi
        and state.opt.shape == (m, state.hi - lo + 1)
    ):
        width = state.hi - lo + 1
        opt[:, :width] = state.opt
        split[:, :width] = state.split
        from_end = state.hi + 1
    _matrix_fill(trendline, units, lo, hi, min_len, context, opt, split, from_end)

    new_state = FuzzyRunState(lo=lo, hi=hi, min_len=min_len, opt=opt, split=split)
    if not np.isfinite(opt[m - 1, length]):
        return None, new_state
    return _backtrack(split, lo, hi, m), new_state


def _solve_fuzzy_run(
    trendline: Trendline,
    units: List[ChainUnit],
    lo: int,
    hi: int,
    context: Optional[dict],
) -> Optional[List[Tuple[int, int]]]:
    """Default fuzzy-run solver: the context's kernel, else the module
    default.  Kept under the historical name (solve_chain's default);
    reading the kernel from the context is what makes nested sub-queries
    and AND exact-covers honor the engine's kernel choice."""
    kernel = context.get(KERNEL_KEY) if isinstance(context, dict) else None
    return fuzzy_run_solver(kernel)(trendline, units, lo, hi, context)


# ---------------------------------------------------------------------------
# Final scoring pass (handles POSITION and reports per-unit detail)
# ---------------------------------------------------------------------------


def _finalize(
    trendline: Trendline,
    chain: Chain,
    placements: List[Optional[Tuple[int, int]]],
    context: Optional[dict],
    feasible: bool,
) -> ChainSolution:
    slopes = dict(context) if context else {}
    for cu, bounds in zip(chain.units, placements):
        if bounds is None or cu.unit.seg_index < 0:
            continue
        start, end = bounds
        if end - start >= MIN_SEGMENT_BINS:
            slopes[cu.unit.seg_index] = trendline.prefix.slope(start, end)

    placed: List[PlacedUnit] = []
    total = 0.0
    for cu, bounds in zip(chain.units, placements):
        if bounds is None:
            score = INFEASIBLE
            start = end = 0
            slope = 0.0
        else:
            start, end = bounds
            if end - start < MIN_SEGMENT_BINS:
                score = INFEASIBLE
                slope = 0.0
            else:
                score = cu.unit.score(trendline, start, end, slopes)
                slope = trendline.prefix.slope(start, end)
        total += cu.weight * score
        placed.append(
            PlacedUnit(
                seg_index=cu.unit.seg_index,
                start=start,
                end=end,
                score=score,
                weight=cu.weight,
                slope=slope,
            )
        )
    if not feasible:
        total = INFEASIBLE
    return ChainSolution(score=float(total), placements=placed)
