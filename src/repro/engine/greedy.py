"""Greedy segmentation baseline (paper §9, algorithm (v)).

Starts from equal-sized VisualSegments and hill-climbs: each round
considers moving every interior boundary to the midpoint of its left or
right neighbouring segment (the paper's "extend or shrink by half") and
takes the best improving move, stopping at a local optimum.  Fast —
O(rounds · k · cost(score)) — but routinely stuck, which is exactly the
accuracy/latency trade-off Figure 12 reports (< 30% of DP's top-k).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.chains import ChainUnit
from repro.engine.trendline import Trendline
from repro.engine.units import MIN_SEGMENT_BINS, run_min_length

#: Hard cap on hill-climbing rounds (each round moves one boundary).
MAX_ROUNDS = 200


def greedy_run_solver(
    trendline: Trendline,
    units: List[ChainUnit],
    lo: int,
    hi: int,
    context: Optional[dict],
) -> Optional[List[Tuple[int, int]]]:
    """Drop-in run solver for :func:`repro.engine.dynamic.solve_chain`."""
    m = len(units)
    if m == 0:
        return []
    if hi - lo < MIN_SEGMENT_BINS * m:
        return None
    min_len = run_min_length(lo, hi, m)
    if m == 1:
        return [(lo, hi)]

    # Equal-sized initial boundaries.
    boundaries = [lo + round(i * (hi - lo) / m) for i in range(m + 1)]
    boundaries[0], boundaries[-1] = lo, hi
    _repair(boundaries, lo, hi, min_len)

    def total(bounds: List[int]) -> float:
        return sum(
            cu.weight * cu.unit.score(trendline, bounds[i], bounds[i + 1], context)
            for i, cu in enumerate(units)
        )

    current = total(boundaries)
    for _ in range(MAX_ROUNDS):
        best_move = None
        best_score = current
        for i in range(1, m):
            left_mid = (boundaries[i - 1] + boundaries[i]) // 2
            right_mid = (boundaries[i] + boundaries[i + 1]) // 2
            for candidate in (left_mid, right_mid):
                if candidate == boundaries[i]:
                    continue
                if candidate - boundaries[i - 1] < min_len:
                    continue
                if boundaries[i + 1] - candidate < min_len:
                    continue
                trial = list(boundaries)
                trial[i] = candidate
                score = total(trial)
                if score > best_score:
                    best_score = score
                    best_move = (i, candidate)
        if best_move is None:
            break
        boundaries[best_move[0]] = best_move[1]
        current = best_score

    return [(boundaries[i], boundaries[i + 1]) for i in range(m)]


def _repair(boundaries: List[int], lo: int, hi: int, min_len: int) -> None:
    """Force the minimum spacing after integer rounding."""
    for i in range(1, len(boundaries)):
        if boundaries[i] - boundaries[i - 1] < min_len:
            boundaries[i] = boundaries[i - 1] + min_len
    for i in range(len(boundaries) - 2, -1, -1):
        if boundaries[i + 1] - boundaries[i] < min_len:
            boundaries[i] = boundaries[i + 1] - min_len
    boundaries[0] = lo
    boundaries[-1] = hi
