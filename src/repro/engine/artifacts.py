"""Memory-mapped on-disk artifact store for shape indexes.

PR 8's shape index dies with the process: every restart repays the
O(n²)-per-trendline pyramid build before the first ``index=True`` query
can prune anything.  This module gives the packed index form
(:meth:`~repro.engine.shape_index.ShapeIndex.pack` — the same flat
float64 block + layout manifest the shm transport publishes) a
durable home on disk, so a cold process serves indexed queries at
``np.memmap`` cost instead of build cost.

**Layout on disk** — one subdirectory per index key under the store
root (``store=`` on the session/engine, or ``REPRO_ARTIFACT_DIR``),
named by the SHA-1 of the key's canonical repr:

* ``block.f64`` — the raw packed float64 block, memory-mapped on load.
* ``layout.pkl`` — pickled ``(layout, witnesses)``: the per-entry shape
  manifest plus each entry's content witness, so a loaded index keeps
  the :meth:`~repro.engine.shape_index.ShapeIndex.extended`
  extend-don't-rebuild contract across restarts.
* ``manifest.json`` — format version, the table content fingerprint the
  index was built from, and SHA-1 digests of both payload files.

**Fallback semantics** — :func:`load_index` returns the index or
``None``, never a wrong index: missing/unreadable files, a format
version skew, a fingerprint mismatch (the table changed), a truncated
block, or corrupted payload bytes (digest mismatch) all miss, and the
caller rebuilds exactly as if no artifact existed.  Writes go through
temp files + ``os.replace`` so a torn save can never satisfy the
manifest it describes.

**Mapping lifecycle** (reprolint REP071): every mapping opened by
:func:`_open_block` must reach an owner — returned inside the loaded
index (whose entry views keep the mapping alive) or closed by the
idempotent :func:`_close_block` on a verification failure — with no
unguarded raise between open and ownership transfer.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
# reprolint: disable=REP014 -- artifact GC compares file mtimes to a wall clock on eviction paths, never inside scoring
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.engine.shape_index import ShapeIndex
from repro.errors import ExecutionError

#: On-disk format version: bump on any layout/manifest change so stale
#: artifacts from older code miss cleanly instead of mis-parsing.
ARTIFACT_FORMAT = 1

_BLOCK_FILE = "block.f64"
_LAYOUT_FILE = "layout.pkl"
_MANIFEST_FILE = "manifest.json"


def artifact_name(key) -> str:
    """Stable directory name for one index key.

    ``key`` is the engine's index key — ``(params, normalize_y,
    plan_fingerprint, precision)`` — whose components are dataclasses
    and scalars with deterministic reprs, so two processes over the
    same query shape agree on the name.  The table fingerprint is *not*
    part of the name: one artifact per key, verified (and overwritten)
    against the current table's fingerprint.
    """
    return hashlib.sha1(repr(key).encode("utf-8")).hexdigest()


def artifact_dir(root, key) -> Path:
    """The directory one index key persists under."""
    return Path(root) / artifact_name(key)


def _replace_bytes(path: Path, payload: bytes) -> None:
    """Write-then-rename so readers never observe a half-written file."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
    os.replace(tmp, path)


def save_index(root, key, index: ShapeIndex, fingerprint: str) -> Path:
    """Persist ``index`` under ``key``; returns the artifact directory.

    Saves the packed form plus entry witnesses.  After ``append_rows``
    the engine saves the *extended* index here — unchanged entries were
    reused bit for bit in memory, and their persisted witnesses let the
    next process extend again instead of rebuilding, so the disk tier
    follows the same delta discipline as the in-memory lineage.
    Payload files land before the manifest that vouches for them, each
    via temp-file + ``os.replace``.
    """
    values, layout = index.packed()
    witnesses = [
        entry.witness if entry is not None else None for entry in index.entries
    ]
    directory = artifact_dir(root, key)
    directory.mkdir(parents=True, exist_ok=True)
    block = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
    payload = block.tobytes()
    layout_bytes = pickle.dumps(
        (layout, witnesses), protocol=pickle.HIGHEST_PROTOCOL
    )
    manifest = {
        "format": ARTIFACT_FORMAT,
        "fingerprint": fingerprint,
        "count": len(layout),
        "values_len": int(block.size),
        "block_sha1": hashlib.sha1(payload).hexdigest(),
        "layout_sha1": hashlib.sha1(layout_bytes).hexdigest(),
    }
    _replace_bytes(directory / _BLOCK_FILE, payload)
    _replace_bytes(directory / _LAYOUT_FILE, layout_bytes)
    _replace_bytes(
        directory / _MANIFEST_FILE,
        json.dumps(manifest, indent=2, sort_keys=True).encode("ascii"),
    )
    return directory


def _open_block(path: Path, values_len: int) -> np.ndarray:
    """Map the packed block read-only (REP071 source).

    A zero-length block needs no mapping (``mmap`` refuses empty files);
    a file shorter than the manifest's element count makes ``np.memmap``
    raise, so truncation is caught structurally before any verification.
    """
    if values_len == 0:
        return np.zeros(0, dtype=np.float64)
    return np.memmap(path, dtype=np.float64, mode="r", shape=(values_len,))


def _close_block(block: np.ndarray) -> None:
    """Idempotent release of a mapped block (REP071 ownership sink)."""
    mapping = getattr(block, "_mmap", None)
    if mapping is not None:
        mapping.close()


def load_index(root, key, fingerprint: str) -> Optional[ShapeIndex]:
    """The persisted index for ``key``, or ``None`` — never a wrong index.

    Verification order: manifest readable and well-formed, format
    version current, fingerprint equal to the *current* table's content
    fingerprint, layout bytes digest-clean, block mappable at the
    manifest's length (truncation fails here) and digest-clean.  Any
    miss returns ``None`` so the caller rebuilds; a block that was
    mapped before the miss is closed first.  On success the returned
    index's entries are zero-copy views over the mapping — near-zero
    cold start, one sequential read for the digest check.
    """
    directory = artifact_dir(root, key)
    try:
        manifest = json.loads((directory / _MANIFEST_FILE).read_text("ascii"))
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict):
        return None
    if manifest.get("format") != ARTIFACT_FORMAT:
        return None
    if manifest.get("fingerprint") != fingerprint:
        return None
    try:
        values_len = int(manifest["values_len"])
        count = int(manifest["count"])
        block_sha1 = manifest["block_sha1"]
        layout_sha1 = manifest["layout_sha1"]
    except (KeyError, TypeError, ValueError):
        return None
    try:
        layout_bytes = (directory / _LAYOUT_FILE).read_bytes()
    except OSError:
        return None
    if hashlib.sha1(layout_bytes).hexdigest() != layout_sha1:
        return None
    try:
        layout, witnesses = pickle.loads(layout_bytes)
    except Exception:
        return None
    if not isinstance(layout, list) or len(layout) != count:
        return None
    if not isinstance(witnesses, list) or len(witnesses) != count:
        return None
    try:
        block = _open_block(directory / _BLOCK_FILE, values_len)
    except (OSError, ValueError):
        return None
    try:
        digest = hashlib.sha1()
        digest.update(block)
        if digest.hexdigest() != block_sha1:
            _close_block(block)
            return None
        index = ShapeIndex.from_packed(block, layout, witnesses=witnesses)
    except Exception:
        _close_block(block)
        return None
    return index


# ---------------------------------------------------------------------------
# Store garbage collection
# ---------------------------------------------------------------------------

#: Environment knob for the store's byte budget: when set,
#: :func:`artifact_budget` parses it and the serving layer prunes the
#: store to this size on every table eviction.  Unset/empty: no budget.
ARTIFACT_BUDGET_ENV = "REPRO_ARTIFACT_BUDGET"


def artifact_budget() -> Optional[int]:
    """The ``REPRO_ARTIFACT_BUDGET`` byte budget, or None when unset.

    Malformed values raise :class:`~repro.errors.ExecutionError` loudly
    (the same policy as ``REPRO_INDEX_DISPATCH_MIN``) — a typo'd budget
    silently pruning nothing, or everything, is worse than failing.
    """
    configured = os.environ.get(ARTIFACT_BUDGET_ENV, "")
    if not configured:
        return None
    try:
        budget = int(configured)
    except ValueError:
        raise ExecutionError(
            "{} must be an integer byte budget, got {!r}".format(
                ARTIFACT_BUDGET_ENV, configured
            )
        )
    if budget < 0:
        raise ExecutionError(
            "{} must be >= 0, got {}".format(ARTIFACT_BUDGET_ENV, budget)
        )
    return budget


@dataclass
class PruneReport:
    """What one :func:`prune` pass did (inspected by tests and /v1/stats)."""

    #: Artifact directories examined (well-formed entries only).
    examined: int = 0
    #: Directories removed, oldest-first.
    removed: int = 0
    #: Bytes freed by the removals.
    freed_bytes: int = 0
    #: Bytes still resident after the pass.
    kept_bytes: int = 0
    #: Directory names removed (artifact_name hashes, for logging).
    removed_names: List[str] = field(default_factory=list)


def _entry_size(directory: Path) -> int:
    total = 0
    try:
        for item in directory.iterdir():
            try:
                total += item.stat().st_size
            except OSError:
                continue
    except OSError:
        return 0
    return total


def _entry_mtime(directory: Path) -> float:
    """Recency of one artifact entry: its manifest's mtime.

    ``save_index`` writes the manifest last, so the manifest mtime is the
    entry's last-written time; a directory without a readable manifest
    (torn save, foreign debris) reports 0.0 and is first in line to go.
    """
    try:
        return (directory / _MANIFEST_FILE).stat().st_mtime
    except OSError:
        return 0.0


def prune(
    root,
    max_bytes: Optional[int] = None,
    max_age_s: Optional[float] = None,
) -> PruneReport:
    """Evict cold artifact entries: LRU by mtime, bounded by bytes and age.

    The store grows one entry per distinct (params, normalize_y, plan,
    precision) key and nothing ever removed them before this.  A prune
    pass walks the store root, drops every entry older than
    ``max_age_s`` (by manifest mtime), then removes oldest-first until
    the resident total fits ``max_bytes``.  Both limits optional; with
    neither, the pass only measures.  Removal is best-effort per entry
    (a concurrently-held memmap on another platform, or a permission
    error, skips that entry rather than failing the pass) and never
    touches files outside well-formed artifact directories.

    The serving layer calls this from its table-eviction hook with the
    :data:`ARTIFACT_BUDGET_ENV` budget; deployments can also run it from
    cron over a shared store.
    """
    report = PruneReport()
    store = Path(root)
    try:
        candidates = [entry for entry in store.iterdir() if entry.is_dir()]
    except OSError:
        return report
    entries = []
    for directory in candidates:
        if not (directory / _MANIFEST_FILE).exists() and not (
            directory / _BLOCK_FILE
        ).exists():
            continue  # not ours: never delete foreign directories
        entries.append((_entry_mtime(directory), _entry_size(directory), directory))
    entries.sort(key=lambda item: (item[0], item[2].name))
    report.examined = len(entries)
    total = sum(size for _mtime, size, _directory in entries)
    now = time.time()
    survivors = []
    for mtime, size, directory in entries:
        expired = max_age_s is not None and (now - mtime) > max_age_s
        if expired:
            if _remove_entry(directory):
                report.removed += 1
                report.freed_bytes += size
                report.removed_names.append(directory.name)
                total -= size
                continue
        survivors.append((mtime, size, directory))
    if max_bytes is not None:
        for mtime, size, directory in survivors:
            if total <= max_bytes:
                break
            if _remove_entry(directory):
                report.removed += 1
                report.freed_bytes += size
                report.removed_names.append(directory.name)
                total -= size
    report.kept_bytes = total
    return report


def _remove_entry(directory: Path) -> bool:
    """Remove one artifact directory; False when the OS refuses."""
    try:
        shutil.rmtree(directory)
        return True
    except OSError:
        return False
