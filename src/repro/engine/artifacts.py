"""Memory-mapped on-disk artifact store for shape indexes.

PR 8's shape index dies with the process: every restart repays the
O(n²)-per-trendline pyramid build before the first ``index=True`` query
can prune anything.  This module gives the packed index form
(:meth:`~repro.engine.shape_index.ShapeIndex.pack` — the same flat
float64 block + layout manifest the shm transport publishes) a
durable home on disk, so a cold process serves indexed queries at
``np.memmap`` cost instead of build cost.

**Layout on disk** — one subdirectory per index key under the store
root (``store=`` on the session/engine, or ``REPRO_ARTIFACT_DIR``),
named by the SHA-1 of the key's canonical repr:

* ``block.f64`` — the raw packed float64 block, memory-mapped on load.
* ``layout.pkl`` — pickled ``(layout, witnesses)``: the per-entry shape
  manifest plus each entry's content witness, so a loaded index keeps
  the :meth:`~repro.engine.shape_index.ShapeIndex.extended`
  extend-don't-rebuild contract across restarts.
* ``manifest.json`` — format version, the table content fingerprint the
  index was built from, and SHA-1 digests of both payload files.

**Fallback semantics** — :func:`load_index` returns the index or
``None``, never a wrong index: missing/unreadable files, a format
version skew, a fingerprint mismatch (the table changed), a truncated
block, or corrupted payload bytes (digest mismatch) all miss, and the
caller rebuilds exactly as if no artifact existed.  Writes go through
temp files + ``os.replace`` so a torn save can never satisfy the
manifest it describes.

**Mapping lifecycle** (reprolint REP071): every mapping opened by
:func:`_open_block` must reach an owner — returned inside the loaded
index (whose entry views keep the mapping alive) or closed by the
idempotent :func:`_close_block` on a verification failure — with no
unguarded raise between open and ownership transfer.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Optional

import numpy as np

from repro.engine.shape_index import ShapeIndex

#: On-disk format version: bump on any layout/manifest change so stale
#: artifacts from older code miss cleanly instead of mis-parsing.
ARTIFACT_FORMAT = 1

_BLOCK_FILE = "block.f64"
_LAYOUT_FILE = "layout.pkl"
_MANIFEST_FILE = "manifest.json"


def artifact_name(key) -> str:
    """Stable directory name for one index key.

    ``key`` is the engine's index key — ``(params, normalize_y,
    plan_fingerprint, precision)`` — whose components are dataclasses
    and scalars with deterministic reprs, so two processes over the
    same query shape agree on the name.  The table fingerprint is *not*
    part of the name: one artifact per key, verified (and overwritten)
    against the current table's fingerprint.
    """
    return hashlib.sha1(repr(key).encode("utf-8")).hexdigest()


def artifact_dir(root, key) -> Path:
    """The directory one index key persists under."""
    return Path(root) / artifact_name(key)


def _replace_bytes(path: Path, payload: bytes) -> None:
    """Write-then-rename so readers never observe a half-written file."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
    os.replace(tmp, path)


def save_index(root, key, index: ShapeIndex, fingerprint: str) -> Path:
    """Persist ``index`` under ``key``; returns the artifact directory.

    Saves the packed form plus entry witnesses.  After ``append_rows``
    the engine saves the *extended* index here — unchanged entries were
    reused bit for bit in memory, and their persisted witnesses let the
    next process extend again instead of rebuilding, so the disk tier
    follows the same delta discipline as the in-memory lineage.
    Payload files land before the manifest that vouches for them, each
    via temp-file + ``os.replace``.
    """
    values, layout = index.packed()
    witnesses = [
        entry.witness if entry is not None else None for entry in index.entries
    ]
    directory = artifact_dir(root, key)
    directory.mkdir(parents=True, exist_ok=True)
    block = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
    payload = block.tobytes()
    layout_bytes = pickle.dumps(
        (layout, witnesses), protocol=pickle.HIGHEST_PROTOCOL
    )
    manifest = {
        "format": ARTIFACT_FORMAT,
        "fingerprint": fingerprint,
        "count": len(layout),
        "values_len": int(block.size),
        "block_sha1": hashlib.sha1(payload).hexdigest(),
        "layout_sha1": hashlib.sha1(layout_bytes).hexdigest(),
    }
    _replace_bytes(directory / _BLOCK_FILE, payload)
    _replace_bytes(directory / _LAYOUT_FILE, layout_bytes)
    _replace_bytes(
        directory / _MANIFEST_FILE,
        json.dumps(manifest, indent=2, sort_keys=True).encode("ascii"),
    )
    return directory


def _open_block(path: Path, values_len: int) -> np.ndarray:
    """Map the packed block read-only (REP071 source).

    A zero-length block needs no mapping (``mmap`` refuses empty files);
    a file shorter than the manifest's element count makes ``np.memmap``
    raise, so truncation is caught structurally before any verification.
    """
    if values_len == 0:
        return np.zeros(0, dtype=np.float64)
    return np.memmap(path, dtype=np.float64, mode="r", shape=(values_len,))


def _close_block(block: np.ndarray) -> None:
    """Idempotent release of a mapped block (REP071 ownership sink)."""
    mapping = getattr(block, "_mmap", None)
    if mapping is not None:
        mapping.close()


def load_index(root, key, fingerprint: str) -> Optional[ShapeIndex]:
    """The persisted index for ``key``, or ``None`` — never a wrong index.

    Verification order: manifest readable and well-formed, format
    version current, fingerprint equal to the *current* table's content
    fingerprint, layout bytes digest-clean, block mappable at the
    manifest's length (truncation fails here) and digest-clean.  Any
    miss returns ``None`` so the caller rebuilds; a block that was
    mapped before the miss is closed first.  On success the returned
    index's entries are zero-copy views over the mapping — near-zero
    cold start, one sequential read for the digest check.
    """
    directory = artifact_dir(root, key)
    try:
        manifest = json.loads((directory / _MANIFEST_FILE).read_text("ascii"))
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict):
        return None
    if manifest.get("format") != ARTIFACT_FORMAT:
        return None
    if manifest.get("fingerprint") != fingerprint:
        return None
    try:
        values_len = int(manifest["values_len"])
        count = int(manifest["count"])
        block_sha1 = manifest["block_sha1"]
        layout_sha1 = manifest["layout_sha1"]
    except (KeyError, TypeError, ValueError):
        return None
    try:
        layout_bytes = (directory / _LAYOUT_FILE).read_bytes()
    except OSError:
        return None
    if hashlib.sha1(layout_bytes).hexdigest() != layout_sha1:
        return None
    try:
        layout, witnesses = pickle.loads(layout_bytes)
    except Exception:
        return None
    if not isinstance(layout, list) or len(layout) != count:
        return None
    if not isinstance(witnesses, list) or len(witnesses) != count:
        return None
    try:
        block = _open_block(directory / _BLOCK_FILE, values_len)
    except (OSError, ValueError):
        return None
    try:
        digest = hashlib.sha1()
        digest.update(block)
        if digest.hexdigest() != block_sha1:
            _close_block(block)
            return None
        index = ShapeIndex.from_packed(block, layout, witnesses=witnesses)
    except Exception:
        _close_block(block)
        return None
    return index
