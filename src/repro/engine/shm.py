"""Shared-memory transport for the ``"process"`` backend (zero-copy shards).

PR 1's process backend pickles whole :class:`~repro.engine.trendline.Trendline`
chunks into every task, so serialization dominates and multi-core scaling
never materializes.  This module moves the data to the workers instead of
moving it with every task, the way the paper's pattern-at-a-time engine
executes over in-memory columns (§6) and SlopeSeeker precomputes its trend
collections once and queries them repeatedly:

* :func:`publish_trendlines` packs a whole candidate collection — raw
  points, bins, and the cumulative :class:`~repro.engine.statistics.PrefixStats`
  arrays — into **one** ``multiprocessing.shared_memory`` segment, once per
  session.  The returned :class:`CollectionHandle` is a few hundred bytes
  of manifest (keys, scalars, array lengths), so a shard task now travels
  as ``(handle, start, end)`` index ranges instead of pickled objects.
* :func:`resolve_collection` is the worker-side entry point: on first use
  it attaches the segment and reconstructs a **read-only, worker-resident**
  trendline collection as zero-copy numpy views over the shared buffer,
  memoized for the worker's lifetime.  In the publishing process itself
  (``workers=1`` inline execution) resolution short-circuits to the
  original objects.
* :func:`publish_query` / :func:`resolve_query` do the same for a compiled
  query: the query is pickled into shared memory once and each worker
  unpickles it once per session instead of once per shard.
* :func:`publish_table` / :func:`attach_table` export a
  :class:`~repro.data.table.Table`'s columns, keyed by the existing
  content fingerprint so a reattached table hits the same cache entries
  as the publisher's original.

:class:`ShmSession` owns every segment a session publishes and releases
them on :meth:`~ShmSession.close` (idempotent); a module-level ``atexit``
hook closes any session the owner forgot, so interpreter exit never leaks
``/dev/shm`` segments.  Unlinking while workers still hold attachments is
safe on POSIX — the memory persists until the last mapping closes.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import uuid
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.table import Table
from repro.engine.statistics import PrefixStats
from repro.engine.trendline import Trendline
from repro.errors import ExecutionError

try:  # stdlib since 3.8; gated so the rest of the engine imports without it
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: The per-trendline arrays packed into the archive, in manifest order:
#: raw points, per-bin representatives, normalized bins, then the five
#: cumulative prefix-statistics arrays of Theorem 5.1.
_ARRAYS_PER_TRENDLINE = 10

#: Sentinel dtype marker for pickled object columns in a table manifest.
_OBJECT_COLUMN_DTYPE = "object"


def _require_shared_memory():
    if _shared_memory is None:  # pragma: no cover
        raise ExecutionError(
            "multiprocessing.shared_memory is unavailable on this platform; "
            "use the thread backend or shm=False"
        )
    return _shared_memory


_ATTACH_LOCK = threading.Lock()


def _attach_segment(name: str):
    """Attach an existing segment without resource-tracker registration.

    Before Python 3.13 every ``SharedMemory(name=...)`` attach registers
    the segment with the resource tracker, so a spawn-started worker's
    tracker would unlink memory the publishing process still owns on
    worker exit, while under fork (shared tracker) any attempt to
    unregister afterwards clobbers the *publisher's* registration.  The
    publisher is the sole owner here; attachments must never be tracked —
    exactly 3.13's ``track=False``, emulated below by suppressing
    ``register`` for the duration of the attach.
    """
    shared = _require_shared_memory()
    try:
        return shared.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        pass
    from multiprocessing import resource_tracker

    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


# --------------------------------------------------------------------------
# Handles: what travels in a task instead of the data
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CollectionHandle:
    """Reference to one published trendline collection.

    Deliberately O(1) in the collection size — the per-trendline manifest
    (keys, scalars, array lengths) lives *inside* the segment, after the
    float64 payload — because a handle is pickled into every range task:
    ``total`` is the payload's element count, ``count`` the number of
    trendlines, ``manifest_nbytes`` the pickled manifest's size.
    """

    token: str
    name: str
    total: int
    count: int
    manifest_nbytes: int

    def __len__(self) -> int:
        return self.count


@dataclass(frozen=True)
class QueryHandle:
    """A compiled query published once: workers unpickle it once per session."""

    token: str
    name: str
    nbytes: int


@dataclass(frozen=True)
class IndexHandle:
    """Reference to one published shape index (engine/shape_index.py).

    The packed form is a single float64 payload (every pyramid level's
    bucket matrices, concatenated) plus a small pickled layout that says
    how to slice it back into per-trendline entries; like a collection
    handle it is O(1) in the index size, so an index-bounds task travels
    as ``(handle, start, end)``.
    """

    token: str
    name: str
    total: int  # float64 elements in the packed payload
    layout_nbytes: int


@dataclass(frozen=True)
class TableHandle:
    """Manifest of one published table: per-column name, dtype and extent.

    ``token`` keys the segment, the pins and the worker store: it is the
    content fingerprint for a full-table export, or fingerprint plus a
    column-subset digest when only the query's columns were published.
    """

    fingerprint: str
    token: str
    name: str
    columns: Tuple[Tuple[str, str, int, int], ...]  # (name, dtype.str, offset, nbytes)


@dataclass(frozen=True)
class TableDeltaHandle:
    """Manifest of an *appended row range* published over a base table.

    The streaming transport: instead of republishing the whole table
    after ``append_rows``, only rows ``[base_rows:]`` of each column
    travel as a new (small) segment, and the handle chains to the base
    table's handle — which may itself be a delta, so a run of appends
    forms a chain back to one full export.  Workers resolve the base
    recursively (hitting their resident store for everything already
    attached), concatenate the delta onto the resident columns, and
    memoize the extended table under this handle's ``token`` — an append
    to existing arrays plus a fingerprint swap, with only the delta
    bytes crossing process boundaries.

    ``columns`` describes the delta segment's layout exactly like
    :class:`TableHandle.columns` describes a full export's.
    """

    fingerprint: str
    token: str
    name: str
    columns: Tuple[Tuple[str, str, int, int], ...]  # (name, dtype.str, offset, nbytes)
    base: object  # TableHandle | TableDeltaHandle
    base_rows: int


def delta_chain_tokens(handle) -> List[str]:
    """Every token along a handle's delta chain, newest first.

    For a plain :class:`TableHandle` this is just ``[handle.token]``.
    Dispatch pins the whole chain: a worker may attach any link while
    the shards run, so none of the chained segments may be unlinked.
    """
    tokens: List[str] = []
    while isinstance(handle, TableDeltaHandle):
        tokens.append(handle.token)
        handle = handle.base
    tokens.append(handle.token)
    return tokens


def _delta_depth(handle) -> int:
    """Chain links between ``handle`` and its underlying full export."""
    depth = 0
    while isinstance(handle, TableDeltaHandle):
        depth += 1
        handle = handle.base
    return depth


def table_token(fingerprint: str, columns: Optional[Sequence[str]] = None) -> str:
    """The publish/store key for one table + column subset."""
    if columns is None:
        return fingerprint
    import hashlib

    # repr(tuple) is an unambiguous encoding: a column literally named
    # "a,b" cannot alias the subset ("a", "b") the way a bare join would.
    digest = hashlib.sha1(repr(tuple(columns)).encode("utf-8")).hexdigest()[:12]
    return "{}:{}".format(fingerprint, digest)


# --------------------------------------------------------------------------
# Publishing (runs in the session's process)
# --------------------------------------------------------------------------

def _trendline_arrays(trendline: Trendline) -> List[np.ndarray]:
    prefix = trendline.prefix
    return [
        np.ascontiguousarray(array, dtype=np.float64)
        for array in (
            trendline.x,
            trendline.y,
            trendline.bin_x,
            trendline.bin_y,
            trendline.norm_bin_y,
            prefix.count,
            prefix.sx,
            prefix.sy,
            prefix.sxy,
            prefix.sxx,
        )
    ]


def publish_trendlines(
    trendlines: Sequence[Trendline], token: Optional[str] = None
) -> Tuple[CollectionHandle, "object"]:
    """Pack a collection into one shared-memory segment.

    Returns ``(handle, segment)``; the caller owns the segment (normally a
    :class:`ShmSession`, which closes and unlinks it on ``close()``).
    """
    shared = _require_shared_memory()
    entries = []
    arrays: List[np.ndarray] = []
    total = 0
    for trendline in trendlines:
        packed = _trendline_arrays(trendline)
        lengths = tuple(len(array) for array in packed)
        entries.append(
            (trendline.key, trendline.y_mean, trendline.y_std, trendline.offset, lengths)
        )
        arrays.extend(packed)
        total += sum(lengths)
    manifest = pickle.dumps(tuple(entries), protocol=pickle.HIGHEST_PROTOCOL)
    segment = shared.SharedMemory(create=True, size=max(8, total * 8 + len(manifest)))
    view = np.ndarray((total,), dtype=np.float64, buffer=segment.buf)
    position = 0
    for array in arrays:
        view[position : position + len(array)] = array
        position += len(array)
    segment.buf[total * 8 : total * 8 + len(manifest)] = manifest
    handle = CollectionHandle(
        token=token or uuid.uuid4().hex,
        name=segment.name,
        total=total,
        count=len(entries),
        manifest_nbytes=len(manifest),
    )
    return handle, segment


def publish_query(query, token: Optional[str] = None) -> Tuple[QueryHandle, "object"]:
    """Pickle a compiled query into a shared-memory segment, once."""
    shared = _require_shared_memory()
    payload = pickle.dumps(query, protocol=pickle.HIGHEST_PROTOCOL)
    segment = shared.SharedMemory(create=True, size=max(1, len(payload)))
    segment.buf[: len(payload)] = payload
    handle = QueryHandle(
        token=token or uuid.uuid4().hex, name=segment.name, nbytes=len(payload)
    )
    return handle, segment


def publish_index(index, token: Optional[str] = None) -> Tuple[IndexHandle, "object"]:
    """Pack a :class:`~repro.engine.shape_index.ShapeIndex` into one segment.

    Same shape as :func:`publish_trendlines`: raw float64 payload first,
    pickled layout manifest after it.  Workers reattach the bucket
    matrices as zero-copy views, so the same bytes back every bound on
    both sides of the process boundary.  Uses the index's memoized
    :meth:`~repro.engine.shape_index.ShapeIndex.packed` form — an index
    that was itself loaded from a memory-mapped artifact republishes the
    mapped block without a repack.
    """
    shared = _require_shared_memory()
    values, layout = index.packed()
    manifest = pickle.dumps(layout, protocol=pickle.HIGHEST_PROTOCOL)
    total = len(values)
    segment = shared.SharedMemory(create=True, size=max(8, total * 8 + len(manifest)))
    view = np.ndarray((total,), dtype=np.float64, buffer=segment.buf)
    view[:] = values
    segment.buf[total * 8 : total * 8 + len(manifest)] = manifest
    handle = IndexHandle(
        token=token or uuid.uuid4().hex,
        name=segment.name,
        total=total,
        layout_nbytes=len(manifest),
    )
    return handle, segment


def publish_table(
    table: Table,
    token: Optional[str] = None,
    columns: Optional[Sequence[str]] = None,
) -> Tuple[TableHandle, "object"]:
    """Export a table's columns, keyed by its existing content fingerprint.

    ``columns`` restricts the export to the named subset (the execute
    path publishes only the columns the query's visual parameters and
    filters reference — unrelated columns are neither copied into shared
    memory nor required to be picklable).  Numeric columns are shared as
    raw bytes (zero-copy on reattach); object columns (group keys) are
    pickled, so reattached values — and therefore group identities,
    counts and result keys — are the *same objects* parent-side
    generation would group by, not a stringified approximation (``1``
    and ``"1"`` must stay two groups).  The fingerprint is computed
    *before* export and pre-seeded on reattached tables, so both sides
    key the same cache entries.
    """
    shared = _require_shared_memory()
    from repro.engine.cache import table_fingerprint

    fingerprint = table_fingerprint(table)
    if token is None:
        token = table_token(fingerprint, columns)
    names = table.column_names if columns is None else list(columns)
    encoded: List[Tuple[str, str, bytes]] = []
    for name in names:
        values = table.column(name)
        if values.dtype == object:
            payload = pickle.dumps(values.tolist(), protocol=pickle.HIGHEST_PROTOCOL)
            encoded.append((name, _OBJECT_COLUMN_DTYPE, payload))
        else:
            values = np.ascontiguousarray(values)
            encoded.append((name, values.dtype.str, values.tobytes()))
    manifest = []
    offset = 0
    for name, dtype_str, payload in encoded:
        offset = (offset + 15) & ~15  # 16-byte alignment for any dtype
        manifest.append((name, dtype_str, offset, len(payload)))
        offset += len(payload)
    segment = shared.SharedMemory(create=True, size=max(1, offset))
    for (name, dtype_str, payload), (_, _, start, nbytes) in zip(encoded, manifest):
        segment.buf[start : start + nbytes] = payload
    handle = TableHandle(
        fingerprint=fingerprint, token=token, name=segment.name, columns=tuple(manifest)
    )
    return handle, segment


def publish_table_delta(
    table: Table,
    base_handle,
    base_rows: int,
    token: str,
) -> Tuple[TableDeltaHandle, "object"]:
    """Export only rows ``[base_rows:]`` of the columns ``base_handle`` has.

    The caller (``ShmSession.acquire_append``) guarantees the precondition
    that makes the chain sound: ``table``'s first ``base_rows`` rows are
    bitwise the base's published rows with unchanged dtypes.  Encoding
    matches :func:`publish_table` exactly — numeric raw bytes, object
    columns pickled — so the worker-side concatenation reproduces the
    columns a full export would have shipped.
    """
    shared = _require_shared_memory()
    from repro.engine.cache import table_fingerprint

    fingerprint = table_fingerprint(table)
    names = [name for name, _dtype, _offset, _nbytes in base_handle.columns]
    encoded: List[Tuple[str, str, bytes]] = []
    for name in names:
        values = table.column(name)[base_rows:]
        if values.dtype == object:
            payload = pickle.dumps(values.tolist(), protocol=pickle.HIGHEST_PROTOCOL)
            encoded.append((name, _OBJECT_COLUMN_DTYPE, payload))
        else:
            values = np.ascontiguousarray(values)
            encoded.append((name, values.dtype.str, values.tobytes()))
    manifest = []
    offset = 0
    for name, dtype_str, payload in encoded:
        offset = (offset + 15) & ~15  # 16-byte alignment for any dtype
        manifest.append((name, dtype_str, offset, len(payload)))
        offset += len(payload)
    segment = shared.SharedMemory(create=True, size=max(1, offset))
    for (name, dtype_str, payload), (_, _, start, nbytes) in zip(encoded, manifest):
        segment.buf[start : start + nbytes] = payload
    handle = TableDeltaHandle(
        fingerprint=fingerprint,
        token=token,
        name=segment.name,
        columns=tuple(manifest),
        base=base_handle,
        base_rows=base_rows,
    )
    return handle, segment


# --------------------------------------------------------------------------
# Attaching (runs in the workers; memoized per process)
# --------------------------------------------------------------------------

class _Attachment:
    """A resolved handle: the value plus the mapping that keeps it alive."""

    __slots__ = ("value", "segment")

    def __init__(self, value, segment):
        self.value = value
        self.segment = segment


#: Worker-resident store: token -> _Attachment, LRU-bounded.  Eviction
#: only drops the store's reference — any live views keep the mapping
#: alive until garbage collection, so in-flight results stay valid while
#: a worker cycling through many collections does not accumulate every
#: mapping it ever attached.
_WORKER_STORE: "OrderedDict[str, _Attachment]" = OrderedDict()
#: Reentrant: resolving a TableDeltaHandle recursively resolves its base
#: chain from inside the attach callback, re-entering _resolve.
_WORKER_LOCK = threading.RLock()
_MAX_WORKER_ENTRIES = 8


def _store_put(token: str, attachment: _Attachment) -> None:
    _WORKER_STORE[token] = attachment
    while len(_WORKER_STORE) > _MAX_WORKER_ENTRIES:
        _WORKER_STORE.popitem(last=False)

#: Publisher-side registry: token -> (pid, original object).  Lets the
#: publishing process (and only it — fork copies this dict, hence the pid
#: check) resolve handles without re-attaching its own segments.
_LOCAL: Dict[str, Tuple[int, object]] = {}


def attach_collection(handle: CollectionHandle) -> Tuple[List[Trendline], "object"]:
    """Reconstruct a read-only collection as views over the shared buffer."""
    segment = _attach_segment(handle.name)
    try:
        base = np.ndarray((handle.total,), dtype=np.float64, buffer=segment.buf)
        base.flags.writeable = False
        manifest_start = handle.total * 8
        entries = pickle.loads(
            bytes(segment.buf[manifest_start : manifest_start + handle.manifest_nbytes])
        )
        trendlines: List[Trendline] = []
        position = 0
        for key, y_mean, y_std, bin_offset, lengths in entries:
            if len(lengths) != _ARRAYS_PER_TRENDLINE:
                raise ExecutionError(
                    "shm manifest layout mismatch: expected {} arrays per "
                    "trendline, got {} (publisher/worker version skew?)".format(
                        _ARRAYS_PER_TRENDLINE, len(lengths)
                    )
                )
            parts = []
            for length in lengths:
                parts.append(base[position : position + length])
                position += length
            x, y, bin_x, bin_y, norm_bin_y, count, sx, sy, sxy, sxx = parts
            # The five prefix arrays are equal-length and packed
            # consecutively (see _trendline_arrays), so the payload
            # already holds a (5, bins+1) stacked block — reshape it
            # zero-copy so the attached PrefixStats keeps the fused
            # _slopes gather the publisher's original had.
            prefix_start = position - 5 * len(count)
            stacked = base[prefix_start:position].reshape(5, len(count))
            trendlines.append(
                Trendline(
                    key=key,
                    x=x,
                    y=y,
                    bin_x=bin_x,
                    bin_y=bin_y,
                    norm_bin_y=norm_bin_y,
                    prefix=PrefixStats.from_cumulative(
                        count, sx, sy, sxy, sxx, stacked=stacked
                    ),
                    y_mean=y_mean,
                    y_std=y_std,
                    offset=bin_offset,
                )
            )
    except BaseException:
        # On success the open segment is returned (the _Attachment pins
        # it); on any failure nobody else holds it, so close here or the
        # mapping leaks for the worker's lifetime.  Every view over the
        # buffer must be dropped first or close() refuses to release the
        # exported memoryview.
        base = parts = trendlines = stacked = None  # noqa: F841
        segment.close()
        raise
    return trendlines, segment


def attach_table(handle: TableHandle) -> Tuple[Table, "object"]:
    """Reconstruct a read-only table from a published handle.

    Numeric columns come back as zero-copy views over the shared buffer;
    object columns are unpickled (a worker-local copy, but with the
    publisher's exact values — group keys keep their types).
    """
    segment = _attach_segment(handle.name)
    try:
        columns: Dict[str, np.ndarray] = {}
        for name, dtype_str, offset, nbytes in handle.columns:
            if dtype_str == _OBJECT_COLUMN_DTYPE:
                values = pickle.loads(bytes(segment.buf[offset : offset + nbytes]))
                # Element-wise fill, not np.array(values): sequence-valued
                # cells (tuple/list group keys) must stay single objects in a
                # 1-D column, not be broadcast into extra dimensions.
                column = np.empty(len(values), dtype=object)
                for index, value in enumerate(values):
                    column[index] = value
                column.setflags(write=False)
                columns[name] = column
                continue
            dtype = np.dtype(dtype_str)
            count = nbytes // dtype.itemsize if dtype.itemsize else 0
            view = np.ndarray((count,), dtype=dtype, buffer=segment.buf, offset=offset)
            view.flags.writeable = False
            columns[name] = view
    except BaseException:
        # A corrupt pickle or a bad dtype string must not leak the
        # mapping: on success the segment is returned (and pinned by the
        # _Attachment), on failure we are its only owner.  Views built so
        # far must go before close() can release the buffer.
        columns = view = None  # noqa: F841
        segment.close()
        raise
    # Seed the cache-key digest with the handle *token* (fingerprint for
    # full exports, fingerprint+subset for column-restricted ones), so
    # two different subsets of one table can never alias cache entries.
    table = Table.from_shared(columns, fingerprint=handle.token)
    return table, segment


def _resolve(token: str, attach):
    """Shared resolution: publisher short-circuit, then the worker store.

    ``attach`` is called on a store miss and must return an
    :class:`_Attachment`; the result is memoized (LRU) for the process
    lifetime so each handle attaches at most once per worker.
    """
    local = _LOCAL.get(token)
    if local is not None and local[0] == os.getpid():
        return local[1]
    with _WORKER_LOCK:
        attachment = _WORKER_STORE.get(token)
        if attachment is None:
            attachment = attach()
            _store_put(token, attachment)
        else:
            _WORKER_STORE.move_to_end(token)
        return attachment.value


def resolve_collection(handle: CollectionHandle) -> Sequence[Trendline]:
    """The worker-resident collection for ``handle`` (attach on first use)."""
    return _resolve(handle.token, lambda: _Attachment(*attach_collection(handle)))


def resolve_query(query):
    """Resolve a :class:`QueryHandle` (or pass a compiled query through)."""
    if not isinstance(query, QueryHandle):
        return query

    def attach():
        segment = _attach_segment(query.name)
        try:
            # The pickle is copied out (bytes(...)), so the segment is
            # closed on every path — a corrupt payload must not leak it.
            value = pickle.loads(bytes(segment.buf[: query.nbytes]))
        finally:
            segment.close()
        return _Attachment(value, None)

    return _resolve(query.token, attach)


def attach_index(handle: IndexHandle) -> Tuple["object", "object"]:
    """Rebuild a read-only shape index over the shared payload."""
    from repro.engine.shape_index import ShapeIndex

    segment = _attach_segment(handle.name)
    try:
        values = np.ndarray((handle.total,), dtype=np.float64, buffer=segment.buf)
        values.flags.writeable = False
        manifest_start = handle.total * 8
        layout = pickle.loads(
            bytes(segment.buf[manifest_start : manifest_start + handle.layout_nbytes])
        )
        index = ShapeIndex.from_packed(values, layout)
    except BaseException:
        # Same discipline as attach_collection: on failure nobody else
        # owns the mapping, and every view must be dropped before close().
        values = index = None  # noqa: F841
        segment.close()
        raise
    return index, segment


def resolve_index(handle: IndexHandle):
    """The worker-resident shape index for ``handle`` (attach on first use)."""
    return _resolve(handle.token, lambda: _Attachment(*attach_index(handle)))


def attach_table_delta(handle: TableDeltaHandle) -> Tuple[Table, None]:
    """Extend the (resident) base table with a published delta segment.

    Resolves the base recursively — hitting the worker store for every
    link already attached — then concatenates the delta rows onto each
    base column and adopts the result under the delta's token.  The
    concatenation copies, so the small delta segment is closed right
    here rather than kept mapped; the base's own mappings stay owned by
    its store entry.
    """
    base = resolve_table(handle.base)
    segment = _attach_segment(handle.name)
    try:
        columns: Dict[str, np.ndarray] = {}
        for name, dtype_str, offset, nbytes in handle.columns:
            base_column = base.column(name)
            if dtype_str == _OBJECT_COLUMN_DTYPE:
                values = pickle.loads(bytes(segment.buf[offset : offset + nbytes]))
                column = np.empty(len(base_column) + len(values), dtype=object)
                column[: len(base_column)] = base_column
                for index, value in enumerate(values):
                    column[len(base_column) + index] = value
            else:
                dtype = np.dtype(dtype_str)
                count = nbytes // dtype.itemsize if dtype.itemsize else 0
                view = np.ndarray((count,), dtype=dtype, buffer=segment.buf, offset=offset)
                column = np.concatenate([base_column, view])
            column.setflags(write=False)
            columns[name] = column
    finally:
        segment.close()
    table = Table.from_shared(columns, fingerprint=handle.token)
    return table, None


def resolve_table(handle) -> Table:
    """The worker-resident table for ``handle`` (attach on first use).

    Accepts both a full-export :class:`TableHandle` and a chained
    :class:`TableDeltaHandle`; either memoizes under its own token.
    """
    if isinstance(handle, TableDeltaHandle):
        return _resolve(handle.token, lambda: _Attachment(*attach_table_delta(handle)))
    return _resolve(handle.token, lambda: _Attachment(*attach_table(handle)))


def worker_init() -> None:
    """Process-pool initializer (``WorkerPool(initializer=...)``).

    Fork copies the publisher's ``_LOCAL`` registry into the child; left
    in place it would satisfy every resolve from copy-on-write memory and
    silently bypass the shared segments.  Dropping it (and any stale
    attachment store) makes workers persistent shm residents: every
    handle resolves through shared memory exactly once per worker.
    (The worker-side generation caches of :mod:`repro.engine.pipeline`
    need no reset here — they hang off Table instances, so a worker only
    ever populates them on tables it resolved itself.)
    """
    _LOCAL.clear()
    _WORKER_STORE.clear()


# --------------------------------------------------------------------------
# Session lifecycle
# --------------------------------------------------------------------------

_SESSIONS: "weakref.WeakSet[ShmSession]" = weakref.WeakSet()


class ShmSession:
    """Owns the segments one engine/session published; closes them once.

    Publishing is memoized — the same collection object, compiled query,
    or table (by fingerprint) is exported exactly once per session — and
    the collection/query memos are LRU-bounded, so an engine run *without*
    a trendline cache (fresh collection per ``execute``) recycles old
    segments instead of accumulating one per query.  :meth:`pin` defers
    any release of a handle's segment while shards referencing it are in
    flight.  :meth:`close` is idempotent, also running via ``atexit`` so
    that interpreter exit never leaks shared-memory segments.
    """

    #: Retained collection segments (each a full data copy): bounded so
    #: cacheless sessions stay bounded too.
    MAX_COLLECTIONS = 8
    #: Retained query segments (small, but each costs a /dev/shm inode).
    MAX_QUERIES = 128
    #: Retained table segments (full data copies, keyed by content
    #: fingerprint): bounded so streaming/append workloads — which churn
    #: fingerprints every batch — recycle segments instead of filling
    #: /dev/shm.  Evictions defer to the dispatch pins below.
    MAX_TABLES = 8
    #: Retained index segments (a few bucket matrices per trendline —
    #: far smaller than a collection, but rebuilt per index key).
    MAX_INDEXES = 8
    #: Longest delta chain :meth:`acquire_append` will extend before
    #: forcing a fresh full publish: bounds the pickled handle size, the
    #: per-dispatch pin count, and the worker-side resolve depth, and
    #: keeps a chain (root + links) comfortably inside MAX_TABLES.
    MAX_DELTA_CHAIN = 4

    def __init__(self):
        self._lock = threading.Lock()
        self._segments: Dict[str, object] = {}  # token -> SharedMemory
        self._collections: "OrderedDict[int, CollectionHandle]" = OrderedDict()
        self._queries: "OrderedDict[int, QueryHandle]" = OrderedDict()
        self._tables: "OrderedDict[str, TableHandle]" = OrderedDict()
        self._indexes: "OrderedDict[int, IndexHandle]" = OrderedDict()
        self._refs: Dict[int, object] = {}  # keeps memo ids stable
        self._witness: Dict[int, tuple] = {}  # element identities at publish
        self._pins: Dict[str, int] = {}  # token -> in-flight dispatch count
        #: token -> [segments] released while pinned.  A *list* per
        #: token: with the LRU-bounded table memo a content fingerprint
        #: can be evicted, republished and evicted again while earlier
        #: dispatches still pin it — every parked generation must be
        #: unlinked at the final unpin, not just the latest.
        self._deferred: Dict[str, List[object]] = {}
        self._closed = False
        _SESSIONS.add(self)

    # -- publishing --------------------------------------------------------
    def collection_handle(self, trendlines: Sequence[Trendline]) -> CollectionHandle:
        """Publish a collection once; later calls reuse the segment."""
        stale: list = []
        with self._lock:
            self._check_open()
            handle = self._collection_locked(trendlines, stale)
        _destroy_all(stale)
        return handle

    def query_handle(self, compiled) -> QueryHandle:
        """Publish a compiled query once; later calls reuse the segment."""
        stale: list = []
        with self._lock:
            self._check_open()
            handle = self._query_locked(compiled, stale)
        _destroy_all(stale)
        return handle

    def acquire(self, trendlines: Sequence[Trendline], compiled) -> Tuple[CollectionHandle, QueryHandle]:
        """Publish-or-reuse both handles *and* pin them, atomically.

        This is the dispatch entry point: taking the pins under the same
        lock as the lookup closes the window in which a concurrent
        eviction could unlink a segment between handing out its handle
        and :meth:`pin` taking effect.  Pair with :meth:`unpin`.
        """
        stale: list = []
        with self._lock:
            self._check_open()
            handle = self._collection_locked(trendlines, stale)
            query_ref = self._query_locked(compiled, stale)
            for token in (handle.token, query_ref.token):
                self._pins[token] = self._pins.get(token, 0) + 1
        _destroy_all(stale)
        return handle, query_ref

    def acquire_index(self, index, compiled) -> Optional[Tuple[IndexHandle, QueryHandle]]:
        """Publish-or-reuse the index + query handles *and* pin both.

        The IndexPrune dispatch entry point, mirroring :meth:`acquire`'s
        lock discipline.  Returns ``None`` when the index packs to
        nothing (every trendline below the pyramid threshold) — the
        caller then computes bounds in-process.  Pair with :meth:`unpin`.
        """
        stale: list = []
        with self._lock:
            self._check_open()
            handle = self._index_locked(index, stale)
            if handle is None:
                _destroy_all(stale)
                return None
            query_ref = self._query_locked(compiled, stale)
            for token in (handle.token, query_ref.token):
                self._pins[token] = self._pins.get(token, 0) + 1
        _destroy_all(stale)
        return handle, query_ref

    def _index_locked(self, index, stale: list) -> Optional[IndexHandle]:
        # A ShapeIndex is immutable once built (extension returns a new
        # object), so unlike the collection memo a bare id key suffices —
        # _refs pins the object so its id cannot be recycled.
        if index.indexed == 0:
            return None
        key = id(index)
        handle = self._indexes.get(key)
        if handle is None:
            handle, segment = publish_index(index)
            self._indexes[key] = handle
            self._refs[key] = index
            self._segments[handle.token] = segment
            _LOCAL[handle.token] = (os.getpid(), index)
            while len(self._indexes) > self.MAX_INDEXES:
                old_key, old = self._indexes.popitem(last=False)
                stale.append(self._drop_locked(old_key, old.token))
        else:
            self._indexes.move_to_end(key)
        return handle

    def acquire_generation(
        self, table: Table, compiled, columns: Optional[Sequence[str]] = None
    ) -> Tuple[TableHandle, QueryHandle]:
        """Publish-or-reuse the table + query handles *and* pin both.

        The worker-side generation dispatch entry point: the table memo
        is LRU-bounded (streaming workloads churn fingerprints), so like
        :meth:`acquire` the lookup and the pin happen under one lock —
        a concurrent execute must not evict-and-unlink a segment between
        handing out its handle and the pin taking effect.  Pair with
        :meth:`unpin`.
        """
        stale: list = []
        with self._lock:
            self._check_open()
            handle = self._table_locked(table, stale, columns=columns)
            query_ref = self._query_locked(compiled, stale)
            for token in (handle.token, query_ref.token):
                self._pins[token] = self._pins.get(token, 0) + 1
        _destroy_all(stale)
        return handle, query_ref

    def acquire_append(
        self,
        table: Table,
        base: Optional[Table],
        compiled,
        columns: Optional[Sequence[str]] = None,
    ) -> Tuple[object, QueryHandle, Tuple[str, ...]]:
        """Publish ``table`` as a delta over ``base`` when possible, and pin.

        The streaming-tail dispatch entry point.  Returns
        ``(table_handle, query_handle, pinned_tokens)``; the table handle
        is a :class:`TableDeltaHandle` chained to ``base``'s live
        segment when the delta preconditions hold, otherwise a plain
        full export — correctness never depends on the delta path being
        taken.  Every token along the delta chain is pinned (workers may
        attach any link mid-dispatch); pass ``pinned_tokens`` back to
        :meth:`unpin` when the dispatch completes.
        """
        stale: list = []
        with self._lock:
            self._check_open()
            handle = self._append_locked(table, base, stale, columns=columns)
            query_ref = self._query_locked(compiled, stale)
            tokens = tuple(delta_chain_tokens(handle)) + (query_ref.token,)
            for token in tokens:
                self._pins[token] = self._pins.get(token, 0) + 1
        _destroy_all(stale)
        return handle, query_ref, tokens

    def _append_locked(
        self,
        table: Table,
        base: Optional[Table],
        stale: list,
        columns: Optional[Sequence[str]] = None,
    ):
        """Publish-or-reuse ``table``, preferring a delta chained to ``base``.

        Falls back to a full :meth:`_table_locked` publish whenever the
        delta would be unsound or unprofitable: no base, base segment
        (or any link of its chain) already evicted, an append that
        widened a column dtype (the delta bytes would not concatenate
        onto the resident views), or a chain already
        :data:`MAX_DELTA_CHAIN` links deep — bounding both the pickled
        handle size and the number of pins a dispatch must hold.
        """
        from repro.engine.cache import table_fingerprint

        token = table_token(table_fingerprint(table), columns)
        handle = self._tables.get(token)
        if handle is not None:
            if self._chain_intact_locked(handle):
                for chain_token in reversed(delta_chain_tokens(handle)):
                    if chain_token in self._tables:
                        self._tables.move_to_end(chain_token)
                return handle
            self._tables.pop(token, None)
            stale.append(self._drop_locked(token, token))
        base_handle = None
        if base is not None and 0 < len(base) < len(table):
            base_token = table_token(table_fingerprint(base), columns)
            candidate = self._tables.get(base_token)
            if (
                candidate is not None
                and self._chain_intact_locked(candidate)
                and _delta_depth(candidate) < self.MAX_DELTA_CHAIN
                and _dtypes_preserved(base, table, candidate)
            ):
                base_handle = candidate
        if base_handle is None:
            return self._table_locked(table, stale, columns=columns)
        handle, segment = publish_table_delta(table, base_handle, len(base), token)
        self._tables[token] = handle
        self._segments[token] = segment
        _LOCAL[token] = (os.getpid(), table)
        # Refresh the whole chain in the LRU (root first, newest last) so
        # the eviction below can only shed entries outside this chain —
        # evicting a link would break the handle we are about to dispatch.
        for chain_token in reversed(delta_chain_tokens(handle)):
            if chain_token in self._tables:
                self._tables.move_to_end(chain_token)
        while len(self._tables) > self.MAX_TABLES:
            old_token, old = self._tables.popitem(last=False)
            stale.append(self._drop_locked(old_token, old.token))
        return handle

    def _chain_intact_locked(self, handle) -> bool:
        """True when every segment along a handle's delta chain is live.

        A link whose segment was evicted (even if parked in
        ``_deferred`` under an older pin) cannot host *new* dispatches —
        its ``/dev/shm`` name may vanish at any unpin — so a broken
        chain forces a fresh full publish.
        """
        for token in delta_chain_tokens(handle):
            if token not in self._segments:
                return False
        return True

    def _collection_locked(self, trendlines, stale: list) -> CollectionHandle:
        key = id(trendlines)
        handle = self._collections.get(key)
        # Lists are not immutable the way Table is: guard the id-based
        # memo with a per-element identity witness so replacing, appending
        # or reordering trendlines re-publishes instead of silently
        # serving the stale segment.  (In-place mutation of a trendline's
        # own arrays remains the caller's contract, as everywhere else.)
        witness = tuple(map(id, trendlines))
        if handle is not None and self._witness.get(key) != witness:
            self._collections.pop(key, None)
            stale.append(self._drop_locked(key, handle.token))
            handle = None
        if handle is None:
            handle, segment = publish_trendlines(trendlines)
            self._collections[key] = handle
            self._witness[key] = witness
            self._refs[key] = trendlines
            self._segments[handle.token] = segment
            _LOCAL[handle.token] = (os.getpid(), trendlines)
            while len(self._collections) > self.MAX_COLLECTIONS:
                old_key, old = self._collections.popitem(last=False)
                stale.append(self._drop_locked(old_key, old.token))
        else:
            self._collections.move_to_end(key)
        return handle

    def _query_locked(self, compiled, stale: list) -> QueryHandle:
        key = id(compiled)
        handle = self._queries.get(key)
        if handle is None:
            handle, segment = publish_query(compiled)
            self._queries[key] = handle
            self._refs[key] = compiled
            self._segments[handle.token] = segment
            _LOCAL[handle.token] = (os.getpid(), compiled)
            while len(self._queries) > self.MAX_QUERIES:
                old_key, old = self._queries.popitem(last=False)
                stale.append(self._drop_locked(old_key, old.token))
        else:
            self._queries.move_to_end(key)
        return handle

    def table_handle(
        self, table: Table, columns: Optional[Sequence[str]] = None
    ) -> TableHandle:
        """Publish a table once per (fingerprint, column subset); LRU-recycled."""
        stale: list = []
        with self._lock:
            self._check_open()
            handle = self._table_locked(table, stale, columns=columns)
        _destroy_all(stale)
        return handle

    def _table_locked(
        self, table: Table, stale: list, columns: Optional[Sequence[str]] = None
    ) -> TableHandle:
        from repro.engine.cache import table_fingerprint

        token = table_token(table_fingerprint(table), columns)
        handle = self._tables.get(token)
        if handle is None:
            handle, segment = publish_table(table, token=token, columns=columns)
            self._tables[token] = handle
            self._segments[token] = segment
            _LOCAL[token] = (os.getpid(), table)
            while len(self._tables) > self.MAX_TABLES:
                _old_token, old = self._tables.popitem(last=False)
                stale.append(self._drop_locked(_old_token, old.token))
        else:
            self._tables.move_to_end(token)
        return handle

    # -- in-flight pinning -------------------------------------------------
    def pin(self, *handles) -> None:
        """Guard handles during dispatch: their segments outlive releases.

        A concurrent cache eviction (or the session's own LRU bound) may
        release a collection while another thread's shards are still being
        dispatched; pinned segments have their unlink deferred until the
        matching :meth:`unpin`, so late-attaching workers never see a
        vanished ``/dev/shm`` name.
        """
        with self._lock:
            for handle in handles:
                token = _pin_token(handle)
                if token is not None:
                    self._pins[token] = self._pins.get(token, 0) + 1

    def unpin(self, *handles) -> None:
        """Drop dispatch pins, performing any release deferred meanwhile."""
        stale = []
        with self._lock:
            for handle in handles:
                token = _pin_token(handle)
                if token is None:
                    continue
                remaining = self._pins.get(token, 0) - 1
                if remaining > 0:
                    self._pins[token] = remaining
                else:
                    self._pins.pop(token, None)
                    deferred = self._deferred.pop(token, None)
                    if deferred is not None:
                        stale.extend(deferred)
        for segment in stale:
            _destroy(segment)

    # -- release -----------------------------------------------------------
    def release_collection(self, trendlines) -> None:
        """Unlink one collection's segment (trendline-cache eviction hook).

        Workers that already attached keep their mapping — POSIX keeps the
        memory alive until the last map closes — but no new publisher-side
        reuse can occur, and the ``/dev/shm`` name is freed (deferred while
        the handle is pinned by an in-flight dispatch).
        """
        key = id(trendlines)
        with self._lock:
            handle = self._collections.pop(key, None)
            if handle is None:
                return
            segment = self._drop_locked(key, handle.token)
        if segment is not None:
            _destroy(segment)

    def _drop_locked(self, key: int, token: str):
        """Forget one published entry; return its segment to destroy.

        Caller holds the lock.  Returns ``None`` when the segment is
        pinned (parked in ``_deferred`` for :meth:`unpin`) or already gone.
        """
        self._refs.pop(key, None)
        self._witness.pop(key, None)
        _LOCAL.pop(token, None)
        segment = self._segments.pop(token, None)
        if segment is None:
            return None
        if self._pins.get(token):
            self._deferred.setdefault(token, []).append(segment)
            return None
        return segment

    def close(self) -> None:
        """Close and unlink every published segment (safe to call twice)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments = list(self._segments.values()) + [
                segment for parked in self._deferred.values() for segment in parked
            ]
            tokens = list(self._segments.keys()) + list(self._deferred.keys())
            self._segments.clear()
            self._deferred.clear()
            self._pins.clear()
            self._collections.clear()
            self._queries.clear()
            self._tables.clear()
            self._indexes.clear()
            self._refs.clear()
            self._witness.clear()
        for token in tokens:
            _LOCAL.pop(token, None)
        for segment in segments:
            _destroy(segment)

    def _check_open(self):
        if self._closed:
            raise ExecutionError("ShmSession is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ShmSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _pin_token(handle) -> Optional[str]:
    """The pin/segment key of any handle kind (every handle carries one).

    Raw token strings pass through so callers holding the pinned-token
    tuple of :meth:`ShmSession.acquire_append` can unpin it directly.
    """
    if isinstance(handle, str):
        return handle
    return getattr(handle, "token", None)


def _dtypes_preserved(base: Table, table: Table, base_handle) -> bool:
    """True when the appended table kept every published column's dtype.

    A widened dtype (float appended to an int column) means the delta's
    raw bytes would not concatenate onto the resident base views — the
    append must republish in full.
    """
    for name, _dtype_str, _offset, _nbytes in base_handle.columns:
        if table.column(name).dtype != base.column(name).dtype:
            return False
    return True


def _destroy_all(segments) -> None:
    for segment in segments:
        if segment is not None:
            _destroy(segment)


def _destroy(segment) -> None:
    try:
        segment.close()
    except Exception:  # pragma: no cover
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # already unlinked (e.g. concurrent close)
        pass
    except Exception:  # pragma: no cover
        pass


def release_evicted(value) -> None:
    """LRU-eviction hook for caches that may hold published collections.

    One module-level function (registered once per cache — listener
    deduplication is by identity) rather than a closure per engine, so a
    long-lived shared cache never accumulates stale listeners.  Only the
    session that published ``value`` has it memoized; for every other
    session — and for values that were never published — this is a no-op.
    """
    for session in list(_SESSIONS):
        if not session.closed:
            session.release_collection(value)


@atexit.register
def _close_all_sessions() -> None:  # pragma: no cover - exercised at exit
    for session in list(_SESSIONS):
        session.close()
