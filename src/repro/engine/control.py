"""Cooperative cancellation and progress observation for one execution.

The staged pipeline (:mod:`repro.engine.pipeline`) is a synchronous
operator chain; what makes :meth:`PreparedSearch.submit` observable and
cancellable is the :class:`ExecutionControl` threaded through it.  The
Score stage registers the shard count with :meth:`begin`, reports every
completed shard through :meth:`shard_completed` (feeding the user's
progress callback), and checks :attr:`cancelled` before dispatching each
remaining shard — a cancel drops the un-dispatched shards, and the
MergeTopK rendezvous raises :class:`~repro.errors.SearchCancelled`
instead of merging a partial top-k.

Cancellation is *cooperative*: shards already running on the pool finish
normally (so the pool stays reusable and deterministic), only their
results are discarded.  The same hook points are the seam a future
streaming-append execute path can feed incremental merges from.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Tuple

#: Well-known cancellation reason codes.  ``CANCEL_USER`` is the default
#: (an explicit ``future.cancel()``); ``CANCEL_SHED`` marks a load-shed
#: by the serving layer's admission controller (the client sees an
#: ``overloaded`` frame, not a generic cancel); ``CANCEL_SHUTDOWN``
#: marks a teardown sweep (engine/server close).  The reason is carried
#: on the control, not the exception type, so every path that already
#: handles :class:`~repro.errors.SearchCancelled` keeps working.
CANCEL_USER = "user"
CANCEL_SHED = "shed"
CANCEL_SHUTDOWN = "shutdown"


class ExecutionControl:
    """Shared state between one in-flight execution and its observers.

    ``progress`` is an optional ``callable(completed, total)`` invoked
    from the execution's driver thread — once when the Score stage
    establishes its shard count (``completed == 0``), once per shard
    completed thereafter, and once when a cancel drops the remaining
    shards (so observers always see a terminal state; see :meth:`drop`
    for the ``completed + dropped == total`` contract).  Keep callbacks
    cheap; they run on the critical
    path of the search that reports through them.  A raising callback is
    swallowed (the search must not fail because its observer did).
    """

    __slots__ = (
        "_cancelled", "_lock", "_progress", "_cancel_reason",
        "total", "completed", "dropped",
    )

    def __init__(
        self, progress: Optional[Callable[[int, Optional[int]], None]] = None
    ) -> None:
        self._cancelled = threading.Event()
        self._lock = threading.Lock()
        self._progress = progress
        self._cancel_reason: Optional[str] = None
        #: Shards the Score stage planned (None until it begins).
        self.total: Optional[int] = None
        #: Shards whose results are in.
        self.completed = 0
        #: Shards dropped by a cooperative cancel (never dispatched, or
        #: cancelled on the pool before starting).
        self.dropped = 0

    # -- cancellation ------------------------------------------------------
    def cancel(self, reason: str = CANCEL_USER) -> None:
        """Request cooperative cancellation (idempotent, thread-safe).

        ``reason`` is a short code recorded on first cancel (later calls
        never overwrite it): :data:`CANCEL_USER` for explicit cancels,
        :data:`CANCEL_SHED` when an admission controller load-sheds the
        execution, :data:`CANCEL_SHUTDOWN` for teardown sweeps.  Read it
        back via :attr:`cancel_reason` — the serving layer maps ``shed``
        to an ``overloaded`` response instead of a generic cancel.
        """
        with self._lock:
            if self._cancel_reason is None:
                self._cancel_reason = str(reason)
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled.is_set()

    @property
    def cancel_reason(self) -> Optional[str]:
        """The first :meth:`cancel` call's reason code (None before)."""
        with self._lock:
            return self._cancel_reason

    # -- progress (driven by the Score stage) ------------------------------
    def begin(self, total: int) -> None:
        """Record the planned shard count and emit the initial progress."""
        with self._lock:
            self.total = total
        self._notify()

    def shard_completed(self) -> None:
        """Count one finished shard and notify the progress callback."""
        with self._lock:
            self.completed += 1
        self._notify()

    def drop(self, count: int) -> None:
        """Record ``count`` shards skipped by a cooperative cancel.

        Notifies the progress callback, so an observer of a cancelled
        (or tail-superseded) search always sees a terminal state.  The
        terminal contract is ``completed + dropped == total``: after the
        last notification, every shard is accounted for either as
        completed or as dropped.  The callback signature stays
        ``(completed, total)`` for compatibility; read
        :attr:`dropped` (or :meth:`snapshot`) off the control to close
        the gap between the two.
        """
        if count:
            with self._lock:
                self.dropped += count
            self._notify()

    def snapshot(self) -> Tuple[int, Optional[int], int]:
        """``(completed, total, dropped)`` in one consistent read."""
        with self._lock:
            return self.completed, self.total, self.dropped

    @property
    def progress(self) -> Tuple[int, Optional[int]]:
        """``(completed shards, total shards or None)`` right now."""
        with self._lock:
            return self.completed, self.total

    def _notify(self) -> None:
        if self._progress is None:
            return
        try:
            self._progress(self.completed, self.total)
        except Exception:
            # Observer errors must not poison the search they watch —
            # the same policy as SearchFuture's done-callbacks.
            pass
