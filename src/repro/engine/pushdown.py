"""Early pruning via push-down optimizations (paper §5.4).

Three optimizations move work up the pipeline:

(a) **LOCATION → EXTRACT**: visualizations with no data inside a pinned
    x range of the query are dropped before GROUP ever sees them.
(b) **Eager pinned-pattern checks → SEGMENT**: a pinned up/down
    ShapeSegment is scored first; when every alternative chain has such
    a segment scoring negative, the visualization is discarded before
    any fuzzy segmentation happens.
(c) **Range restriction → GROUP**: when every segment of the query is
    pinned, summarized statistics are materialized only over the union
    of the pinned x ranges (raw values are kept for plotting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.engine.chains import Chain, CompiledQuery
from repro.engine.trendline import Trendline
from repro.engine.units import SlopeUnit


def chain_statically_bounded(chain: Chain) -> bool:
    """Does every unit of ``chain`` have a static score upper bound?

    Slope and line scores never exceed 1.0, so chains built purely from
    them can be bounded without running any segmentation — the shared
    gate of :func:`eager_upper_bound` and the shape index's
    :func:`~repro.engine.shape_index.index_supports`.  Unit types
    without a static bound (UDPs, windows, AND groups, ...) disqualify
    the whole chain.
    """
    from repro.engine.units import LineUnit

    return all(isinstance(cu.unit, (SlopeUnit, LineUnit)) for cu in chain.units)


@dataclass
class PushdownPlan:
    """Static query analysis shared by the pipeline operators."""

    #: Pinned x spans; EXTRACT requires data inside each (optimization a).
    required_spans: List[Tuple[float, float]] = field(default_factory=list)
    #: x span to materialize statistics for, when fully pinned (c).
    keep_span: Optional[Tuple[float, float]] = None
    #: Whether any chain carries a pinned directional unit (enables b).
    has_eager_checks: bool = False


def plan_pushdown(query: CompiledQuery) -> PushdownPlan:
    """Derive the push-down plan from a compiled query."""
    plan = PushdownPlan()
    spans: List[Tuple[float, float]] = []
    fully_pinned = True
    for chain in query.chains:
        for cu in chain.units:
            loc = cu.unit.location
            if loc.is_x_pinned:
                spans.append((loc.x_start, loc.x_end))
                if isinstance(cu.unit, SlopeUnit) and cu.unit.kind in ("up", "down"):
                    plan.has_eager_checks = True
            else:
                fully_pinned = False
    # Deduplicate while preserving order.
    seen = set()
    for span in spans:
        if span not in seen:
            seen.add(span)
            plan.required_spans.append(span)
    if fully_pinned and spans:
        plan.keep_span = (min(s for s, _ in spans), max(e for _, e in spans))
    return plan


def has_required_data(x_values: np.ndarray, spans: List[Tuple[float, float]]) -> bool:
    """Push-down (a): does the group have data inside every pinned span?"""
    for lo, hi in spans:
        inside = (x_values >= lo) & (x_values <= hi)
        if not inside.any():
            return False
    return True


def eager_discard(trendline: Trendline, query: CompiledQuery) -> bool:
    """Push-down (b): the paper's eager pinned-pattern predicate.

    A chain *fails* when one of its pinned up/down segments scores
    negative at its pinned bins; the visualization is discarded only if
    every alternative chain fails (chains without pinned directional
    segments never fail here).

    .. note:: As a hard filter this can produce top-k *false negatives*
       (a candidate with one contradicted pinned segment may still
       out-score the k-th best candidate overall), so the execution
       engine instead uses :func:`eager_upper_bound` against its running
       top-k floor — same early exit, provably exact.  This predicate is
       kept as the paper-faithful formulation.
    """
    any_chain_viable = False
    for chain in query.chains:
        chain_fails = False
        for cu in chain.units:
            unit = cu.unit
            if not (isinstance(unit, SlopeUnit) and unit.kind in ("up", "down")):
                continue
            if not unit.location.is_x_pinned:
                continue
            start, end = unit.resolve_pins(trendline)
            if unit.score(trendline, start, end) <= 0.0:
                chain_fails = True
                break
        if not chain_fails:
            any_chain_viable = True
            break
    return not any_chain_viable


def eager_upper_bound(trendline: Trendline, query: CompiledQuery) -> float:
    """Optimistic score bound from pinned directional segments (exact (b)).

    Every pinned up/down SlopeUnit's final placement is fixed at its
    ``resolve_pins`` bins, so its exact contribution is known before any
    fuzzy segmentation runs; every other unit in a chain of statically
    bounded unit types (slope/line scores never exceed 1.0) contributes
    at most its weight.  The query bound is the max over chains.  Chains
    containing unit types without a static bound (UDPs, windows, AND
    groups, ...) yield ``inf`` — never discarded on their account.

    The caller discards a candidate only when this bound cannot beat its
    current top-k floor, which preserves the exact top-k: unlike
    :func:`eager_discard`, a contradicted pinned segment alone is not
    disqualifying.

    This runs once per candidate in the shard hot loop, so the pinned
    units' slope fits ride the batched prefix kernel: every distinct
    pinned directional unit across all chains is fitted in one
    :meth:`~repro.engine.statistics.PrefixStats.slopes_pairs` call
    (bitwise-equal to the scalar slope path), and units shared between
    OR-alternative chains are scored once.
    """
    for chain in query.chains:
        if not chain_statically_bounded(chain):
            return float("inf")

    pinned = {}  # id(unit) -> (unit, start bin, end bin)
    for chain in query.chains:
        for cu in chain.units:
            unit = cu.unit
            if (
                isinstance(unit, SlopeUnit)
                and unit.kind in ("up", "down")
                and unit.location.is_x_pinned
                and id(unit) not in pinned
            ):
                start, end = unit.resolve_pins(trendline)
                pinned[id(unit)] = (unit, start, end)
    if not pinned:
        return float("inf")

    entries = list(pinned.values())
    scores = {}
    if len(entries) <= 2:
        # Scalar fast path: for the typical one-or-two-pin query the
        # allocation-free scalar score beats building 1-2 element arrays.
        for unit, start, end in entries:
            scores[id(unit)] = unit.score_with_slope(trendline, start, end)
    else:
        slopes = trendline.prefix.slopes_pairs(
            np.array([start for _unit, start, _end in entries]),
            np.array([end for _unit, _start, end in entries]),
        )
        for (unit, start, end), slope in zip(entries, slopes):
            scores[id(unit)] = unit.score_with_slope(
                trendline, start, end, float(slope)
            )

    best = -float("inf")
    for chain in query.chains:
        chain_bound = 0.0
        for cu in chain.units:
            unit_score = scores.get(id(cu.unit))
            if unit_score is not None:
                chain_bound += cu.weight * min(1.0, unit_score)
            else:
                chain_bound += cu.weight
        best = max(best, chain_bound)
    return best
