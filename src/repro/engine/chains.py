"""Compile a ShapeQuery AST into weighted alternative chains of units.

Execution engines do not walk the AST directly.  A normalized query is
flattened into one or more *alternative chains* — flat sequences of
:class:`~repro.engine.units.CompiledUnit` with weights — such that::

    score(query, viz) = max over chains of  Σ_i  w_i · score(unit_i, seg_i)

where the ``seg_i`` partition the visualization left to right.  The
weights encode the nested CONCAT means of Table 6 exactly: every unit's
weight is the product of ``1/len(children)`` over the CONCAT nodes above
it, and each OR branch contributes one alternative, so the max over
chains of the weighted sums equals the recursive mean/max evaluation of
the tree (AND subtrees stay intact as single :class:`AndUnit` leaves,
scored over one shared region as the paper prescribes).

Example: ``a ⊗ (b ⊕ (c ⊗ d))`` flattens to two chains —
``[(a, ½), (b, ½)]`` and ``[(a, ½), (c, ¼), (d, ¼)]`` — the same
ShapeExpr families the paper tracks at the nodes of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import List, Optional, Tuple

from repro.algebra.nodes import And, Concat, Node, Or, ShapeSegment
from repro.algebra.normalize import normalize
from repro.algebra.primitives import Location
from repro.algebra.validate import validate
from repro.engine.scoring import sharpened_kind
from repro.engine.units import (
    AndUnit,
    CompiledUnit,
    LineUnit,
    NestedUnit,
    PositionUnit,
    QuantifierUnit,
    SketchUnit,
    SlopeUnit,
    UdpUnit,
    WindowUnit,
)
from repro.errors import ExecutionError

#: Guard against OR-combinatorics explosions while flattening.
MAX_ALTERNATIVES = 128


@dataclass(frozen=True)
class ChainUnit:
    """One unit of a chain with its CONCAT-mean weight."""

    unit: CompiledUnit
    weight: float


@dataclass(frozen=True)
class Chain:
    """A flat weighted sequence of units; one OR-alternative of the query."""

    units: Tuple[ChainUnit, ...]

    @property
    def k(self) -> int:
        return len(self.units)

    @property
    def has_position(self) -> bool:
        return any(cu.unit.has_position for cu in self.units)

    def all_vectorized(self) -> bool:
        return all(cu.unit.vectorized for cu in self.units)


@dataclass
class CompiledQuery:
    """A normalized, validated, flattened ShapeQuery ready for execution."""

    node: Node
    chains: List[Chain]

    @property
    def k(self) -> int:
        """Widest chain length (the paper's k)."""
        return max(chain.k for chain in self.chains)

    @property
    def has_position(self) -> bool:
        return any(chain.has_position for chain in self.chains)

    def pinned_units(self) -> List[ChainUnit]:
        """Units with both x endpoints fixed, across all chains."""
        seen = []
        for chain in self.chains:
            for cu in chain.units:
                if cu.unit.location.is_x_pinned and cu not in seen:
                    seen.append(cu)
        return seen


def compile_query(
    node: Node, quantifier_threshold: Optional[float] = None
) -> CompiledQuery:
    """Normalize, validate and flatten a ShapeQuery AST.

    ``quantifier_threshold`` overrides the occurrence floor baked into
    compiled QuantifierUnits (paper §5.2: the default "can be overridden
    by users"); ``None`` keeps
    :data:`repro.engine.scoring.QUANTIFIER_POSITIVE_THRESHOLD`.
    """
    normalized = normalize(node)
    validate(normalized)
    counter = _SegmentCounter()
    alternatives = _flatten(normalized, 1.0, counter, quantifier_threshold)
    if not alternatives:
        raise ExecutionError("query flattened to no alternatives")
    return CompiledQuery(node=normalized, chains=[Chain(tuple(units)) for units in alternatives])


class _SegmentCounter:
    """Assigns AST-wide left-to-right indices to ShapeSegments ($ refs)."""

    def __init__(self):
        self.next_index = 0

    def take(self) -> int:
        index = self.next_index
        self.next_index += 1
        return index


def _flatten(
    node: Node,
    scale: float,
    counter: _SegmentCounter,
    quantifier_threshold: Optional[float] = None,
) -> List[List[ChainUnit]]:
    if isinstance(node, ShapeSegment):
        unit = compile_segment(node, counter.take(), quantifier_threshold)
        return [[ChainUnit(unit, scale)]]
    if isinstance(node, Concat):
        share = scale / len(node.children)
        child_alternatives = [
            _flatten(child, share, counter, quantifier_threshold)
            for child in node.children
        ]
        combos: List[List[ChainUnit]] = []
        for combo in product(*child_alternatives):
            merged: List[ChainUnit] = []
            for part in combo:
                merged.extend(part)
            combos.append(merged)
            if len(combos) > MAX_ALTERNATIVES:
                raise ExecutionError(
                    "query has more than {} OR-alternatives".format(MAX_ALTERNATIVES)
                )
        return combos
    if isinstance(node, Or):
        alternatives: List[List[ChainUnit]] = []
        for child in node.children:
            alternatives.extend(_flatten(child, scale, counter, quantifier_threshold))
            if len(alternatives) > MAX_ALTERNATIVES:
                raise ExecutionError(
                    "query has more than {} OR-alternatives".format(MAX_ALTERNATIVES)
                )
        return alternatives
    if isinstance(node, And):
        branches = []
        for child in node.children:
            branch_alternatives = _flatten(child, 1.0, counter, quantifier_threshold)
            branches.append([Chain(tuple(units)) for units in branch_alternatives])
        return [[ChainUnit(AndUnit(branches), scale)]]
    raise ExecutionError("cannot flatten node {!r} (was the query normalized?)".format(node))


def compile_segment(
    segment: ShapeSegment,
    seg_index: int,
    quantifier_threshold: Optional[float] = None,
) -> CompiledUnit:
    """Compile one ShapeSegment into the appropriate unit type."""
    location = segment.location
    base_location = location
    if location.iterator is not None:
        # The window wrapper owns the iterator; the base sees no x pins.
        base_location = Location(y_start=location.y_start, y_end=location.y_end)

    unit = _compile_base(segment, base_location, seg_index, quantifier_threshold)
    if location.iterator is not None:
        unit = WindowUnit(unit, width=location.iterator.width, location=location)
    return unit


def _compile_base(
    segment: ShapeSegment,
    location: Location,
    seg_index: int,
    quantifier_threshold: Optional[float] = None,
) -> CompiledUnit:
    negated = segment.negated
    modifier = segment.modifier
    pattern = segment.pattern

    if segment.sketch is not None:
        return SketchUnit(segment.sketch, location=location, negated=negated, seg_index=seg_index)

    if pattern is None:
        if location.y_start is not None or location.y_end is not None:
            return LineUnit(location=location, negated=negated, seg_index=seg_index)
        return SlopeUnit("any", location=location, negated=negated, seg_index=seg_index)

    if pattern.kind == "position":
        comparison = modifier.comparison if modifier is not None else None
        factor = modifier.factor if modifier is not None else None
        return PositionUnit(
            reference_index=pattern.reference.resolve(seg_index),
            comparison=comparison,
            factor=factor,
            location=location,
            negated=negated,
            seg_index=seg_index,
        )

    if pattern.kind == "udp":
        if modifier is not None and modifier.is_quantifier:
            return QuantifierUnit(
                "udp",
                modifier.quantifier,
                udp_name=pattern.udp_name,
                location=location,
                negated=negated,
                seg_index=seg_index,
                positive_threshold=quantifier_threshold,
            )
        return UdpUnit(pattern.udp_name, location=location, negated=negated, seg_index=seg_index)

    if pattern.kind == "nested":
        inner = compile_query(pattern.nested, quantifier_threshold=quantifier_threshold)
        return NestedUnit(inner, location=location, negated=negated, seg_index=seg_index)

    kind = pattern.kind
    theta = pattern.theta
    if modifier is not None and modifier.is_quantifier:
        return QuantifierUnit(
            kind,
            modifier.quantifier,
            theta=theta,
            location=location,
            negated=negated,
            seg_index=seg_index,
            positive_threshold=quantifier_threshold,
        )
    if modifier is not None and modifier.comparison is not None:
        if modifier.factor is None and kind in ("up", "down"):
            kind, sharp_theta = sharpened_kind(kind, modifier.comparison)
            theta = sharp_theta if sharp_theta is not None else theta
        # A factor without a position reference scales the implied target:
        # [p=up, m=>2] reads "rising at least 2x the 45-degree reference".
        elif modifier.factor is not None and kind in ("up", "down"):
            import math

            base = 1.0 if kind == "up" else -1.0
            kind, theta = "slope", math.degrees(math.atan(base * modifier.factor))
    return SlopeUnit(kind, theta=theta, location=location, negated=negated, seg_index=seg_index)
