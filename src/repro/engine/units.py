"""Compiled scoreable units: the leaves the segmentation engines place.

A ShapeQuery is compiled (:mod:`repro.engine.chains`) into *alternative
chains* of :class:`CompiledUnit` objects.  Each unit knows how to score
itself over a half-open bin range ``[l, r)`` of a
:class:`~repro.engine.trendline.Trendline`; slope-based units also
provide vectorized row evaluation, which is what makes the DP engine
O(n²k) instead of O(n³k).

Unit taxonomy (mirroring the PATTERN values of Table 1):

* :class:`SlopeUnit` — up/down/flat/θ/any/empty, vectorized.
* :class:`LineUnit` — a bare-location segment matched against the
  straight line between its (y.s, y.e) endpoints.
* :class:`QuantifierUnit` — occurrence-quantified pattern (``m={2,}``).
* :class:`PositionUnit` — ``$i`` slope comparison (two-pass, §DESIGN 2.7).
* :class:`SketchUnit` — precise polyline matching (``v=...``).
* :class:`UdpUnit` — registered user-defined pattern.
* :class:`NestedUnit` — a full sub-query as a pattern (``p=[...]``).
* :class:`WindowUnit` — ITERATOR wrapper: best placement of a fixed-width
  window of the wrapped unit inside the allotted region.
* :class:`AndUnit` — AND (⊙) of branches over one shared region.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algebra.primitives import Location, Quantifier
from repro.engine import scoring
from repro.engine.trendline import Trendline

#: Relative tolerance (fraction of the trendline's y span) for matching
#: y.s / y.e location constraints.
Y_TOLERANCE = 0.1

#: Score assigned when a LOCATION constraint is not satisfied (paper §5.2).
INFEASIBLE = -1.0

#: Minimum number of bins a VisualSegment may span (a line needs 2 points).
MIN_SEGMENT_BINS = 2

#: Perceptual minimum width of a fuzzy VisualSegment, as a fraction of the
#: region being segmented.  The paper's GROUP operator bins at pixel
#: granularity (b = x range / pixels), which implicitly stops a "pattern"
#: from living inside a couple of samples; without such a floor,
#: z-normalized noise offers near-vertical 2-bin segments that score ±1
#: and let flat noise beat genuinely shaped trendlines (DESIGN.md §2).
MIN_SEGMENT_FRACTION = 0.1

#: Absolute cap on the proportional minimum (long trendlines may still
#: contain legitimately narrow phases, e.g. a supernova spike).
MIN_SEGMENT_CAP = 10


def run_min_length(lo: int, hi: int, units_count: int) -> int:
    """Minimum bins per unit when fuzzily segmenting ``[lo, hi)``."""
    proportional = int(round((hi - lo) * MIN_SEGMENT_FRACTION))
    length = max(MIN_SEGMENT_BINS, min(MIN_SEGMENT_CAP, proportional))
    fit = (hi - lo) // max(1, units_count)
    return max(MIN_SEGMENT_BINS, min(length, fit))

#: Context mapping a segment's AST index to its fitted slope (pass 2).
#: Solve-scoped auxiliary entries (e.g. the classified-runs memo below)
#: use non-integer keys so they can never collide with a segment index.
SlopeContext = Dict[int, float]

#: Context key under which QuantifierUnit memoizes classified runs.
RUNS_MEMO_KEY = "__runs_memo__"

#: Entry cap on the classified-runs memo.  A mid-chain quantifier is
#: scored at every (split, end) pair the DP visits — O(n²) distinct
#: ranges, each seen once — so an unbounded memo would grow quadratically
#: for near-zero hit rate.  The payoff ranges (final-pass re-scores,
#: shared units across chains, SegmentTree merges) are recent ones, so a
#: small FIFO-evicted dict keeps the wins with bounded memory.
RUNS_MEMO_CAP = 4096

#: The shared unconstrained LOCATION.  ``Location`` is a frozen
#: dataclass, so one instance serves every unit that has no location
#: constraint (and keeps function signatures free of call-in-default,
#: flake8-bugbear B008).
FREE_LOCATION = Location()


class CompiledUnit:
    """Base class; concrete units override :meth:`score` at minimum."""

    #: AST-wide ShapeSegment index (for POSITION references); −1 for AND.
    seg_index: int = -1
    #: Leaf-level OPPOSITE flag (normalization pushed `!` down to here).
    negated: bool = False
    #: Location constraints in raw domain coordinates.
    location: Location = FREE_LOCATION
    #: Whether score_ends/score_starts are true vectorized fast paths.
    vectorized: bool = False
    #: Whether the unit's score is a pure function of the fitted slope,
    #: so :meth:`score_matrix_from_slopes` can consume a slope matrix
    #: shared across DP layers (the matrix kernel computes each tile's
    #: slopes once and every slope-based layer reuses them).
    slope_based: bool = False
    #: Whether final scoring needs a second pass with fitted slopes.
    has_position: bool = False

    # -- pinning -----------------------------------------------------------
    def resolve_pins(self, trendline: Trendline) -> Tuple[Optional[int], Optional[int]]:
        """Map x.s/x.e constraints to (start bin, end bin) for this trendline.

        Either side may be None (fuzzy).  The end bin is exclusive.
        """
        loc = self.location
        start = end = None
        if loc.x_start is not None:
            start = trendline.x_to_bin(loc.x_start)
        if loc.x_end is not None:
            end = trendline.x_to_bin(loc.x_end) + 1
        return start, end

    # -- feasibility (y constraints) ----------------------------------------
    def _y_feasible(self, trendline: Trendline, l: int, r: int) -> bool:
        loc = self.location
        if loc.y_start is None and loc.y_end is None:
            return True
        span = float(trendline.y.max() - trendline.y.min()) or 1.0
        tolerance = Y_TOLERANCE * span
        if loc.y_start is not None and abs(trendline.bin_y[l] - loc.y_start) > tolerance:
            return False
        if loc.y_end is not None and abs(trendline.bin_y[r - 1] - loc.y_end) > tolerance:
            return False
        return True

    def _signed(self, value):
        return -value if self.negated else value

    # -- scoring -------------------------------------------------------------
    def score(
        self,
        trendline: Trendline,
        l: int,
        r: int,
        context: Optional[SlopeContext] = None,
    ) -> float:
        raise NotImplementedError

    def score_ends(
        self,
        trendline: Trendline,
        l: int,
        rs: np.ndarray,
        context: Optional[SlopeContext] = None,
    ) -> np.ndarray:
        """Scores of ``[l, r)`` for every ``r`` in ``rs`` (default: loop)."""
        return np.array([self.score(trendline, l, int(r), context) for r in rs])

    def score_starts(
        self,
        trendline: Trendline,
        ls: np.ndarray,
        r: int,
        context: Optional[SlopeContext] = None,
    ) -> np.ndarray:
        """Scores of ``[l, r)`` for every ``l`` in ``ls`` (default: loop)."""
        return np.array([self.score(trendline, int(l), r, context) for l in ls])

    def score_pairs(
        self,
        trendline: Trendline,
        starts: np.ndarray,
        ends: np.ndarray,
        context: Optional[SlopeContext] = None,
    ) -> np.ndarray:
        """Scores of the paired ranges ``[starts[i], ends[i])``.

        Batched leaf/bound evaluation (SegmentTree leaves score every
        unit over every leaf range in one call).  The default loops over
        :meth:`score`, so values always match the scalar path.
        """
        return np.array(
            [self.score(trendline, int(l), int(r), context) for l, r in zip(starts, ends)]
        )

    def score_matrix(
        self,
        trendline: Trendline,
        starts: np.ndarray,
        ends: np.ndarray,
        context: Optional[SlopeContext] = None,
    ) -> np.ndarray:
        """Unit score for every combination ``[starts[i], ends[j])``.

        This is the DP matrix kernel's workhorse: one (splits × ends)
        tile per call.  Vectorized units override it with a closed-form
        evaluation over :meth:`PrefixStats.slope_matrix`; the default is
        the batched fallback — one :meth:`score_ends` row per start — so
        non-vectorizable units (sketches, UDPs, nested queries) produce
        exactly the values the per-``r`` loop kernel would.
        """
        ends = np.asarray(ends)
        if len(starts) == 0 or len(ends) == 0:
            return np.zeros((len(starts), len(ends)))
        return np.stack(
            [self.score_ends(trendline, int(l), ends, context) for l in starts]
        )

    # -- pruning bounds (Table 7) ---------------------------------------------
    def window_bounds(
        self, trendline: Trendline, window: int
    ) -> Tuple[float, float]:
        """(lower, upper) bound on this unit's final score, from a grid of
        ``window``-bin segments (Theorem 6.4); conservative default."""
        return (-1.0, 1.0)


class SlopeUnit(CompiledUnit):
    """up / down / flat / θ / any / empty — pure functions of the fitted slope."""

    vectorized = True
    slope_based = True

    def __init__(
        self,
        kind: str,
        theta: Optional[float] = None,
        location: Location = FREE_LOCATION,
        negated: bool = False,
        seg_index: int = -1,
    ):
        self.kind = kind
        self.theta = theta
        self.location = location
        self.negated = negated
        self.seg_index = seg_index

    def __repr__(self):
        label = self.kind if self.theta is None else "θ={}".format(self.theta)
        return "SlopeUnit({}{})".format("!" if self.negated else "", label)

    def _from_slopes(self, slopes):
        return self._signed(scoring.pattern_score(self.kind, slopes, self.theta))

    def _scalar_from_slope(self, slope: float) -> float:
        """Pure-float scoring path (the SegmentTree's hot loop)."""
        kind = self.kind
        if kind == "up":
            value = 2.0 * math.atan(slope) / math.pi
        elif kind == "down":
            value = -2.0 * math.atan(slope) / math.pi
        elif kind == "flat":
            value = 1.0 - abs(4.0 * math.atan(slope) / math.pi)
        elif kind == "slope":
            target = math.radians(self.theta)
            deviation = abs(math.atan(slope) - target)
            value = 1.0 - 2.0 * deviation / (math.pi / 2.0 + abs(target))
        elif kind == "any":
            value = 1.0
        else:  # empty
            value = -1.0
        return -value if self.negated else value

    def score(self, trendline, l, r, context=None):
        return self.score_with_slope(trendline, l, r)

    def score_with_slope(self, trendline, l, r, slope=None):
        """Scalar score, optionally with an already-fitted ``slope``.

        The single copy of the scalar feasibility-then-score rule:
        :meth:`score` routes through it, and batched callers that fitted
        many slopes at once (the push-down eager bound) pass theirs in —
        so the two paths cannot drift apart.
        """
        if r - l < MIN_SEGMENT_BINS or not self._y_feasible(trendline, l, r):
            return INFEASIBLE
        if slope is None:
            slope = trendline.prefix.slope(l, r)
        return self._scalar_from_slope(slope)

    def score_ends(self, trendline, l, rs, context=None):
        rs = np.asarray(rs)
        slopes = trendline.prefix.slopes_for_ends(l, rs)
        values = self._from_slopes(slopes)
        values = np.where(rs - l < MIN_SEGMENT_BINS, INFEASIBLE, values)
        return self._apply_y_mask(trendline, np.full(len(rs), l), rs, values)

    def score_starts(self, trendline, ls, r, context=None):
        ls = np.asarray(ls)
        slopes = trendline.prefix.slopes_for_starts(ls, r)
        values = self._from_slopes(slopes)
        values = np.where(r - ls < MIN_SEGMENT_BINS, INFEASIBLE, values)
        return self._apply_y_mask(trendline, ls, np.full(len(ls), r), values)

    def score_pairs(self, trendline, starts, ends, context=None):
        starts = np.asarray(starts)
        ends = np.asarray(ends)
        slopes = trendline.prefix.slopes_pairs(starts, ends)
        values = self._from_slopes(slopes)
        values = np.where(ends - starts < MIN_SEGMENT_BINS, INFEASIBLE, values)
        return self._apply_y_mask(trendline, starts, ends, values)

    def score_matrix(self, trendline, starts, ends, context=None):
        starts = np.asarray(starts)
        ends = np.asarray(ends)
        return self.score_matrix_from_slopes(
            trendline, starts, ends, trendline.prefix.slope_matrix(starts, ends), context
        )

    def tile_transform(self, atans, memo=None):
        """Table 5 transform over shared ``tan⁻¹(slope)`` values, memoized.

        ``memo`` (one dict per DP tile) lets every slope-based layer of a
        chain share one transform per distinct ``(kind, θ)``: ``down`` is
        folded onto ``up`` (its exact negation — unary minus flips only
        the sign bit, so the fold is bitwise), and OPPOSITE flips once
        more.  Memoized arrays are never mutated: every consumer masks
        via ``np.where``/fresh allocations, so sharing is safe.  The
        transform is elementwise, so callers slice the result to their
        layer's feasible subrectangle and get the exact bits the
        per-layer path would have produced.
        """
        kind, flip = self.kind, self.negated
        if kind == "down":  # down ≡ −up, bit for bit
            kind, flip = "up", not flip
        key = (kind, self.theta)
        base = memo.get(key) if memo is not None else None
        if base is None:
            base = scoring.pattern_score_from_atan(kind, atans, self.theta)
            if memo is not None:
                memo[key] = base
        return -base if flip else base

    def score_matrix_from_values(self, trendline, starts, ends, values):
        """Mask an already-transformed score matrix (width + y feasibility).

        The tail of :meth:`score_matrix_from_slopes` split out so the
        matrix DP kernel can feed it a slice of a tile-shared
        :meth:`tile_transform`; ``values`` is never written (``np.where``
        allocates), so shared transforms stay intact.
        """
        starts = np.asarray(starts)
        ends = np.asarray(ends)
        lengths = ends[None, :] - starts[:, None]
        values = np.where(lengths < MIN_SEGMENT_BINS, INFEASIBLE, values)
        return self._apply_y_mask(trendline, starts[:, None], ends[None, :], values)

    def score_matrix_from_slopes(self, trendline, starts, ends, slopes, context=None):
        """Score a precomputed ``starts × ends`` slope matrix.

        The matrix DP kernel computes one slope matrix per tile and
        shares it across every slope-based layer; this applies the
        unit's Table 5 transform plus the width/y feasibility masks —
        the exact operations :meth:`score_matrix` performs after its own
        slope computation, so shared and private paths agree bit for bit.
        (The tile-shared arctan path — see
        :data:`repro.engine.dynamic.SHARE_ATAN` — instead feeds
        :meth:`tile_transform` output into
        :meth:`score_matrix_from_values`.)
        """
        return self.score_matrix_from_values(
            trendline, starts, ends, self._from_slopes(slopes)
        )

    def _apply_y_mask(self, trendline, ls, rs, values):
        """Mask y.s/y.e-infeasible ranges to INFEASIBLE.

        ``ls``/``rs`` may be any shapes that broadcast to ``values`` —
        paired vectors (row/column/pairs paths) or a column/row pair
        (the matrix path) — so every vectorized entry point shares this
        one copy of the tolerance rule.
        """
        loc = self.location
        if loc.y_start is None and loc.y_end is None:
            return values
        span = float(trendline.y.max() - trendline.y.min()) or 1.0
        tolerance = Y_TOLERANCE * span
        feasible = np.ones(values.shape, dtype=bool)
        if loc.y_start is not None:
            feasible = feasible & (np.abs(trendline.bin_y[ls] - loc.y_start) <= tolerance)
        if loc.y_end is not None:
            feasible = feasible & (np.abs(trendline.bin_y[rs - 1] - loc.y_end) <= tolerance)
        return np.where(feasible, values, INFEASIBLE)

    #: Safety margin added to Table 7 bounds.  The paper's triangle-law
    #: argument is exact for chord (endpoint) slopes; a *regression* slope
    #: of a union can exceed the per-node extremes slightly when node
    #: means disagree (two flat nodes at different levels fit a sloped
    #: line), so the bounds are widened before being used for pruning.
    BOUNDS_MARGIN = 0.05

    def bounds_from_slopes(self, slopes: np.ndarray) -> Tuple[float, float]:
        """Table 7 score bounds given the fitted slopes of a level's nodes.

        The unit's final segment is a contiguous union of those nodes, so
        its fitted slope is (approximately) a convex combination of
        theirs; for up/down the score is monotone in the slope, and for
        flat/θ=x the score can additionally peak at 1 when the node
        slopes straddle the target (Theorem 6.4).
        """
        if self.kind in ("any", "empty"):
            value = 1.0 if self.kind == "any" else -1.0
            value = -value if self.negated else value
            return (value, value)
        scores = self._from_slopes(slopes)
        lower, upper = float(scores.min()), float(scores.max())
        target = 0.0 if self.kind == "flat" else (
            math.tan(math.radians(self.theta)) if self.kind == "slope" else None
        )
        if target is not None and float(slopes.min()) < target < float(slopes.max()):
            if self.negated:
                lower = -1.0
            else:
                upper = 1.0
        if self.location.y_start is not None or self.location.y_end is not None:
            lower = -1.0
        lower = max(-1.0, lower - self.BOUNDS_MARGIN)
        upper = min(1.0, upper + self.BOUNDS_MARGIN)
        return (lower, upper)

    def window_bounds(self, trendline, window):
        n = trendline.n_bins
        if n < MIN_SEGMENT_BINS:
            return (-1.0, 1.0)
        starts = np.arange(0, max(1, n - MIN_SEGMENT_BINS + 1), window)
        ends = np.minimum(np.maximum(starts + window, starts + MIN_SEGMENT_BINS), n)
        valid = ends - starts >= MIN_SEGMENT_BINS
        if not valid.any():
            return (-1.0, 1.0)
        slopes = trendline.prefix.slopes_pairs(starts[valid], ends[valid])
        return self.bounds_from_slopes(np.asarray(slopes))


class LineUnit(CompiledUnit):
    """A bare-location segment: match the straight line (y.s → y.e) (§3.1).

    Scoring is closed-form over the trendline's line-fit prefix sums
    (:meth:`Trendline.line_prefix`): with the reference line
    ``ref_i = a + b·i`` over the ``m`` bins of ``[l, r)``, the RMSE
    against the normalized bin values decomposes into
    ``Σy² − 2(aΣy + bΣi·y) + Σref²`` — all range sums — so the same
    O(1)-per-range expression serves the scalar path and the DP matrix
    kernel, and both produce bit-identical values.
    """

    vectorized = True

    def __init__(self, location: Location, negated: bool = False, seg_index: int = -1):
        self.location = location
        self.negated = negated
        self.seg_index = seg_index

    def __repr__(self):
        return "LineUnit(y {}→{})".format(self.location.y_start, self.location.y_end)

    def _line_values(self, trendline, ls, rs):
        """Signed line-match scores of ``[ls, rs)`` (broadcastable arrays).

        Ranges narrower than :data:`MIN_SEGMENT_BINS` come out INFEASIBLE;
        every operation is elementwise, so any combination of scalar,
        paired and cross-product shapes yields the same per-range bits.
        """
        ls = np.asarray(ls)
        rs = np.asarray(rs)
        sum_y, sum_yy, sum_iy = trendline.line_prefix()
        widths = rs - ls
        # Masked-out (too narrow / inverted) ranges still flow through the
        # arithmetic: substitute a safe width so no division blows up.
        count = np.maximum(widths, MIN_SEGMENT_BINS).astype(float)
        loc = self.location
        if loc.y_start is not None:
            nys = trendline.normalize_y_value(loc.y_start)
        else:
            nys = trendline.norm_bin_y[ls]
        if loc.y_end is not None:
            nye = trendline.normalize_y_value(loc.y_end)
        else:
            nye = trendline.norm_bin_y[rs - 1]
        slope = (nye - nys) / (count - 1.0)
        sum_i = (count - 1.0) * count / 2.0
        sum_ii = (count - 1.0) * count * (2.0 * count - 1.0) / 6.0
        seg_y = sum_y[rs] - sum_y[ls]
        seg_yy = sum_yy[rs] - sum_yy[ls]
        seg_iy = (sum_iy[rs] - sum_iy[ls]) - ls * seg_y
        sum_ref2 = nys * nys * count + 2.0 * nys * slope * sum_i + slope * slope * sum_ii
        sum_cross = nys * seg_y + slope * seg_iy
        mse = (seg_yy - 2.0 * sum_cross + sum_ref2) / count
        rmse = np.sqrt(np.maximum(mse, 0.0))
        value = (
            1.0
            - 2.0 * np.minimum(rmse, scoring.SKETCH_RMSE_CAP) / scoring.SKETCH_RMSE_CAP
        )
        return np.where(widths < MIN_SEGMENT_BINS, INFEASIBLE, self._signed(value))

    def score(self, trendline, l, r, context=None):
        if r - l < MIN_SEGMENT_BINS:
            return INFEASIBLE
        return float(self._line_values(trendline, np.intp(l), np.intp(r)))

    def score_ends(self, trendline, l, rs, context=None):
        rs = np.asarray(rs)
        return self._line_values(trendline, np.full(len(rs), l, dtype=np.intp), rs)

    def score_starts(self, trendline, ls, r, context=None):
        ls = np.asarray(ls)
        return self._line_values(trendline, ls, np.full(len(ls), r, dtype=np.intp))

    def score_pairs(self, trendline, starts, ends, context=None):
        return self._line_values(trendline, np.asarray(starts), np.asarray(ends))

    def score_matrix(self, trendline, starts, ends, context=None):
        return self._line_values(
            trendline, np.asarray(starts)[:, None], np.asarray(ends)[None, :]
        )


class QuantifierUnit(CompiledUnit):
    """A pattern with an occurrence quantifier (``m={low,high}``, §5.2)."""

    def __init__(
        self,
        kind: str,
        quantifier: Quantifier,
        theta: Optional[float] = None,
        udp_name: Optional[str] = None,
        location: Location = FREE_LOCATION,
        negated: bool = False,
        seg_index: int = -1,
        positive_threshold: Optional[float] = None,
    ):
        self.kind = kind
        self.theta = theta
        self.udp_name = udp_name
        self.quantifier = quantifier
        self.location = location
        self.negated = negated
        self.seg_index = seg_index
        #: Occurrence floor override (None = the module default, 0.3);
        #: set at compile time from the engine's quantifier_threshold so
        #: it travels with the compiled query into process workers.
        self.positive_threshold = positive_threshold

    def __repr__(self):
        return "QuantifierUnit({} x{})".format(self.udp_name or self.kind, self.quantifier)

    @staticmethod
    def _classified_runs(trendline, l, r, min_points, context):
        """Segment runs, memoized per trendline in the solve context.

        Run classification is a pure function of ``(trendline, l, r,
        min_points)`` but is recomputed for every candidate segment the
        DP/SegmentTree visits; the solve context carries one memo dict
        (created by :func:`repro.engine.dynamic.solve_query`) keyed on
        trendline identity plus the range, so re-scored ranges — final
        passes, shared units across alternative chains, SegmentTree
        merges — pay the run scan once.
        """
        if not isinstance(context, dict):
            return scoring.classified_runs(
                trendline.norm_bin_y[l:r], min_points=min_points
            )
        memo = context.get(RUNS_MEMO_KEY)
        if memo is None:
            memo = context[RUNS_MEMO_KEY] = {}
        key = (id(trendline), l, r, min_points)
        runs = memo.get(key)
        if runs is None:
            runs = scoring.classified_runs(
                trendline.norm_bin_y[l:r], min_points=min_points
            )
            if len(memo) >= RUNS_MEMO_CAP:
                memo.pop(next(iter(memo)))
            memo[key] = runs
        return runs

    def _wanted_class(self):
        """Run direction that counts as an occurrence; None = any run."""
        if self.kind == "up":
            return 1
        if self.kind == "down":
            return -1
        if self.kind == "flat":
            return 0
        if self.kind == "slope":
            if self.theta > 0:
                return 1
            if self.theta < 0:
                return -1
            return 0
        return None  # udp: every run is a candidate

    def score(self, trendline, l, r, context=None):
        if r - l < MIN_SEGMENT_BINS or not self._y_feasible(trendline, l, r):
            return INFEASIBLE
        values = trendline.norm_bin_y[l:r]
        min_points = max(2, (r - l) // 20)
        runs = self._classified_runs(trendline, l, r, min_points, context)
        wanted = self._wanted_class()
        run_scores = []
        for a, b, cls in runs:
            if wanted is not None and cls != wanted:
                continue
            slope = trendline.prefix.slope(l + a, l + b)
            if self.udp_name is not None:
                function = scoring.get_udp(self.udp_name)
                run_scores.append(float(function(values[a:b], slope)))
            else:
                run_scores.append(float(scoring.pattern_score(self.kind, slope, self.theta)))
        threshold = self.positive_threshold
        if threshold is None:
            threshold = scoring.QUANTIFIER_POSITIVE_THRESHOLD
        return self._signed(
            scoring.quantifier_score(
                self.quantifier, run_scores, positive_threshold=threshold
            )
        )


class PositionUnit(CompiledUnit):
    """``p=$i`` — compare this segment's slope to segment i's (two-pass)."""

    has_position = True

    def __init__(
        self,
        reference_index: int,
        comparison: Optional[str],
        factor: Optional[float] = None,
        location: Location = FREE_LOCATION,
        negated: bool = False,
        seg_index: int = -1,
    ):
        self.reference_index = reference_index
        self.comparison = comparison
        self.factor = factor
        self.location = location
        self.negated = negated
        self.seg_index = seg_index

    def __repr__(self):
        return "PositionUnit(${} {})".format(self.reference_index, self.comparison or "=")

    def score(self, trendline, l, r, context=None):
        if r - l < MIN_SEGMENT_BINS or not self._y_feasible(trendline, l, r):
            return INFEASIBLE
        if context is None or self.reference_index not in context:
            # Pass 1: the reference is not yet placed; stay neutral so the
            # surrounding units drive the segmentation (DESIGN.md §2.7).
            return 0.0
        slope = trendline.prefix.slope(l, r)
        value = scoring.position_score(
            slope, context[self.reference_index], self.comparison, self.factor
        )
        return self._signed(value)


class SketchUnit(CompiledUnit):
    """``v=(x:y,...)`` — precise matching against a drawn polyline."""

    def __init__(self, sketch, location: Location = FREE_LOCATION, negated: bool = False, seg_index: int = -1):
        self.sketch = sketch
        self.location = location
        self.negated = negated
        self.seg_index = seg_index

    def __repr__(self):
        return "SketchUnit({} pts)".format(len(self.sketch))

    def score(self, trendline, l, r, context=None):
        if r - l < MIN_SEGMENT_BINS or not self._y_feasible(trendline, l, r):
            return INFEASIBLE
        return self._signed(
            scoring.sketch_score(trendline.segment_values(l, r), np.asarray(self.sketch.ys()))
        )


class UdpUnit(CompiledUnit):
    """``p=udp:name`` — a registered user-defined pattern (black box)."""

    def __init__(self, name: str, location: Location = FREE_LOCATION, negated: bool = False, seg_index: int = -1):
        self.name = name
        self.location = location
        self.negated = negated
        self.seg_index = seg_index

    def __repr__(self):
        return "UdpUnit({})".format(self.name)

    def score(self, trendline, l, r, context=None):
        if r - l < MIN_SEGMENT_BINS or not self._y_feasible(trendline, l, r):
            return INFEASIBLE
        function = scoring.get_udp(self.name)
        value = float(
            function(trendline.segment_values(l, r), trendline.prefix.slope(l, r))
        )
        return self._signed(float(np.clip(value, -1.0, 1.0)))


class NestedUnit(CompiledUnit):
    """``p=[...]`` — a full sub-query matched within the allotted region."""

    def __init__(self, compiled_query, location: Location = FREE_LOCATION, negated: bool = False, seg_index: int = -1):
        self.compiled_query = compiled_query
        self.location = location
        self.negated = negated
        self.seg_index = seg_index

    def __repr__(self):
        return "NestedUnit({} chains)".format(len(self.compiled_query.chains))

    def score(self, trendline, l, r, context=None):
        if r - l < MIN_SEGMENT_BINS or not self._y_feasible(trendline, l, r):
            return INFEASIBLE
        from repro.engine.dynamic import KERNEL_KEY, solve_query_over_range

        # Forward only the solve-scoped auxiliaries: the nested query has
        # its own segment-index space, so the outer slope context must
        # not leak in, but the kernel choice and the per-trendline runs
        # memo are index-free and should survive the boundary.
        inner_context = {}
        if isinstance(context, dict):
            for key in (KERNEL_KEY, RUNS_MEMO_KEY):
                if key in context:
                    inner_context[key] = context[key]
        result = solve_query_over_range(
            trendline, self.compiled_query, l, r, context=inner_context
        )
        return self._signed(result.score)


class WindowUnit(CompiledUnit):
    """ITERATOR: best fixed-width window of the wrapped unit (``x.e=.+w``)."""

    def __init__(self, base: CompiledUnit, width: float, location: Location = FREE_LOCATION):
        self.base = base
        self.width = width
        self.location = location
        self.seg_index = base.seg_index
        self.negated = False  # negation lives on the base unit
        self.has_position = base.has_position

    def __repr__(self):
        return "WindowUnit({!r}, w={})".format(self.base, self.width)

    def window_bins(self, trendline: Trendline) -> int:
        """Window width converted from raw x units to a bin count."""
        spacing = float(np.mean(np.diff(trendline.bin_x))) or 1.0
        return max(MIN_SEGMENT_BINS, int(round(self.width / spacing)))

    def score(self, trendline, l, r, context=None):
        w = self.window_bins(trendline)
        if r - l < w:
            return INFEASIBLE
        starts = np.arange(l, r - w + 1)
        values = self.base.score_pairs(trendline, starts, starts + w, context)
        return float(values.max())


class AndUnit(CompiledUnit):
    """AND (⊙): every branch must match the same region; score = min.

    Each branch is a list of alternative chains (OR inside AND); a branch
    containing CONCAT is fitted to cover exactly ``[l, r)`` with an
    exact-cover DP.
    """

    def __init__(self, branches: List[List["Chain"]], location: Location = FREE_LOCATION):
        self.branches = branches
        self.location = location

    def __repr__(self):
        return "AndUnit({} branches)".format(len(self.branches))

    @property
    def has_position(self):
        return any(
            unit.unit.has_position
            for branch in self.branches
            for chain in branch
            for unit in chain.units
        )

    def score(self, trendline, l, r, context=None):
        if r - l < MIN_SEGMENT_BINS:
            return INFEASIBLE
        from repro.engine.dynamic import solve_chain_exact_cover

        branch_scores = []
        for branch in self.branches:
            best = INFEASIBLE
            for chain in branch:
                if len(chain.units) == 1:
                    value = chain.units[0].unit.score(trendline, l, r, context)
                else:
                    value = solve_chain_exact_cover(trendline, chain, l, r, context).score
                best = max(best, value)
            branch_scores.append(best)
        return scoring.and_scores(branch_scores)
