"""The SEGMENT + SCORE stages and the top-k driver (paper §5, Problem 1).

:class:`ShapeSearchEngine` holds the session-scoped machinery — compiled
plans, caches, worker pools, shared-memory sessions — and delegates each
execution to the staged physical-operator pipeline of
:mod:`repro.engine.pipeline`: :func:`~repro.engine.pipeline.plan_pipeline`
compiles the query + table into a ``ScanTable → Extract/Group → Score →
MergeTopK`` operator chain (picking sequential or parallel
implementations per stage), and the engine runs it.  Algorithms:

* ``"dp"`` — optimal dynamic programming, O(n²k) (§6.1), driven by the
  tiled matrix kernel by default (``kernel="matrix"``; ``"loop"`` keeps
  the byte-identical reference kernel for benchmarking);
* ``"segment-tree"`` — pattern-aware, O(nk⁴) (§6.2), the default;
* ``"greedy"`` — local-search baseline (§9);
* ``"exhaustive"`` — the brute-force oracle (tests/small data only).

Scaling knobs (beyond the paper): ``workers=`` shards candidates across
a :class:`~repro.engine.parallel.WorkerPool` and merges per-shard top-k
heaps; ``cache=`` plugs in an :class:`~repro.engine.cache.EngineCache`
so repeated interactive queries skip EXTRACT/GROUP and query compilation
entirely; ``generation=`` picks where EXTRACT/GROUP runs — parent-side,
or inside the workers against the shared table so generation
parallelizes with scoring.  Every configuration uses the total order
*(score desc, candidate position asc)*, so results are identical for any
worker count, backend, transport and generation mode.

The serving-era entry points are :meth:`ShapeSearchEngine.run` /
:meth:`run_many` (blocking, returning
:class:`~repro.results.ResultSet`) and :meth:`submit` /
:meth:`submit_many` (non-blocking, returning
:class:`~repro.results.SearchFuture` handles driven by a small
dispatcher thread pool, with cooperative cancellation and per-shard
progress).  ``execute``/``execute_many`` remain as deprecated shims.
"""

from __future__ import annotations

import os
import threading
import warnings
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.algebra.nodes import Node
from repro.data.table import Table, attached_state
from repro.data.visual_params import VisualParams
from repro.engine.cache import (
    EngineCache,
    canonical_query_text,
    coerce_cache,
    plan_fingerprint,
    table_fingerprint,
    trendline_cache_key,
)
from repro.engine.chains import CompiledQuery, compile_query
from repro.engine.control import ExecutionControl
from repro.engine.dynamic import QueryResult
from repro.engine.pipeline import generate_trendlines
from repro.engine.pruning import PruningReport
from repro.engine.trendline import Trendline
from repro.errors import ExecutionError, SearchCancelled, warn_deprecated
from repro.results import ResultSet, SearchFuture

#: Supported segmentation algorithms (dispatch lives in
#: :data:`repro.engine.parallel.RUN_SOLVERS`, the single table shared by
#: the sequential, sharded and score_one paths).
ALGORITHMS = ("dp", "segment-tree", "greedy", "exhaustive")

#: Supported EXTRACT/GROUP placements (see the ``generation`` option).
GENERATION_MODES = ("auto", "parent", "worker")

#: Supported scoring precisions (see the ``precision`` option).
PRECISIONS = ("float64", "float32")

#: Engine-local shape-index memo size (rank paths, keyed by collection
#: identity; the table-attached store covers the execute paths).
_MAX_ENGINE_INDEXES = 8

#: Artifact stores already warned about (abspath -> True): an unwritable
#: store means every fresh process silently repays the index build, so
#: the first failed save warns loudly — once, not per query.
_WARNED_STORES: dict = {}


def _warn_unwritable_store(store: str, exc: OSError) -> None:
    resolved = os.path.abspath(store)
    if resolved in _WARNED_STORES:
        return
    _WARNED_STORES[resolved] = True
    warnings.warn(
        "artifact store {!r} is not writable ({}); shape indexes will be "
        "rebuilt on every process start until the store is fixed "
        "(ExecutionStats.index_reason == 'store-unwritable')".format(store, exc),
        RuntimeWarning,
        stacklevel=3,
    )

#: Driver threads behind the non-blocking submit paths.  Each driver runs
#: one pipeline execution end to end; shard work still fans out on the
#: engine's worker pools, so two drivers already overlap submissions.
_DISPATCH_THREADS = 2


@dataclass
class Match:
    """One ranked visualization: who, how well, and where each pattern fit."""

    key: object
    score: float
    result: QueryResult
    trendline: Trendline

    @property
    def placements(self):
        """Per-unit (segment index, start bin, end bin, score, slope)."""
        return self.result.solution.placements

    def __repr__(self):
        return "Match({!r}, score={:.3f})".format(self.key, self.score)


@dataclass
class ExecutionStats:
    """What the engine did for one query (inspected by benchmarks).

    Stats are built per call and returned by
    :meth:`ShapeSearchEngine.rank_with_stats`; the engine's
    ``last_stats`` attribute only ever holds a *completed* snapshot, so
    concurrent calls on one engine never observe each other's counters.
    """

    candidates: int = 0
    extracted: int = 0
    eager_discarded: int = 0
    scored: int = 0
    shards: int = 0
    trendline_cache_hit: bool = False
    plan_cache_hit: bool = False
    #: Which Extract/Group implementation ran: ``"parent"`` (materialized
    #: in the calling process), ``"worker"`` (generated inside the
    #: workers from the shared table), or ``"tail"`` (a streaming
    #: refresh that re-scored only the groups an append touched).
    generation: str = "parent"
    pruning: Optional[PruningReport] = None
    #: Rows the streaming tail consumed in this refresh (0 elsewhere):
    #: the delta the incremental work was proportional to.
    appended_rows: int = 0
    #: Candidates the IndexPrune stage saw / discarded against the top-k
    #: floor (both 0 when the stage did not run — index disabled, query
    #: unbounded, or the collection below the seed threshold).
    index_candidates: int = 0
    index_pruned: int = 0
    #: Where IndexPrune's index came from: ``"memory"`` (table-attached
    #: or cache hit), ``"disk"`` (memory-mapped artifact store), or
    #: ``"built"`` (fresh build / lineage extension); None when the
    #: stage did not bound anything this call.
    index_source: Optional[str] = None
    #: How the bound pass ran: ``"dispatched"`` (sharded to pool workers
    #: over the published index) or ``"inline"``; None when the stage
    #: did not bound anything this call.
    index_bounds: Optional[str] = None
    #: Why the index had to be built when ``index_source == "built"``:
    #: ``"no-store"`` (no artifact store configured), ``"store-miss"``
    #: (store configured but held no usable artifact for this key —
    #: first run, stale fingerprint, or corrupt/unreadable entry),
    #: ``"store-unwritable"`` (built *and* the save back to the store
    #: failed, so the next process will rebuild again; also warned once
    #: per store), or ``"rank-path"`` (caller-held collection, no table
    #: to key a persistent artifact on).  None when the index came from
    #: memory or disk.
    index_reason: Optional[str] = None


class ShapeSearchEngine:
    """Back-end execution engine: Problem 1's ``top-k argmax SF(Q, Vi)``."""

    def __init__(
        self,
        algorithm: str = "segment-tree",
        enable_pushdown: bool = True,
        enable_pruning: bool = False,
        sample_size: int = 20,
        sample_points: int = 64,
        workers: int = 1,
        backend: str = "thread",
        chunk_size: Optional[int] = None,
        cache=None,
        shm: bool = True,
        quantifier_threshold: Optional[float] = None,
        kernel: str = "matrix",
        generation: str = "auto",
        index: bool = False,
        precision: str = "float64",
        store: Optional[str] = None,
        index_dispatch_min: Optional[int] = None,
    ):
        if algorithm not in ALGORITHMS:
            raise ExecutionError(
                "unknown algorithm {!r}; choose from {}".format(algorithm, ALGORITHMS)
            )
        from repro.engine.dynamic import KERNELS

        if kernel not in KERNELS:
            raise ExecutionError(
                "unknown kernel {!r}; choose from {}".format(kernel, KERNELS)
            )
        if precision not in PRECISIONS:
            raise ExecutionError(
                "unknown precision {!r}; choose from {}".format(precision, PRECISIONS)
            )
        if precision == "float32" and kernel == "loop":
            raise ExecutionError(
                "precision='float32' cannot be combined with kernel='loop': the "
                "loop kernel is the byte-identity oracle and float32 scoring is "
                "approximate by construction; use kernel='matrix' or keep "
                "precision='float64'"
            )
        self.algorithm = algorithm
        #: DP transition kernel for ``algorithm="dp"``: ``"matrix"`` (the
        #: tiled matrix kernel, default) or ``"loop"`` (the retained
        #: per-end-bin reference kernel).  Byte-identical results either
        #: way — the loop kernel exists as the oracle and for
        #: benchmarking the matrix kernel against.
        self.kernel = kernel
        self.enable_pushdown = enable_pushdown
        self.enable_pruning = enable_pruning
        self.sample_size = sample_size
        self.sample_points = sample_points
        self.workers = self._check_workers(workers)
        self.backend = backend
        self.chunk_size = chunk_size
        #: Use the shared-memory transport for the process backend: the
        #: candidate collection and compiled query are published once per
        #: session and shards travel as index ranges (repro.engine.shm).
        #: ``shm=False`` keeps the object-pickling transport (benchmarks
        #: compare the two; results are byte-identical either way).
        self.shm = bool(shm)
        #: Minimum per-run pattern score for a quantifier occurrence
        #: (paper §5.2: the zero default "can be overridden by users");
        #: None keeps scoring.QUANTIFIER_POSITIVE_THRESHOLD (0.3).
        self.quantifier_threshold = quantifier_threshold
        if generation not in GENERATION_MODES:
            raise ExecutionError(
                "unknown generation mode {!r}; choose from {}".format(
                    generation, GENERATION_MODES
                )
            )
        #: Where EXTRACT/GROUP runs: ``"parent"`` materializes the
        #: collection in this process, ``"worker"`` generates inside the
        #: pool workers from the (shared) table so generation
        #: parallelizes with scoring, ``"auto"`` picks worker-side on
        #: the *cacheless* process backend (a configured cache marks an
        #: interactive session, where one parent-side pass feeds every
        #: repeat from memory).  Results are byte-identical either way;
        #: the planner falls back to parent-side when the configuration
        #: cannot support worker-side generation (workers=1, process
        #: backend without shm, pruning).
        self.generation = generation
        #: Opt-in shape index (engine/shape_index.py): prune candidates
        #: against the running top-k floor before the DP runs.  Exact —
        #: results stay byte-identical to ``index=False`` on every
        #: backend × kernel × worker count; queries the index cannot
        #: bound fall back to the full scan (no IndexPrune plan stage).
        self.index = bool(index)
        #: Scoring dtype: ``"float64"`` (exact, the default) or the
        #: opt-in approximate ``"float32"`` throughput mode (see
        #: :class:`~repro.engine.pipeline.PrecisionCast`).
        self.precision = precision
        #: Artifact store directory (repro.engine.artifacts): shape
        #: indexes persist here in the packed memmap form and survive
        #: process restarts.  Defaults to ``REPRO_ARTIFACT_DIR`` when
        #: set; None disables the disk tier.
        if store is None:
            store = os.environ.get("REPRO_ARTIFACT_DIR") or None
        self.store: Optional[str] = str(store) if store else None
        #: Candidate count at which the IndexPrune bound pass ships to
        #: pool workers instead of running inline (pipeline.
        #: INDEX_DISPATCH_MIN default, ``REPRO_INDEX_DISPATCH_MIN`` env
        #: override, explicit argument wins) — resolved once here so
        #: every stage of a session sees one gate.
        if index_dispatch_min is None:
            from repro.engine.pipeline import INDEX_DISPATCH_MIN

            configured = os.environ.get("REPRO_INDEX_DISPATCH_MIN", "")
            try:
                index_dispatch_min = (
                    int(configured) if configured else INDEX_DISPATCH_MIN
                )
            except ValueError:
                raise ExecutionError(
                    "REPRO_INDEX_DISPATCH_MIN must be an integer, got {!r}".format(
                        configured
                    )
                )
        self.index_dispatch_min = max(0, int(index_dispatch_min))
        self.cache: Optional[EngineCache] = coerce_cache(cache)
        self.last_stats = ExecutionStats()
        #: Rank-path shape indexes: id(collection) -> (id witness,
        #: collection ref, ShapeIndex).  The collection is held strongly
        #: so ids cannot recycle under a live entry.
        self._indexes: "OrderedDict[int, tuple]" = OrderedDict()
        self._pools: dict = {}
        self._pool_lock = threading.Lock()
        #: One-slot box so the lazily created ShmSession is reachable from
        #: close() and the finalizer without either referencing ``self``.
        self._shm_box: list = [None]
        #: Same one-slot-box pattern for the lazily created dispatcher
        #: thread pool that drives the non-blocking submit paths.
        self._dispatch_box: list = [None]
        if self.cache is not None:
            from repro.engine.shm import release_evicted

            self.cache.trendlines.add_evict_listener(release_evicted)
        #: Safety net: releases pools and shared memory when the engine is
        #: garbage-collected or the interpreter exits without close().
        self._finalizer = weakref.finalize(
            self, _release_engine_resources, self._pools, self._pool_lock,
            self._shm_box, self._dispatch_box,
        )
        if backend not in ("thread", "process"):
            raise ExecutionError(
                "unknown backend {!r}; choose from ('thread', 'process')".format(backend)
            )

    @staticmethod
    def _check_workers(workers) -> int:
        if workers is None:
            from repro.engine.parallel import default_workers

            return default_workers()
        workers = int(workers)
        if workers < 1:
            raise ExecutionError("workers must be >= 1, got {}".format(workers))
        return workers

    # -- worker pool -------------------------------------------------------
    def _resolve_pool(self, workers: Optional[int]):
        """A persistent pool for the requested worker count.

        Pools are memoized per count so repeated per-call ``workers=``
        overrides (interactive sessions flipping between sequential and
        parallel) reuse warm pools instead of spawning and tearing one
        down per query — which for the process backend would dominate
        interactive latency.
        """
        from repro.engine.parallel import WorkerPool

        count = self.workers if workers is None else self._check_workers(workers)
        with self._pool_lock:
            pool = self._pools.get(count)
            if pool is None:
                initializer = None
                if self.backend == "process" and self.shm:
                    from repro.engine.shm import worker_init

                    initializer = worker_init
                pool = WorkerPool(count, self.backend, initializer=initializer)
                self._pools[count] = pool
            return pool

    def _shm_session(self):
        """The session-scoped shared-memory registry (created on first use)."""
        from repro.engine.shm import ShmSession

        with self._pool_lock:
            if self._shm_box[0] is None or self._shm_box[0].closed:
                self._shm_box[0] = ShmSession()
            return self._shm_box[0]

    def _dispatcher(self):
        """The driver thread pool behind :meth:`submit` (created lazily).

        Drivers run whole pipeline executions; the *shard* work they
        dispatch still lands on the engine's regular worker pools, so a
        couple of driver threads are plenty — extra submissions queue
        and overlap at the shard level, not the driver level.
        """
        from concurrent.futures import ThreadPoolExecutor

        with self._pool_lock:
            if self._dispatch_box[0] is None:
                self._dispatch_box[0] = ThreadPoolExecutor(
                    max_workers=_DISPATCH_THREADS,
                    thread_name_prefix="shapesearch-dispatch",
                )
            return self._dispatch_box[0]

    def close(self) -> None:
        """Release dispatcher threads, worker pools and shm segments.

        Waits for in-flight submitted searches (queued, not-yet-started
        ones are resolved as cancelled).  Idempotent, and also runs via
        ``weakref.finalize``/``atexit`` when an engine is dropped or the
        interpreter exits without an explicit close — pools and shm
        segments never outlive their owner.
        """
        _release_engine_resources(
            self._pools, self._pool_lock, self._shm_box, self._dispatch_box
        )

    def __enter__(self) -> "ShapeSearchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- full pipeline (the serving-era core API) ---------------------------
    def run(
        self,
        table: Table,
        params: VisualParams,
        query: Union[Node, CompiledQuery],
        k: int = 10,
        workers: Optional[int] = None,
        control: Optional[ExecutionControl] = None,
        memo: Optional[dict] = None,
    ) -> ResultSet:
        """EXTRACT → GROUP → SEGMENT → SCORE → top-k, as a :class:`ResultSet`.

        The blocking core of every execute path: compiles the query
        (through the plan cache), plans the staged operator pipeline and
        runs it.  Returns a :class:`~repro.results.ResultSet` carrying
        this call's private stats and the rendered physical plan — the
        engine's ``last_stats`` is *not* touched, so concurrent calls on
        one engine never observe each other.  ``control`` threads the
        cancellation/progress hooks of the submit paths through the
        pipeline; ``memo`` is the batch generation memo shared across a
        :meth:`run_many` call.
        """
        stats = ExecutionStats()
        compiled = self._compile(query, stats)
        matches, plan = self._run_pipeline(
            compiled, k, stats, table=table, params=params, workers=workers,
            memo=memo, control=control,
        )
        return ResultSet(matches, stats=stats, plan=plan)

    def run_many(
        self,
        table: Table,
        params: VisualParams,
        queries: Sequence[Union[Node, CompiledQuery]],
        k: int = 10,
        workers: Optional[int] = None,
    ) -> List[ResultSet]:
        """Batch execution: amortize compilation and EXTRACT/GROUP.

        Every query is compiled up front (through the plan cache), so an
        invalid query anywhere in the batch rejects it *before* any
        scoring work runs.  Parent-side trendline generation then runs
        once per distinct ``(normalize_y, push-down effect)``
        combination — for the common all-fuzzy batch that is a single
        EXTRACT/GROUP pass shared by every query (a query that reused
        the batch's earlier generation work reports
        ``trendline_cache_hit=True`` in its ResultSet's stats).
        Worker-side generation amortizes through the worker-resident
        range caches instead — the table is published and its group
        count established once for the whole batch.
        """
        compiled_list = [self._compile(query) for query in queries]
        memo: dict = {}
        return [
            self.run(table, params, compiled, k=k, workers=workers, memo=memo)
            for compiled in compiled_list
        ]

    # -- non-blocking submission -------------------------------------------
    def submit(
        self,
        table: Table,
        params: VisualParams,
        query: Union[Node, CompiledQuery],
        k: int = 10,
        workers: Optional[int] = None,
        progress=None,
    ) -> SearchFuture:
        """Dispatch one execution without blocking the caller.

        The returned :class:`~repro.results.SearchFuture` resolves to
        the same :class:`ResultSet` a :meth:`run` call would produce —
        byte-identical results, same plan, same stats.  ``progress`` is
        called as ``progress(completed_shards, total_shards)`` from the
        driver thread as the Score stage advances;
        :meth:`SearchFuture.cancel` drops un-dispatched shards
        cooperatively (see :mod:`repro.engine.control`).
        """
        control = ExecutionControl(progress=progress)
        future = SearchFuture(control)

        def drive():
            _drive_one(
                self, future, control, table, params, query, k, workers, None
            )

        task = self._dispatcher().submit(drive)
        task.add_done_callback(_abandonment_guard(future))
        return future

    def submit_many(
        self,
        table: Table,
        params: VisualParams,
        queries: Sequence[Union[Node, CompiledQuery]],
        k: int = 10,
        workers: Optional[int] = None,
        progress=None,
    ) -> List[SearchFuture]:
        """Dispatch a batch without blocking: one future per query.

        The batch runs on a single driver so generation work is
        amortized exactly as in :meth:`run_many` (shared memo,
        worker-resident caches); futures resolve in submission order.
        Cancelling one future skips (or cooperatively stops) only that
        query — the rest of the batch proceeds.  ``progress`` is called
        as ``progress(query_index, completed_shards, total_shards)``.
        """
        jobs = []
        for index, query in enumerate(queries):
            if progress is not None:
                def query_progress(completed, total, _index=index):
                    progress(_index, completed, total)
            else:
                query_progress = None
            control = ExecutionControl(progress=query_progress)
            jobs.append((query, SearchFuture(control), control))

        def drive():
            memo: dict = {}
            for query, future, control in jobs:
                _drive_one(
                    self, future, control, table, params, query, k, workers, memo
                )

        task = self._dispatcher().submit(drive)
        for _query, future, _control in jobs:
            task.add_done_callback(_abandonment_guard(future))
        return [future for _query, future, _control in jobs]

    # -- deprecated blocking shims ------------------------------------------
    def execute(
        self,
        table: Table,
        params: VisualParams,
        query: Union[Node, CompiledQuery],
        k: int = 10,
        workers: Optional[int] = None,
    ) -> ResultSet:
        """Deprecated: use :meth:`run` (same results, per-call stats).

        Kept as a thin shim for seed-era callers: identical matches in
        identical order, now as a list-compatible :class:`ResultSet`,
        with ``last_stats`` still updated for code that inspected it.
        """
        warn_deprecated("ShapeSearchEngine.execute()", "ShapeSearchEngine.run()")
        result = self.run(table, params, query, k=k, workers=workers)
        self.last_stats = result.stats
        return result

    def execute_with_stats(
        self,
        table: Table,
        params: VisualParams,
        query: Union[Node, CompiledQuery],
        k: int = 10,
        workers: Optional[int] = None,
    ) -> Tuple[ResultSet, ExecutionStats]:
        """Like :meth:`run`, unpacked as ``(results, stats)``.

        Not deprecated — internal plumbing and tests use it — but new
        code should prefer :meth:`run`: the stats ride on the ResultSet.
        """
        result = self.run(table, params, query, k=k, workers=workers)
        return result, result.stats

    def execute_many(
        self,
        table: Table,
        params: VisualParams,
        queries: Sequence[Union[Node, CompiledQuery]],
        k: int = 10,
        workers: Optional[int] = None,
    ) -> List[ResultSet]:
        """Deprecated: use :meth:`run_many` (same batch amortization)."""
        warn_deprecated(
            "ShapeSearchEngine.execute_many()", "ShapeSearchEngine.run_many()"
        )
        results = self.run_many(table, params, queries, k=k, workers=workers)
        if results:
            self.last_stats = results[-1].stats
        return results

    def execute_many_with_stats(
        self,
        table: Table,
        params: VisualParams,
        queries: Sequence[Union[Node, CompiledQuery]],
        k: int = 10,
        workers: Optional[int] = None,
    ) -> Tuple[List[ResultSet], List[ExecutionStats]]:
        """Batch :meth:`run_many`, unpacked as ``(results, stats list)``."""
        results = self.run_many(table, params, queries, k=k, workers=workers)
        return results, [result.stats for result in results]

    # -- core ranking --------------------------------------------------------
    def rank(
        self,
        trendlines: Sequence[Trendline],
        query: Union[Node, CompiledQuery],
        k: int = 10,
        extracted_hint: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> ResultSet:
        """Rank pre-built trendlines against a query."""
        matches, stats = self.rank_with_stats(
            trendlines, query, k, extracted_hint=extracted_hint, workers=workers
        )
        self.last_stats = stats
        return matches

    def rank_with_stats(
        self,
        trendlines: Sequence[Trendline],
        query: Union[Node, CompiledQuery],
        k: int = 10,
        extracted_hint: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> Tuple[ResultSet, ExecutionStats]:
        """Rank with per-call stats (safe under concurrent use)."""
        stats = ExecutionStats()
        compiled = self._compile(query, stats)
        stats.extracted = extracted_hint if extracted_hint is not None else len(trendlines)
        matches, plan = self._run_pipeline(
            compiled, k, stats, trendlines=trendlines, workers=workers
        )
        return ResultSet(matches, stats=stats, plan=plan), stats

    def _run_pipeline(
        self,
        compiled: CompiledQuery,
        k: int,
        stats: ExecutionStats,
        table: Optional[Table] = None,
        params: Optional[VisualParams] = None,
        trendlines: Optional[Sequence[Trendline]] = None,
        workers: Optional[int] = None,
        memo: Optional[dict] = None,
        control: Optional[ExecutionControl] = None,
    ) -> Tuple[List[Match], object]:
        """Plan and run the staged operator pipeline for one execution.

        All branching — sequential vs parallel Score, object vs
        shared-memory transport, parent- vs worker-side Extract/Group,
        pruning — lives in :func:`repro.engine.pipeline.plan_pipeline`;
        the engine only supplies the session-scoped services (pools, shm
        session, caches) through the :class:`PipelineContext`.  Returns
        ``(matches, rendered plan)`` so callers can build a ResultSet
        that knows which chain actually ran — the *text*, not the
        operator chain, which pins the table / candidate collection for
        as long as it is referenced.
        """
        from repro.engine.pipeline import PipelineContext, plan_pipeline

        pipeline = plan_pipeline(
            self, compiled, k, table=table, params=params,
            trendlines=trendlines, workers=workers, memo=memo,
        )
        matches = pipeline.run(
            PipelineContext(engine=self, stats=stats, control=control)
        )
        return matches, pipeline.explain()

    def explain_plan(
        self,
        table: Table,
        params: VisualParams,
        query: Union[Node, CompiledQuery],
        k: int = 10,
        workers: Optional[int] = None,
    ) -> str:
        """The physical operator chain one :meth:`execute` call would run.

        Purely a planning call — nothing is generated, published or
        scored — so it is cheap enough for interactive inspection.
        """
        from repro.engine.pipeline import plan_pipeline

        compiled = self._compile(query)
        return plan_pipeline(
            self, compiled, k, table=table, params=params, workers=workers
        ).explain()

    def score_one(
        self, trendline: Trendline, query: Union[Node, CompiledQuery]
    ) -> QueryResult:
        """Score a single trendline (used by examples and tests)."""
        return self._solve(trendline, self._compile(query))

    def compile(self, query: Union[Node, CompiledQuery]) -> CompiledQuery:
        """Compile a ShapeQuery AST through the plan cache (idempotent).

        The prepare seam: :meth:`ShapeSearch.prepare` compiles once here
        and binds the result, so every subsequent ``run``/``submit`` on
        the prepared query skips parse + compile by construction.
        """
        return self._compile(query)

    # -- internals --------------------------------------------------------------
    def _compile(
        self, query: Union[Node, CompiledQuery], stats: Optional[ExecutionStats] = None
    ) -> CompiledQuery:
        if isinstance(query, CompiledQuery):
            return query
        if isinstance(query, Node):
            if self.cache is not None:
                # The threshold is baked into compiled QuantifierUnits, so
                # engines with different overrides must not share plans.
                key = (canonical_query_text(query), self.quantifier_threshold)
                compiled = self.cache.plans.get(key)
                if compiled is not None:
                    if stats is not None:
                        stats.plan_cache_hit = True
                    return compiled
                compiled = compile_query(
                    query, quantifier_threshold=self.quantifier_threshold
                )
                self.cache.plans.put(key, compiled)
                return compiled
            return compile_query(query, quantifier_threshold=self.quantifier_threshold)
        raise ExecutionError("query must be a ShapeQuery AST or CompiledQuery")

    def _trendlines(
        self,
        table: Table,
        params: VisualParams,
        normalize_y: bool,
        plan,
        stats: ExecutionStats,
    ) -> List[Trendline]:
        """EXTRACT ∘ GROUP, through the trendline cache when configured."""
        if self.cache is None:
            return generate_trendlines(table, params, normalize_y, plan)
        key = trendline_cache_key(table, params, normalize_y, plan_fingerprint(plan))
        trendlines = self.cache.trendlines.get(key)
        if trendlines is not None:
            stats.trendline_cache_hit = True
            return trendlines
        trendlines = generate_trendlines(table, params, normalize_y, plan)
        self.cache.trendlines.put(key, trendlines)
        return trendlines

    def _solve(self, trendline: Trendline, compiled: CompiledQuery) -> QueryResult:
        from repro.engine.parallel import solve_one

        return solve_one(trendline, compiled, self.algorithm, kernel=self.kernel)

    #: Per-table attached shape-index entries kept per store (small: one
    #: per distinct (params, normalize_y, plan, precision) combination).
    _MAX_TABLE_INDEXES = 4

    def _shape_index_for(self, trendlines, table=None, index_key=None):
        """The persistent shape index of one candidate collection.

        Returns ``(index, source, reason)`` where ``source`` names the
        tier that supplied it — ``"memory"``, ``"disk"`` or ``"built"``
        — surfaced through ``ExecutionStats.index_source`` and the
        rendered plan, and ``reason`` says *why* a build was necessary
        when ``source == "built"`` (``ExecutionStats.index_reason``;
        None for the other tiers).  A configured store that rejects the
        save-back (unwritable directory, a file squatting on the path,
        disk full) additionally warns **once per store** — silently
        rebuilding on every process start is the failure mode this
        surfaces.  Storage tiers, in lookup order:

        * **Table-attached** (execute paths): the index lives on the
          immutable ``Table`` itself, keyed by the generation inputs
          (params, normalize_y, push-down plan, precision) — it survives
          engine restarts and cache evictions, and ``append_rows``
          lineage lets a new table *extend* its base's index instead of
          rebuilding (:meth:`~repro.engine.shape_index.ShapeIndex.extended`:
          only changed/new trendlines are re-summarized, bitwise equal
          to a fresh build).
        * **EngineCache.indexes** (when a cache is configured): content
          fingerprint keyed, shared across engines like the trendline
          cache.
        * **Artifact store** (when ``store`` is configured): the packed
          form memory-mapped from disk (repro.engine.artifacts),
          verified against the table's content fingerprint — the tier
          that survives process restarts.  Built/extended indexes are
          saved back here, so an append persists its delta-extended
          index for the next process.
        * **Engine-local memo** (rank paths over caller-held
          collections): keyed by collection identity with an id witness.

        The index is a pure function of the trendlines' prefix bits, so
        every tier returns bitwise-identical buckets.
        """
        from repro.engine.shape_index import ShapeIndex

        if table is not None and index_key is not None:
            state = attached_state(table, "_shape_index_state", dict)
            index = state.get(index_key)
            if index is not None and len(index) == len(trendlines):
                return index, "memory", None
            cache_key = None
            if self.cache is not None:
                cache_key = (table_fingerprint(table),) + index_key
                index = self.cache.indexes.get(cache_key)
                if index is not None and len(index) == len(trendlines):
                    state[index_key] = index
                    return index, "memory", None
            source = "built"
            reason = "no-store" if self.store is None else "store-miss"
            index = None
            if self.store is not None:
                from repro.engine.artifacts import load_index

                index = load_index(
                    self.store, index_key, table_fingerprint(table)
                )
                if index is not None and len(index) == len(trendlines):
                    source, reason = "disk", None
                else:
                    index = None
            if index is None:
                base_state = getattr(table, "_shape_index_base", None)
                base_index = base_state.get(index_key) if base_state else None
                if base_index is not None:
                    index = base_index.extended(trendlines)
                else:
                    index = ShapeIndex.build(trendlines)
            state[index_key] = index
            while len(state) > self._MAX_TABLE_INDEXES:
                state.pop(next(iter(state)))
            if cache_key is not None:
                self.cache.indexes.put(cache_key, index)
            if self.store is not None and source == "built":
                from repro.engine.artifacts import save_index

                try:
                    save_index(
                        self.store, index_key, index, table_fingerprint(table)
                    )
                except OSError as exc:
                    # An unwritable store never fails a query — but it
                    # does mean every fresh process silently repays the
                    # build, so say so (once per store) and record why.
                    reason = "store-unwritable"
                    _warn_unwritable_store(self.store, exc)
            return index, source, reason

        key = id(trendlines)
        witness = tuple(id(trendline) for trendline in trendlines)
        entry = self._indexes.get(key)
        if entry is not None and entry[0] == witness:
            self._indexes.move_to_end(key)
            return entry[2], "memory", None
        index = ShapeIndex.build(trendlines)
        self._indexes[key] = (witness, trendlines, index)
        self._indexes.move_to_end(key)
        while len(self._indexes) > _MAX_ENGINE_INDEXES:
            self._indexes.popitem(last=False)
        return index, "built", "rank-path"


def _release_engine_resources(
    pools: dict, lock: threading.Lock, shm_box: list, dispatch_box: list
) -> None:
    """Shut down an engine's dispatcher, pools and shm session (idempotent).

    Module-level and closed over the engine's *mutable holders* rather
    than the engine itself, so the ``weakref.finalize`` registered in
    ``__init__`` can run after the engine is collected — and a manual
    ``close()`` followed by more work still gets cleaned up at exit.
    The dispatcher drains first (its drivers use the pools and shm
    session being torn down next); queued-but-unstarted drivers are
    cancelled, and their SearchFutures resolve as cancelled through the
    abandonment guard.
    """
    with lock:
        dispatcher, dispatch_box[0] = dispatch_box[0], None
    if dispatcher is not None:
        dispatcher.shutdown(wait=True, cancel_futures=True)
    with lock:
        pools_now, session = list(pools.values()), shm_box[0]
        pools.clear()
        shm_box[0] = None
    for pool in pools_now:
        pool.shutdown()
    if session is not None:
        session.close()


def _drive_one(
    engine, future, control, table, params, query, k, workers, memo
) -> None:
    """Run one submitted execution on a driver thread, resolving its future.

    Exceptions — including :class:`SearchCancelled` from the MergeTopK
    rendezvous — land on the future instead of the driver thread, so one
    failed or cancelled query never takes down the driver (or, on the
    batched path, the rest of its batch).
    """
    if not future._start():
        future._finish(
            exception=SearchCancelled("search cancelled before dispatch")
        )
        return
    try:
        result = engine.run(
            table, params, query, k=k, workers=workers, control=control, memo=memo
        )
    except BaseException as exc:  # resolve, never unwind the driver
        future._finish(exception=exc)
    else:
        future._finish(result=result)


def _abandonment_guard(future):
    """Done-callback for a driver task: resolve futures the driver never ran.

    ``close()`` cancels queued driver tasks; without this, a
    SearchFuture whose driver was cancelled would wait forever.
    ``_finish`` is idempotent, so futures the driver already resolved
    ignore the guard.
    """

    def callback(task):
        if task.cancelled():
            future._finish(
                exception=SearchCancelled("engine closed before dispatch")
            )

    return callback


def _to_matches(items) -> List[Match]:
    """Present ranked ``(score, position, trendline, result)`` items as
    Matches in (score desc, str(key) asc) order.

    Every engine path — sequential, sharded, pruned — builds its final
    Match list here, so the presentation tie-break cannot drift between
    paths.  (The *selection* orders live upstream: (score, position) in
    the shard heaps/merge, (score, key) inside the pruning drivers.)
    """
    ranked = sorted(items, key=lambda item: (-item[0], str(item[2].key)))
    return [
        Match(key=trendline.key, score=score, result=result, trendline=trendline)
        for score, _, trendline, result in ranked
    ]
