"""The SEGMENT + SCORE stages and the top-k driver (paper §5, Problem 1).

:class:`ShapeSearchEngine` ties the pipeline together: compile the
ShapeQuery, run EXTRACT/GROUP with the push-down plan, pick a
segmentation algorithm per candidate visualization (or the two-stage
collective pruning driver for fuzzy queries), and return the top-k
matches.  Algorithms:

* ``"dp"`` — optimal dynamic programming, O(n²k) (§6.1);
* ``"segment-tree"`` — pattern-aware, O(nk⁴) (§6.2), the default;
* ``"greedy"`` — local-search baseline (§9);
* ``"exhaustive"`` — the brute-force oracle (tests/small data only).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.algebra.nodes import Node
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.chains import CompiledQuery, compile_query
from repro.engine.dynamic import QueryResult, solve_query
from repro.engine.exhaustive import exhaustive_solve_query
from repro.engine.greedy import greedy_run_solver
from repro.engine.pipeline import generate_trendlines
from repro.engine.pruning import PruningReport, is_prunable, prune_and_rank
from repro.engine.pushdown import eager_discard, plan_pushdown
from repro.engine.segment_tree import segment_tree_run_solver
from repro.engine.trendline import Trendline
from repro.errors import ExecutionError

#: Supported segmentation algorithms.
ALGORITHMS = ("dp", "segment-tree", "greedy", "exhaustive")

#: Run solvers plugged into :func:`repro.engine.dynamic.solve_chain`.
_RUN_SOLVERS = {
    "dp": None,  # dynamic's own DP
    "segment-tree": segment_tree_run_solver,
    "greedy": greedy_run_solver,
}


@dataclass
class Match:
    """One ranked visualization: who, how well, and where each pattern fit."""

    key: object
    score: float
    result: QueryResult
    trendline: Trendline

    @property
    def placements(self):
        """Per-unit (segment index, start bin, end bin, score, slope)."""
        return self.result.solution.placements

    def __repr__(self):
        return "Match({!r}, score={:.3f})".format(self.key, self.score)


@dataclass
class ExecutionStats:
    """What the engine did for one query (inspected by benchmarks)."""

    candidates: int = 0
    extracted: int = 0
    eager_discarded: int = 0
    scored: int = 0
    pruning: Optional[PruningReport] = None


class ShapeSearchEngine:
    """Back-end execution engine: Problem 1's ``top-k argmax SF(Q, Vi)``."""

    def __init__(
        self,
        algorithm: str = "segment-tree",
        enable_pushdown: bool = True,
        enable_pruning: bool = False,
        sample_size: int = 20,
        sample_points: int = 64,
    ):
        if algorithm not in ALGORITHMS:
            raise ExecutionError(
                "unknown algorithm {!r}; choose from {}".format(algorithm, ALGORITHMS)
            )
        self.algorithm = algorithm
        self.enable_pushdown = enable_pushdown
        self.enable_pruning = enable_pruning
        self.sample_size = sample_size
        self.sample_points = sample_points
        self.last_stats = ExecutionStats()

    # -- full pipeline -----------------------------------------------------
    def execute(
        self,
        table: Table,
        params: VisualParams,
        query: Union[Node, CompiledQuery],
        k: int = 10,
    ) -> List[Match]:
        """EXTRACT → GROUP → SEGMENT → SCORE → top-k."""
        compiled = self._compile(query)
        plan = plan_pushdown(compiled) if self.enable_pushdown else None
        normalize_y = not _query_constrains_y(compiled)
        trendlines = generate_trendlines(table, params, normalize_y, plan)
        return self.rank(trendlines, compiled, k, extracted_hint=len(trendlines))

    # -- core ranking --------------------------------------------------------
    def rank(
        self,
        trendlines: Sequence[Trendline],
        query: Union[Node, CompiledQuery],
        k: int = 10,
        extracted_hint: Optional[int] = None,
    ) -> List[Match]:
        """Rank pre-built trendlines against a query."""
        compiled = self._compile(query)
        stats = ExecutionStats(
            candidates=len(trendlines),
            extracted=extracted_hint if extracted_hint is not None else len(trendlines),
        )
        self.last_stats = stats

        if (
            self.enable_pruning
            and self.algorithm == "segment-tree"
            and is_prunable(compiled)
        ):
            report = PruningReport()
            ranked = prune_and_rank(
                list(trendlines),
                compiled,
                k,
                sample_size=self.sample_size,
                sample_points=self.sample_points,
                report=report,
            )
            stats.pruning = report
            stats.scored = report.completed
            return [
                Match(key=tl.key, score=result.score, result=result, trendline=tl)
                for tl, result in ranked
            ]

        heap: List[tuple] = []
        counter = 0
        for trendline in trendlines:
            if self.enable_pushdown and eager_discard(trendline, compiled):
                stats.eager_discarded += 1
                continue
            result = self._solve(trendline, compiled)
            stats.scored += 1
            counter += 1
            item = (result.score, counter, trendline, result)
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif item[0] > heap[0][0]:
                heapq.heapreplace(heap, item)
        ranked = sorted(heap, key=lambda item: (-item[0], str(item[2].key)))
        return [
            Match(key=tl.key, score=score, result=result, trendline=tl)
            for score, _, tl, result in ranked
        ]

    def score_one(
        self, trendline: Trendline, query: Union[Node, CompiledQuery]
    ) -> QueryResult:
        """Score a single trendline (used by examples and tests)."""
        return self._solve(trendline, self._compile(query))

    # -- internals --------------------------------------------------------------
    def _compile(self, query: Union[Node, CompiledQuery]) -> CompiledQuery:
        if isinstance(query, CompiledQuery):
            return query
        if isinstance(query, Node):
            return compile_query(query)
        raise ExecutionError("query must be a ShapeQuery AST or CompiledQuery")

    def _solve(self, trendline: Trendline, compiled: CompiledQuery) -> QueryResult:
        if self.algorithm == "exhaustive":
            return exhaustive_solve_query(trendline, compiled)
        return solve_query(trendline, compiled, run_solver=_RUN_SOLVERS[self.algorithm])


def _query_constrains_y(query: CompiledQuery) -> bool:
    """z-score normalization is skipped when the query pins raw y values."""
    return any(
        cu.unit.location.y_start is not None or cu.unit.location.y_end is not None
        for chain in query.chains
        for cu in chain.units
    )
