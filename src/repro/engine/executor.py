"""The SEGMENT + SCORE stages and the top-k driver (paper §5, Problem 1).

:class:`ShapeSearchEngine` holds the session-scoped machinery — compiled
plans, caches, worker pools, shared-memory sessions — and delegates each
execution to the staged physical-operator pipeline of
:mod:`repro.engine.pipeline`: :func:`~repro.engine.pipeline.plan_pipeline`
compiles the query + table into a ``ScanTable → Extract/Group → Score →
MergeTopK`` operator chain (picking sequential or parallel
implementations per stage), and the engine runs it.  Algorithms:

* ``"dp"`` — optimal dynamic programming, O(n²k) (§6.1), driven by the
  tiled matrix kernel by default (``kernel="matrix"``; ``"loop"`` keeps
  the byte-identical reference kernel for benchmarking);
* ``"segment-tree"`` — pattern-aware, O(nk⁴) (§6.2), the default;
* ``"greedy"`` — local-search baseline (§9);
* ``"exhaustive"`` — the brute-force oracle (tests/small data only).

Scaling knobs (beyond the paper): ``workers=`` shards candidates across
a :class:`~repro.engine.parallel.WorkerPool` and merges per-shard top-k
heaps; ``cache=`` plugs in an :class:`~repro.engine.cache.EngineCache`
so repeated interactive queries skip EXTRACT/GROUP and query compilation
entirely; ``generation=`` picks where EXTRACT/GROUP runs — parent-side,
or inside the workers against the shared table so generation
parallelizes with scoring.  Every configuration uses the total order
*(score desc, candidate position asc)*, so results are identical for any
worker count, backend, transport and generation mode.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.algebra.nodes import Node
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.cache import (
    EngineCache,
    canonical_query_text,
    coerce_cache,
    plan_fingerprint,
    trendline_cache_key,
)
from repro.engine.chains import CompiledQuery, compile_query
from repro.engine.dynamic import QueryResult
from repro.engine.pipeline import generate_trendlines
from repro.engine.pruning import PruningReport
from repro.engine.trendline import Trendline
from repro.errors import ExecutionError

#: Supported segmentation algorithms (dispatch lives in
#: :data:`repro.engine.parallel.RUN_SOLVERS`, the single table shared by
#: the sequential, sharded and score_one paths).
ALGORITHMS = ("dp", "segment-tree", "greedy", "exhaustive")

#: Supported EXTRACT/GROUP placements (see the ``generation`` option).
GENERATION_MODES = ("auto", "parent", "worker")


@dataclass
class Match:
    """One ranked visualization: who, how well, and where each pattern fit."""

    key: object
    score: float
    result: QueryResult
    trendline: Trendline

    @property
    def placements(self):
        """Per-unit (segment index, start bin, end bin, score, slope)."""
        return self.result.solution.placements

    def __repr__(self):
        return "Match({!r}, score={:.3f})".format(self.key, self.score)


@dataclass
class ExecutionStats:
    """What the engine did for one query (inspected by benchmarks).

    Stats are built per call and returned by
    :meth:`ShapeSearchEngine.rank_with_stats`; the engine's
    ``last_stats`` attribute only ever holds a *completed* snapshot, so
    concurrent calls on one engine never observe each other's counters.
    """

    candidates: int = 0
    extracted: int = 0
    eager_discarded: int = 0
    scored: int = 0
    shards: int = 0
    trendline_cache_hit: bool = False
    plan_cache_hit: bool = False
    #: Which Extract/Group implementation ran: ``"parent"`` (materialized
    #: in the calling process) or ``"worker"`` (generated inside the
    #: workers from the shared table).
    generation: str = "parent"
    pruning: Optional[PruningReport] = None


class ShapeSearchEngine:
    """Back-end execution engine: Problem 1's ``top-k argmax SF(Q, Vi)``."""

    def __init__(
        self,
        algorithm: str = "segment-tree",
        enable_pushdown: bool = True,
        enable_pruning: bool = False,
        sample_size: int = 20,
        sample_points: int = 64,
        workers: int = 1,
        backend: str = "thread",
        chunk_size: Optional[int] = None,
        cache=None,
        shm: bool = True,
        quantifier_threshold: Optional[float] = None,
        kernel: str = "matrix",
        generation: str = "auto",
    ):
        if algorithm not in ALGORITHMS:
            raise ExecutionError(
                "unknown algorithm {!r}; choose from {}".format(algorithm, ALGORITHMS)
            )
        from repro.engine.dynamic import KERNELS

        if kernel not in KERNELS:
            raise ExecutionError(
                "unknown kernel {!r}; choose from {}".format(kernel, KERNELS)
            )
        self.algorithm = algorithm
        #: DP transition kernel for ``algorithm="dp"``: ``"matrix"`` (the
        #: tiled matrix kernel, default) or ``"loop"`` (the retained
        #: per-end-bin reference kernel).  Byte-identical results either
        #: way — the loop kernel exists as the oracle and for
        #: benchmarking the matrix kernel against.
        self.kernel = kernel
        self.enable_pushdown = enable_pushdown
        self.enable_pruning = enable_pruning
        self.sample_size = sample_size
        self.sample_points = sample_points
        self.workers = self._check_workers(workers)
        self.backend = backend
        self.chunk_size = chunk_size
        #: Use the shared-memory transport for the process backend: the
        #: candidate collection and compiled query are published once per
        #: session and shards travel as index ranges (repro.engine.shm).
        #: ``shm=False`` keeps the object-pickling transport (benchmarks
        #: compare the two; results are byte-identical either way).
        self.shm = bool(shm)
        #: Minimum per-run pattern score for a quantifier occurrence
        #: (paper §5.2: the zero default "can be overridden by users");
        #: None keeps scoring.QUANTIFIER_POSITIVE_THRESHOLD (0.3).
        self.quantifier_threshold = quantifier_threshold
        if generation not in GENERATION_MODES:
            raise ExecutionError(
                "unknown generation mode {!r}; choose from {}".format(
                    generation, GENERATION_MODES
                )
            )
        #: Where EXTRACT/GROUP runs: ``"parent"`` materializes the
        #: collection in this process, ``"worker"`` generates inside the
        #: pool workers from the (shared) table so generation
        #: parallelizes with scoring, ``"auto"`` picks worker-side on
        #: the *cacheless* process backend (a configured cache marks an
        #: interactive session, where one parent-side pass feeds every
        #: repeat from memory).  Results are byte-identical either way;
        #: the planner falls back to parent-side when the configuration
        #: cannot support worker-side generation (workers=1, process
        #: backend without shm, pruning).
        self.generation = generation
        self.cache: Optional[EngineCache] = coerce_cache(cache)
        self.last_stats = ExecutionStats()
        self._pools: dict = {}
        self._pool_lock = threading.Lock()
        #: One-slot box so the lazily created ShmSession is reachable from
        #: close() and the finalizer without either referencing ``self``.
        self._shm_box: list = [None]
        if self.cache is not None:
            from repro.engine.shm import release_evicted

            self.cache.trendlines.add_evict_listener(release_evicted)
        #: Safety net: releases pools and shared memory when the engine is
        #: garbage-collected or the interpreter exits without close().
        self._finalizer = weakref.finalize(
            self, _release_engine_resources, self._pools, self._pool_lock, self._shm_box
        )
        if backend not in ("thread", "process"):
            raise ExecutionError(
                "unknown backend {!r}; choose from ('thread', 'process')".format(backend)
            )

    @staticmethod
    def _check_workers(workers) -> int:
        if workers is None:
            from repro.engine.parallel import default_workers

            return default_workers()
        workers = int(workers)
        if workers < 1:
            raise ExecutionError("workers must be >= 1, got {}".format(workers))
        return workers

    # -- worker pool -------------------------------------------------------
    def _resolve_pool(self, workers: Optional[int]):
        """A persistent pool for the requested worker count.

        Pools are memoized per count so repeated per-call ``workers=``
        overrides (interactive sessions flipping between sequential and
        parallel) reuse warm pools instead of spawning and tearing one
        down per query — which for the process backend would dominate
        interactive latency.
        """
        from repro.engine.parallel import WorkerPool

        count = self.workers if workers is None else self._check_workers(workers)
        with self._pool_lock:
            pool = self._pools.get(count)
            if pool is None:
                initializer = None
                if self.backend == "process" and self.shm:
                    from repro.engine.shm import worker_init

                    initializer = worker_init
                pool = WorkerPool(count, self.backend, initializer=initializer)
                self._pools[count] = pool
            return pool

    def _shm_session(self):
        """The session-scoped shared-memory registry (created on first use)."""
        from repro.engine.shm import ShmSession

        with self._pool_lock:
            if self._shm_box[0] is None or self._shm_box[0].closed:
                self._shm_box[0] = ShmSession()
            return self._shm_box[0]

    def close(self) -> None:
        """Release worker pools and shared-memory segments.

        Idempotent, and also runs via ``weakref.finalize``/``atexit`` when
        an engine is dropped or the interpreter exits without an explicit
        close — pools and shm segments never outlive their owner.
        """
        _release_engine_resources(self._pools, self._pool_lock, self._shm_box)

    def __enter__(self) -> "ShapeSearchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- full pipeline -----------------------------------------------------
    def execute(
        self,
        table: Table,
        params: VisualParams,
        query: Union[Node, CompiledQuery],
        k: int = 10,
        workers: Optional[int] = None,
    ) -> List[Match]:
        """EXTRACT → GROUP → SEGMENT → SCORE → top-k."""
        matches, stats = self.execute_with_stats(table, params, query, k, workers=workers)
        self.last_stats = stats
        return matches

    def execute_with_stats(
        self,
        table: Table,
        params: VisualParams,
        query: Union[Node, CompiledQuery],
        k: int = 10,
        workers: Optional[int] = None,
    ) -> Tuple[List[Match], ExecutionStats]:
        """Like :meth:`execute`, returning this call's private stats."""
        stats = ExecutionStats()
        compiled = self._compile(query, stats)
        matches = self._run_pipeline(
            compiled, k, stats, table=table, params=params, workers=workers
        )
        return matches, stats

    def execute_many(
        self,
        table: Table,
        params: VisualParams,
        queries: Sequence[Union[Node, CompiledQuery]],
        k: int = 10,
        workers: Optional[int] = None,
    ) -> List[List[Match]]:
        """Batch execution: amortize compilation and EXTRACT/GROUP.

        See :meth:`execute_many_with_stats` for the per-query counters.
        """
        results, stats_list = self.execute_many_with_stats(
            table, params, queries, k, workers=workers
        )
        if stats_list:
            self.last_stats = stats_list[-1]
        return results

    def execute_many_with_stats(
        self,
        table: Table,
        params: VisualParams,
        queries: Sequence[Union[Node, CompiledQuery]],
        k: int = 10,
        workers: Optional[int] = None,
    ) -> Tuple[List[List[Match]], List[ExecutionStats]]:
        """Batch execution with one private :class:`ExecutionStats` per query.

        All queries are compiled first (through the plan cache when one
        is configured), then parent-side trendline generation runs once
        per distinct ``(normalize_y, push-down effect)`` combination —
        for the common all-fuzzy batch that is a single EXTRACT/GROUP
        pass shared by every query (a query that reused the batch's
        earlier generation work reports ``trendline_cache_hit=True``).
        Worker-side generation amortizes through the worker-resident
        range caches instead — the table is published and its group
        count established once for the whole batch.
        """
        stats_list: List[ExecutionStats] = [ExecutionStats() for _ in queries]
        compiled_list = [
            self._compile(query, stats) for query, stats in zip(queries, stats_list)
        ]
        memo: dict = {}
        results: List[List[Match]] = []
        for compiled, stats in zip(compiled_list, stats_list):
            results.append(
                self._run_pipeline(
                    compiled, k, stats, table=table, params=params,
                    workers=workers, memo=memo,
                )
            )
        return results, stats_list

    # -- core ranking --------------------------------------------------------
    def rank(
        self,
        trendlines: Sequence[Trendline],
        query: Union[Node, CompiledQuery],
        k: int = 10,
        extracted_hint: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> List[Match]:
        """Rank pre-built trendlines against a query."""
        matches, stats = self.rank_with_stats(
            trendlines, query, k, extracted_hint=extracted_hint, workers=workers
        )
        self.last_stats = stats
        return matches

    def rank_with_stats(
        self,
        trendlines: Sequence[Trendline],
        query: Union[Node, CompiledQuery],
        k: int = 10,
        extracted_hint: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> Tuple[List[Match], ExecutionStats]:
        """Rank with per-call stats (safe under concurrent use)."""
        stats = ExecutionStats()
        compiled = self._compile(query, stats)
        stats.extracted = extracted_hint if extracted_hint is not None else len(trendlines)
        matches = self._run_pipeline(
            compiled, k, stats, trendlines=trendlines, workers=workers
        )
        return matches, stats

    def _run_pipeline(
        self,
        compiled: CompiledQuery,
        k: int,
        stats: ExecutionStats,
        table: Optional[Table] = None,
        params: Optional[VisualParams] = None,
        trendlines: Optional[Sequence[Trendline]] = None,
        workers: Optional[int] = None,
        memo: Optional[dict] = None,
    ) -> List[Match]:
        """Plan and run the staged operator pipeline for one execution.

        All branching — sequential vs parallel Score, object vs
        shared-memory transport, parent- vs worker-side Extract/Group,
        pruning — lives in :func:`repro.engine.pipeline.plan_pipeline`;
        the engine only supplies the session-scoped services (pools, shm
        session, caches) through the :class:`PipelineContext`.
        """
        from repro.engine.pipeline import PipelineContext, plan_pipeline

        pipeline = plan_pipeline(
            self, compiled, k, table=table, params=params,
            trendlines=trendlines, workers=workers, memo=memo,
        )
        return pipeline.run(PipelineContext(engine=self, stats=stats))

    def explain_plan(
        self,
        table: Table,
        params: VisualParams,
        query: Union[Node, CompiledQuery],
        k: int = 10,
        workers: Optional[int] = None,
    ) -> str:
        """The physical operator chain one :meth:`execute` call would run.

        Purely a planning call — nothing is generated, published or
        scored — so it is cheap enough for interactive inspection.
        """
        from repro.engine.pipeline import plan_pipeline

        compiled = self._compile(query)
        return plan_pipeline(
            self, compiled, k, table=table, params=params, workers=workers
        ).explain()

    def score_one(
        self, trendline: Trendline, query: Union[Node, CompiledQuery]
    ) -> QueryResult:
        """Score a single trendline (used by examples and tests)."""
        return self._solve(trendline, self._compile(query))

    # -- internals --------------------------------------------------------------
    def _compile(
        self, query: Union[Node, CompiledQuery], stats: Optional[ExecutionStats] = None
    ) -> CompiledQuery:
        if isinstance(query, CompiledQuery):
            return query
        if isinstance(query, Node):
            if self.cache is not None:
                # The threshold is baked into compiled QuantifierUnits, so
                # engines with different overrides must not share plans.
                key = (canonical_query_text(query), self.quantifier_threshold)
                compiled = self.cache.plans.get(key)
                if compiled is not None:
                    if stats is not None:
                        stats.plan_cache_hit = True
                    return compiled
                compiled = compile_query(
                    query, quantifier_threshold=self.quantifier_threshold
                )
                self.cache.plans.put(key, compiled)
                return compiled
            return compile_query(query, quantifier_threshold=self.quantifier_threshold)
        raise ExecutionError("query must be a ShapeQuery AST or CompiledQuery")

    def _trendlines(
        self,
        table: Table,
        params: VisualParams,
        normalize_y: bool,
        plan,
        stats: ExecutionStats,
    ) -> List[Trendline]:
        """EXTRACT ∘ GROUP, through the trendline cache when configured."""
        if self.cache is None:
            return generate_trendlines(table, params, normalize_y, plan)
        key = trendline_cache_key(table, params, normalize_y, plan_fingerprint(plan))
        trendlines = self.cache.trendlines.get(key)
        if trendlines is not None:
            stats.trendline_cache_hit = True
            return trendlines
        trendlines = generate_trendlines(table, params, normalize_y, plan)
        self.cache.trendlines.put(key, trendlines)
        return trendlines

    def _solve(self, trendline: Trendline, compiled: CompiledQuery) -> QueryResult:
        from repro.engine.parallel import solve_one

        return solve_one(trendline, compiled, self.algorithm, kernel=self.kernel)


def _release_engine_resources(pools: dict, lock: threading.Lock, shm_box: list) -> None:
    """Shut down an engine's pools and shm session (idempotent).

    Module-level and closed over the engine's *mutable holders* rather
    than the engine itself, so the ``weakref.finalize`` registered in
    ``__init__`` can run after the engine is collected — and a manual
    ``close()`` followed by more work still gets cleaned up at exit.
    """
    with lock:
        pools_now, session = list(pools.values()), shm_box[0]
        pools.clear()
        shm_box[0] = None
    for pool in pools_now:
        pool.shutdown()
    if session is not None:
        session.close()


def _to_matches(items) -> List[Match]:
    """Present ranked ``(score, position, trendline, result)`` items as
    Matches in (score desc, str(key) asc) order.

    Every engine path — sequential, sharded, pruned — builds its final
    Match list here, so the presentation tie-break cannot drift between
    paths.  (The *selection* orders live upstream: (score, position) in
    the shard heaps/merge, (score, key) inside the pruning drivers.)
    """
    ranked = sorted(items, key=lambda item: (-item[0], str(item[2].key)))
    return [
        Match(key=trendline.key, score=score, result=result, trendline=trendline)
        for score, _, trendline, result in ranked
    ]
