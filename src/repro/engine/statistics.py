"""Summarized statistics and additive line fitting (paper §5.3, Theorem 5.1).

The GROUP operator reduces each trendline to per-bin *summarized
statistics* — the five numbers ``Σx, Σy, Σx·y, Σx², n`` — which are
sufficient to fit a least-squares line over any contiguous union of bins
without revisiting the raw points (Theorem 5.1, "Additivity").  This
module provides:

* :class:`SummaryStats` — the five numbers with merge (+) and the
  regression formulas for slope and intercept.
* :class:`PrefixStats` — cumulative arrays over the bins of a trendline,
  so that the statistics of any half-open bin range ``[l, r)`` are two
  array lookups and a subtraction, and slopes for *many* ranges can be
  computed in one vectorized expression (used by the DP engine).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Degenerate-denominator guard for the slope formula.
_EPS = 1e-12


@dataclass(frozen=True)
class SummaryStats:
    """The five summarized statistics of a VisualSegment (paper §5.3)."""

    n: float
    sx: float
    sy: float
    sxy: float
    sxx: float

    @classmethod
    def of(cls, x: np.ndarray, y: np.ndarray) -> "SummaryStats":
        """Statistics of raw points (used in tests and leaf construction)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        return cls(
            n=float(len(x)),
            sx=float(x.sum()),
            sy=float(y.sum()),
            sxy=float((x * y).sum()),
            sxx=float((x * x).sum()),
        )

    def __add__(self, other: "SummaryStats") -> "SummaryStats":
        """Merge two adjacent VisualSegments (Theorem 5.1)."""
        return SummaryStats(
            n=self.n + other.n,
            sx=self.sx + other.sx,
            sy=self.sy + other.sy,
            sxy=self.sxy + other.sxy,
            sxx=self.sxx + other.sxx,
        )

    def slope(self) -> float:
        """Least-squares slope; 0.0 for degenerate segments (all x equal)."""
        denominator = self.n * self.sxx - self.sx * self.sx
        if abs(denominator) < _EPS:
            return 0.0
        return (self.n * self.sxy - self.sx * self.sy) / denominator

    def intercept(self) -> float:
        """Least-squares intercept δ = (Σy − θ·Σx) / n."""
        if self.n < _EPS:
            return 0.0
        return (self.sy - self.slope() * self.sx) / self.n


class PrefixStats:
    """Cumulative summarized statistics over the bins of one trendline.

    ``prefix[i]`` holds the sums over all raw points that fall in bins
    ``0..i-1``; a bin may summarize one raw point (the default) or many
    (when GROUP bins by width ``b``).  Range queries use half-open bin
    intervals ``[l, r)``.
    """

    __slots__ = ("count", "sx", "sy", "sxy", "sxx", "bins", "stacked")

    #: Row order of :attr:`stacked` — chosen to match the order the five
    #: prefix arrays are packed in a shared-memory export, so a worker's
    #: reattached view of the segment *is* a valid ``stacked`` array.
    STACKED_ROWS = ("count", "sx", "sy", "sxy", "sxx")

    def __init__(self, bin_x_sums, bin_y_sums, bin_xy_sums, bin_xx_sums, bin_counts):
        self.bins = len(bin_counts)
        # All five cumulative arrays live as rows of one (5, bins+1)
        # block: _slopes then gathers every statistic of a range set in
        # one fancy-indexing pass instead of five (the DP kernels are
        # bandwidth-bound at large n, and five separate gathers pay the
        # numpy dispatch and the index walk five times).
        stacked = np.empty((5, self.bins + 1))
        stacked[:, 0] = 0.0
        np.cumsum(bin_counts, dtype=float, out=stacked[0, 1:])
        np.cumsum(bin_x_sums, dtype=float, out=stacked[1, 1:])
        np.cumsum(bin_y_sums, dtype=float, out=stacked[2, 1:])
        np.cumsum(bin_xy_sums, dtype=float, out=stacked[3, 1:])
        np.cumsum(bin_xx_sums, dtype=float, out=stacked[4, 1:])
        self.stacked = stacked
        self.count, self.sx, self.sy, self.sxy, self.sxx = stacked

    @classmethod
    def from_points(cls, x: np.ndarray, y: np.ndarray) -> "PrefixStats":
        """One bin per raw point."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        return cls(x, y, x * y, x * x, np.ones(len(x)))

    @classmethod
    def from_cumulative(cls, count, sx, sy, sxy, sxx, stacked=None) -> "PrefixStats":
        """Adopt already-cumulative arrays without recomputation.

        This is the shared-memory reattachment path: the arrays are the
        exact ``prefix[i]`` buffers a publishing process built (length
        ``bins + 1``, leading zero included), typically read-only views
        over a shared segment, and are shared as-is.  ``stacked``, when
        given, is the same five arrays as rows of one ``(5, bins + 1)``
        block (row order :data:`STACKED_ROWS`) — a shared export packs
        them consecutively, so the publisher's attach path passes a
        zero-copy reshape and keeps the fused ``_slopes`` gather; when it
        is ``None`` the per-array gather fallback is used instead.
        """
        self = cls.__new__(cls)
        self.bins = len(count) - 1
        self.count = count
        self.sx = sx
        self.sy = sy
        self.sxy = sxy
        self.sxx = sxx
        self.stacked = stacked
        return self

    @classmethod
    def from_binned(cls, x: np.ndarray, y: np.ndarray, bin_index: np.ndarray) -> "PrefixStats":
        """Bins given by a non-decreasing integer bin index per raw point."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        bins = int(bin_index[-1]) + 1 if len(bin_index) else 0
        counts = np.bincount(bin_index, minlength=bins)
        return cls(
            np.bincount(bin_index, weights=x, minlength=bins),
            np.bincount(bin_index, weights=y, minlength=bins),
            np.bincount(bin_index, weights=x * y, minlength=bins),
            np.bincount(bin_index, weights=x * x, minlength=bins),
            counts,
        )

    def __getstate__(self):
        """Pickle the stacked block once, not five row views plus it.

        Default ``__slots__`` pickling would serialize ``stacked`` *and*
        each named row view as an independent array — double the bytes on
        the wire and a receiver whose rows no longer alias the block.
        """
        if self.stacked is not None:
            return {"bins": self.bins, "stacked": np.ascontiguousarray(self.stacked)}
        return {
            "bins": self.bins,
            "count": self.count,
            "sx": self.sx,
            "sy": self.sy,
            "sxy": self.sxy,
            "sxx": self.sxx,
        }

    def __setstate__(self, state):
        self.bins = state["bins"]
        stacked = state.get("stacked")
        self.stacked = stacked
        if stacked is not None:
            self.count, self.sx, self.sy, self.sxy, self.sxx = stacked
        else:
            self.count = state["count"]
            self.sx = state["sx"]
            self.sy = state["sy"]
            self.sxy = state["sxy"]
            self.sxx = state["sxx"]

    def extends(self, base: "PrefixStats") -> bool:
        """True when this prefix is a bitwise extension of ``base``.

        The precondition for reusing DP state computed on the shorter
        trendline (the streaming suffix re-solve): every cumulative
        array must *begin* with ``base``'s exact values.  Appended raw
        rows that shift a group's normalization constants rewrite the
        whole history and fail this check — which is exactly when a cold
        re-solve is required for byte-identical results.
        """
        if base.bins > self.bins:
            return False
        n = base.bins + 1
        return (
            np.array_equal(self.count[:n], base.count)
            and np.array_equal(self.sx[:n], base.sx)
            and np.array_equal(self.sy[:n], base.sy)
            and np.array_equal(self.sxy[:n], base.sxy)
            and np.array_equal(self.sxx[:n], base.sxx)
        )

    def range(self, l: int, r: int) -> SummaryStats:
        """Summarized statistics of bins ``[l, r)``."""
        return SummaryStats(
            n=float(self.count[r] - self.count[l]),
            sx=float(self.sx[r] - self.sx[l]),
            sy=float(self.sy[r] - self.sy[l]),
            sxy=float(self.sxy[r] - self.sxy[l]),
            sxx=float(self.sxx[r] - self.sxx[l]),
        )

    def slope(self, l: int, r: int) -> float:
        """Fitted slope of bins ``[l, r)`` (allocation-free scalar path)."""
        n = self.count[r] - self.count[l]
        sx = self.sx[r] - self.sx[l]
        sy = self.sy[r] - self.sy[l]
        sxy = self.sxy[r] - self.sxy[l]
        sxx = self.sxx[r] - self.sxx[l]
        denominator = n * sxx - sx * sx
        if abs(denominator) < _EPS:
            return 0.0
        return float((n * sxy - sx * sy) / denominator)

    def slopes_for_ends(self, l: int, rs: np.ndarray) -> np.ndarray:
        """Vectorized slopes of ``[l, r)`` for each ``r`` in ``rs``."""
        return self._slopes(np.full(len(rs), l), np.asarray(rs))

    def slopes_for_starts(self, ls: np.ndarray, r: int) -> np.ndarray:
        """Vectorized slopes of ``[l, r)`` for each ``l`` in ``ls``."""
        ls = np.asarray(ls)
        return self._slopes(ls, np.full(len(ls), r))

    def slope_matrix(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        """Slopes for the full cross product ``starts × ends``.

        Entry ``[i, j]`` is the slope of ``[starts[i], ends[j])``; invalid
        ranges (fewer than two points) come out as 0 and must be masked by
        the caller.  This is the workhorse of the DP matrix kernel: one
        call summarizes every (split, end) transition of a layer.
        """
        l = np.asarray(starts)[:, None]
        r = np.asarray(ends)[None, :]
        return self._slopes(l, r)

    def slopes_pairs(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        """Vectorized slopes of paired ranges ``[starts[i], ends[i])``.

        The batched twin of :meth:`slope` for callers holding explicit
        (start, end) pairs — SegmentTree leaf scoring, level bounds, the
        push-down eager-bound path.  Values are bitwise identical to the
        scalar :meth:`slope` on each pair.
        """
        return self._slopes(np.asarray(starts), np.asarray(ends))

    def _slopes(self, l, r):
        if self.stacked is not None:
            # Fused gather: one fancy-indexing pass per index set pulls
            # all five statistics at once (rows of the gathered block are
            # contiguous views, so the arithmetic below is unchanged).
            # Element-wise this is the same ``prefix[r] - prefix[l]``
            # subtraction as the per-array path, so values are bitwise
            # identical either way.
            gathered = self.stacked[:, r] - self.stacked[:, l]
            n, sx, sy, sxy, sxx = gathered
        else:
            n = self.count[r] - self.count[l]
            sx = self.sx[r] - self.sx[l]
            sy = self.sy[r] - self.sy[l]
            sxy = self.sxy[r] - self.sxy[l]
            sxx = self.sxx[r] - self.sxx[l]
        # In-place arithmetic: the matrix kernel funnels (splits × ends)
        # tiles through here, where temporaries are megabytes and memory
        # traffic — not flops — is the bottleneck.  Operand order matches
        # the scalar slope() formula exactly, so values are unchanged.
        numerator = np.multiply(n, sxy, out=sxy)
        numerator -= np.multiply(sx, sy, out=sy)
        denominator = np.multiply(n, sxx, out=sxx)
        denominator -= np.multiply(sx, sx, out=sx)
        # Degenerate ranges are detected and substituted under the same
        # _EPS mask (a near-zero denominator must not be divided by any
        # more than an exactly-zero one; both read as slope 0.0, matching
        # the scalar slope()/SummaryStats.slope() paths bit for bit).
        degenerate = np.abs(denominator) < _EPS
        denominator[degenerate] = 1.0
        slopes = np.divide(numerator, denominator, out=numerator)
        slopes[degenerate] = 0.0
        return slopes
