"""The physical query pipeline: EXTRACT/GROUP operators and the staged plan.

Two layers live here:

* The **EXTRACT and GROUP operators** of paper §5.3 (Figure 5).  EXTRACT
  selects and aggregates records by the visual parameters (z, x, y,
  filters, aggregation) and streams per-z point sets, sorted on x.
  GROUP turns each point set into a
  :class:`~repro.engine.trendline.Trendline`: z-score normalization
  (when the query has no raw-y constraints), optional binning by width
  ``b``, and the per-bin summarized statistics of Theorem 5.1.  The
  push-down hooks of §5.4 thread through both operators.

* The **staged physical-operator pipeline** of §7's execution engine: a
  small planner (:func:`plan_pipeline`) compiles one query execution
  into a DAG of operators —

      ScanTable → Extract/Group → Score → MergeTopK

  — each with a sequential and a parallel implementation.  The parallel
  Extract/Group implementation runs *inside workers* against the
  shared-memory-published table: shards are group-key index ranges,
  workers generate their own trendlines (cached in a worker-resident
  store keyed by table fingerprint + VisualParams) and score them in
  place, so no trendline ever crosses a process boundary.  Every
  implementation preserves the engine's total order *(score desc,
  position asc)*, so results are byte-identical across operators,
  backends and worker counts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.filters import apply_filters
from repro.data.table import Table, attached_state, canonical_group_key
from repro.data.visual_params import VisualParams
from repro.engine.cache import plan_fingerprint
from repro.engine.pushdown import PushdownPlan, has_required_data, plan_pushdown
from repro.engine.shape_index import MIN_SEED_CANDIDATES, index_supports, prune_candidates
from repro.engine.trendline import Trendline, build_trendline, cast_trendline
from repro.errors import DataError

_AGGREGATES = {
    "mean": np.mean,
    "sum": np.sum,
    "min": np.min,
    "max": np.max,
    "count": len,
    "median": np.median,
}


# ---------------------------------------------------------------------------
# EXTRACT / GROUP (logical operators, paper §5.3)
# ---------------------------------------------------------------------------


def _require_columns(table: Table, params: VisualParams) -> None:
    for name in (params.z, params.x, params.y):
        if name not in table:
            raise DataError(
                "visual parameter column {!r} not in table (columns: {})".format(
                    name, table.column_names
                )
            )


def _required_columns(table: Table, params: VisualParams):
    """The column subset generation reads: z/x/y plus filter columns.

    Worker-side generation publishes only these into shared memory —
    unrelated columns are neither copied nor required to be picklable.
    Returns None when the query touches every column (full export).
    """
    needed = {params.z, params.x, params.y}
    needed.update(item.column for item in params.filters)
    subset = tuple(name for name in table.column_names if name in needed)
    return None if len(subset) == len(table.column_names) else subset


def _extract_stream(filtered, params, key, indices, plan, aggregate):
    """EXTRACT for one group: ``(key, sorted x, aggregated y)`` or None.

    The single copy of the per-group selection rule — duplicate-x
    aggregation, push-down (a) skipping, the two-point floor — shared by
    the streaming :func:`extract` and the worker-side
    :func:`generate_range`, so parent- and worker-side generation cannot
    drift apart.
    """
    x = filtered.column(params.x)[indices].astype(float)
    y = filtered.column(params.y)[indices].astype(float)
    order = np.argsort(x, kind="stable")
    x, y = x[order], y[order]
    if plan is not None and plan.required_spans and not has_required_data(
        x, plan.required_spans
    ):
        return None
    unique_x, inverse = np.unique(x, return_inverse=True)
    if len(unique_x) != len(x):
        aggregated = np.empty(len(unique_x))
        for slot in range(len(unique_x)):
            aggregated[slot] = aggregate(y[inverse == slot])
        x, y = unique_x, aggregated
    if len(x) < 2:
        return None
    return key, x, y


def _group_stream(key, x, y, params, normalize_y, plan) -> Optional[Trendline]:
    """GROUP for one stream: build the Trendline (or None when degenerate).

    Push-down (c): when the plan says the query is fully pinned, the
    summarized statistics are materialized only over the union of the
    pinned x ranges.
    """
    keep_range = None
    if plan is not None and plan.keep_span is not None:
        lo_x, hi_x = plan.keep_span
        lo_bin = int(np.searchsorted(x, lo_x, side="left"))
        hi_bin = int(np.searchsorted(x, hi_x, side="right"))
        if params.bin_width is None and hi_bin - lo_bin >= 2:
            keep_range = (lo_bin, hi_bin)
    try:
        return build_trendline(
            key,
            x,
            y,
            bin_width=params.bin_width,
            normalize_y=normalize_y,
            keep_range=keep_range,
        )
    except DataError:
        return None


def extract(
    table: Table,
    params: VisualParams,
    plan: Optional[PushdownPlan] = None,
) -> Iterator[Tuple[Hashable, np.ndarray, np.ndarray]]:
    """EXTRACT: stream ``(z value, sorted x, aggregated y)`` per group.

    Duplicate x values inside a group are collapsed with the configured
    aggregate (the paper's Real-Estate case).  Push-down (a) skips groups
    lacking data in any pinned x span of the query.
    """
    _require_columns(table, params)
    filtered = apply_filters(table, params.filters)
    aggregate = _AGGREGATES[params.aggregate]
    for key, indices in filtered.group_by(params.z):
        stream = _extract_stream(filtered, params, key, indices, plan, aggregate)
        if stream is not None:
            yield stream


def group(
    streams: Iterator[Tuple[Hashable, np.ndarray, np.ndarray]],
    params: VisualParams,
    normalize_y: bool = True,
    plan: Optional[PushdownPlan] = None,
) -> Iterator[Trendline]:
    """GROUP: build one Trendline per z value."""
    for key, x, y in streams:
        trendline = _group_stream(key, x, y, params, normalize_y, plan)
        if trendline is not None:
            yield trendline


def generate_trendlines(
    table: Table,
    params: VisualParams,
    normalize_y: bool = True,
    plan: Optional[PushdownPlan] = None,
) -> List[Trendline]:
    """EXTRACT ∘ GROUP: the candidate visualizations ``gen(R)``."""
    return list(group(extract(table, params, plan), params, normalize_y, plan))


def query_constrains_y(query) -> bool:
    """z-score normalization is skipped when the query pins raw y values."""
    return any(
        cu.unit.location.y_start is not None or cu.unit.location.y_end is not None
        for chain in query.chains
        for cu in chain.units
    )


# ---------------------------------------------------------------------------
# Worker-side generation (the parallel Extract/Group implementation)
# ---------------------------------------------------------------------------

class _GenerationState:
    """Worker-side generation caches for one :class:`Table` *instance*.

    Attached to the table itself (``table._generation_state``) rather
    than held in module globals, so the caches live exactly as long as
    the table: dropping the table — or a worker store evicting its
    reattached copy — frees the grouping index and every generated range
    with it, with no engine-lifecycle hook required.  Each map is a
    small LRU; the lock serializes the grouping pass (concurrent
    thread-backend tasks wait for one pass instead of duplicating it)
    while range generation itself runs outside it.
    """

    __slots__ = ("lock", "groupings", "counts", "ranges", "__weakref__")

    #: (z, filters) -> (filtered table, [(key, row indices)]).
    MAX_GROUPINGS = 4
    #: (params, normalize_y, plan effect, range) -> [(index, Trendline)].
    MAX_RANGES = 64
    #: (z, filters) -> group count (the parent-side planner memo).
    MAX_COUNTS = 16

    def __init__(self):
        self.lock = threading.Lock()
        self.groupings: "OrderedDict[tuple, tuple]" = OrderedDict()
        self.counts: "OrderedDict[tuple, int]" = OrderedDict()
        self.ranges: "OrderedDict[tuple, list]" = OrderedDict()


def _generation_state(table: Table) -> _GenerationState:
    return attached_state(table, "_generation_state", _GenerationState)


def _grouping(table: Table, params: VisualParams):
    """The cached ``(filtered table, group list)`` for one table+params.

    Group enumeration order is ``Table.group_by``'s first-seen order —
    exactly the order :func:`extract` iterates — which is what makes
    group-index ranges a faithful sharding of parent-side generation.
    """
    state = _generation_state(table)
    key = (params.z, params.filters)
    with state.lock:
        entry = state.groupings.get(key)
        if entry is not None:
            state.groupings.move_to_end(key)
            return entry
        filtered = apply_filters(table, params.filters)
        groups = list(filtered.group_by(params.z))
        state.groupings[key] = (filtered, groups)
        while len(state.groupings) > state.MAX_GROUPINGS:
            state.groupings.popitem(last=False)
        return filtered, groups


def count_groups(table: Table, params: VisualParams) -> int:
    """Number of candidate groups (distinct filtered z values).

    This is the worker-side shard domain: group *indices* are sharded,
    so the parent only ever needs the count — one cheap column pass,
    memoized on the table — while the index itself is built
    worker-resident by :func:`_grouping`.
    """
    state = _generation_state(table)
    key = (params.z, params.filters)
    with state.lock:
        entry = state.groupings.get(key)
        if entry is not None:
            return len(entry[1])
        count = state.counts.get(key)
        if count is not None:
            state.counts.move_to_end(key)
            return count
    filtered = apply_filters(table, params.filters)
    # Distinct-value count under dict/set semantics with the same NaN
    # canonicalization group_by buckets with (every NaN coalesces into
    # one key), so the count always matches len(groups).
    count = len(
        {canonical_group_key(value) for value in filtered.column(params.z).tolist()}
    )
    with state.lock:
        state.counts[key] = count
        while len(state.counts) > state.MAX_COUNTS:
            state.counts.popitem(last=False)
    return count


def generate_range(
    table: Table,
    params: VisualParams,
    normalize_y: bool,
    plan: Optional[PushdownPlan],
    start: int,
    end: int,
) -> List[Tuple[int, Trendline]]:
    """Worker-side EXTRACT ∘ GROUP over group indices ``[start, end)``.

    Returns ``(group index, trendline)`` pairs — groups dropped by
    extraction (too few points, push-down skips) or grouping (degenerate
    series) leave gaps, preserving the global generation order across
    shards.  Results are memoized on the (worker-resident) table keyed
    by VisualParams + normalization + push-down effect + range; range
    boundaries are deterministic (``make_range_chunks``), so repeat
    queries that land the same range on the same worker skip
    EXTRACT/GROUP entirely.
    """
    state = _generation_state(table)
    cache_key = (params, bool(normalize_y), plan_fingerprint(plan), start, end)
    with state.lock:
        pairs = state.ranges.get(cache_key)
        if pairs is not None:
            state.ranges.move_to_end(cache_key)
            return pairs
    filtered, groups = _grouping(table, params)
    aggregate = _AGGREGATES[params.aggregate]
    pairs = []
    for index in range(start, min(end, len(groups))):
        key, indices = groups[index]
        stream = _extract_stream(filtered, params, key, indices, plan, aggregate)
        if stream is None:
            continue
        trendline = _group_stream(*stream, params=params,
                                  normalize_y=normalize_y, plan=plan)
        if trendline is None:
            continue
        pairs.append((index, trendline))
    with state.lock:
        state.ranges[cache_key] = pairs
        while len(state.ranges) > state.MAX_RANGES:
            state.ranges.popitem(last=False)
    return pairs


def generate_score_shard(
    table_ref,
    params: VisualParams,
    normalize_y: bool,
    plan: Optional[PushdownPlan],
    query,
    start: int,
    end: int,
    k: int,
    algorithm: str = "segment-tree",
    enable_pushdown: bool = True,
    has_eager_checks: Optional[bool] = None,
    kernel: Optional[str] = None,
):
    """Fused Extract/Group → Score over one group-index range, in a worker.

    ``table_ref`` is either a :class:`Table` (thread backend — workers
    share the parent's memory) or a
    :class:`~repro.engine.shm.TableHandle` (process backend — resolved
    against the worker-resident store, attaching the shared segment on
    first use); ``query`` a compiled query or
    :class:`~repro.engine.shm.QueryHandle`.  The task payload is a
    manifest, the visual parameters and two integers — no trendline ever
    crosses the process boundary; only the shard's top-k results travel
    back.

    Positions are ``start`` plus the shard-local generation offset.
    Gaps from dropped groups compact within the shard, but every
    position in this shard stays strictly below every position of any
    later range, so the global total order *(score desc, position asc)*
    ranks candidates exactly as parent-side generation would — which is
    what keeps worker-side results byte-identical.
    """
    from repro.engine.parallel import score_shard
    from repro.engine.shm import resolve_query, resolve_table

    table = table_ref if isinstance(table_ref, Table) else resolve_table(table_ref)
    compiled = resolve_query(query)
    pairs = generate_range(table, params, normalize_y, plan, start, end)
    shard = score_shard(
        [trendline for _index, trendline in pairs],
        start,
        compiled,
        k,
        algorithm=algorithm,
        enable_pushdown=enable_pushdown,
        has_eager_checks=has_eager_checks,
        kernel=kernel,
    )
    shard.generated = len(pairs)
    return shard


# ---------------------------------------------------------------------------
# Streaming tail: re-score only the groups an append touched
# ---------------------------------------------------------------------------

#: Worker-resident DP state for the suffix re-solve, keyed by
#: ``(id(compiled), group key)``.  Entries are ``(compiled, state,
#: nbytes)``: they hold the compiled query object strongly (so the id
#: cannot be recycled while the entry lives) and are identity-verified
#: on every hit.  Bounded twice — by entry count and, because a "group"
#: can be a year-long series whose retained tables are O(k·n) floats, by
#: total retained bytes (size-based LRU eviction, budget adjustable via
#: :func:`set_tail_state_budget`, observable via
#: :func:`tail_state_stats`).
_TAIL_STATES: "OrderedDict[tuple, tuple]" = OrderedDict()
_TAIL_STATES_LOCK = threading.Lock()
_MAX_TAIL_STATES = 128
_DEFAULT_TAIL_STATE_BUDGET = 64 * 1024 * 1024
_tail_state_budget = _DEFAULT_TAIL_STATE_BUDGET
_tail_state_bytes = 0
_tail_state_evictions = 0


def _tail_state_pop_locked(cache_key) -> None:
    global _tail_state_bytes
    entry = _TAIL_STATES.pop(cache_key, None)
    if entry is not None:
        _tail_state_bytes -= entry[2]


def _tail_state_evict_locked() -> None:
    global _tail_state_bytes, _tail_state_evictions
    while _TAIL_STATES and (
        len(_TAIL_STATES) > _MAX_TAIL_STATES or _tail_state_bytes > _tail_state_budget
    ):
        _, entry = _TAIL_STATES.popitem(last=False)
        _tail_state_bytes -= entry[2]
        _tail_state_evictions += 1
    if not _TAIL_STATES:
        # Self-heal against external clears (tests reach into the dict):
        # an empty store holds zero bytes by definition.
        _tail_state_bytes = 0


def set_tail_state_budget(nbytes: int) -> None:
    """Cap the bytes of retained streaming DP state (process-wide).

    Evicts least-recently-used states immediately if the new budget is
    already exceeded.  Eviction is purely a work-skip: an evicted group's
    next refresh solves cold, byte-identical to the warm path.
    """
    global _tail_state_budget
    nbytes = int(nbytes)
    if nbytes < 0:
        raise ValueError("tail state budget must be >= 0 bytes")
    with _TAIL_STATES_LOCK:
        _tail_state_budget = nbytes
        _tail_state_evict_locked()


def tail_state_stats() -> dict:
    """Observability hook: retained-state entries/bytes/budget/evictions."""
    with _TAIL_STATES_LOCK:
        return {
            "entries": len(_TAIL_STATES),
            "bytes": _tail_state_bytes,
            "budget": _tail_state_budget,
            "evictions": _tail_state_evictions,
        }


def _solve_tail_dp(trendline: Trendline, compiled, key, kernel):
    """DP solve with retained-state reuse (byte-identical to cold).

    :func:`~repro.engine.dynamic.solve_query_extend` only ever reuses
    state whose trendline prefix is bitwise unchanged, so the result
    equals :func:`~repro.engine.parallel.solve_one`'s cold solve on the
    same inputs — the reuse is purely a work-skip.
    """
    from repro.engine.dynamic import solve_query_extend

    global _tail_state_bytes
    cache_key = (id(compiled), key)
    with _TAIL_STATES_LOCK:
        entry = _TAIL_STATES.get(cache_key)
        state = entry[1] if entry is not None and entry[0] is compiled else None
    result, new_state = solve_query_extend(trendline, compiled, state=state, kernel=kernel)
    with _TAIL_STATES_LOCK:
        _tail_state_pop_locked(cache_key)
        if new_state is not None:
            nbytes = new_state.state_nbytes()
            _TAIL_STATES[cache_key] = (compiled, new_state, nbytes)
            _tail_state_bytes += nbytes
            _tail_state_evict_locked()
    return result


def score_tail_groups(
    table_ref,
    params: VisualParams,
    normalize_y: bool,
    plan: Optional[PushdownPlan],
    query,
    indices: Sequence[int],
    algorithm: str = "segment-tree",
    kernel: Optional[str] = None,
):
    """Worker task of the streaming tail: re-score the named groups.

    ``indices`` are group indices into the (worker-resident) grouping of
    the *current* table — exactly the groups whose rows an append
    touched.  Each is re-extracted and re-scored by the same code a cold
    run uses on the same bytes, which is what makes the tail's refreshed
    results byte-identical to a cold solve of the full table.  Returns
    ``(index, key, QueryResult-or-None, Trendline-or-None)`` tuples —
    the key rides along so the parent can verify its group order against
    the workers' and fail loudly on drift, and the trendline so the
    parent can present top-k matches without re-grouping the table
    (shipping them is delta-proportional, like the rest of the refresh).
    A None result marks a group extraction dropped (too few points,
    degenerate series, push-down skip).
    """
    from repro.engine.parallel import solve_one
    from repro.engine.shm import resolve_query, resolve_table

    table = table_ref if isinstance(table_ref, Table) else resolve_table(table_ref)
    compiled = resolve_query(query)
    filtered, groups = _grouping(table, params)
    aggregate = _AGGREGATES[params.aggregate]
    out = []
    for index in indices:
        if index >= len(groups):
            out.append((index, None, None, None))
            continue
        key, rows = groups[index]
        stream = _extract_stream(filtered, params, key, rows, plan, aggregate)
        trendline = None
        if stream is not None:
            trendline = _group_stream(
                *stream, params=params, normalize_y=normalize_y, plan=plan
            )
        if trendline is None:
            with _TAIL_STATES_LOCK:
                _tail_state_pop_locked((id(compiled), key))
            out.append((index, key, None, None))
            continue
        if algorithm == "dp":
            result = _solve_tail_dp(trendline, compiled, key, kernel)
        else:
            result = solve_one(trendline, compiled, algorithm, kernel=kernel)
        out.append((index, key, result, trendline))
    return out


class IncrementalMerge:
    """MergeTopK's long-lived twin for the streaming tail.

    Where :class:`MergeTopK` folds per-shard heaps once per execution,
    this merge persists across appends: the tail keeps every group's
    latest result and each refresh re-ranks them under the cold plan's
    exact total order — ``(score desc, position asc)`` normally,
    ``(score desc, str(key) asc)`` when the cold plan would have used
    the pruning driver — so the selected top-k always matches a cold
    run's.  It is also the cancellation rendezvous: like MergeTopK, a
    refresh whose shards were dropped by a cooperative cancel raises
    :class:`~repro.errors.SearchCancelled` instead of presenting a
    partial update.
    """

    __slots__ = ("k", "tie")

    def __init__(self, k: int, tie: str = "position"):
        self.k = k
        self.tie = tie  # "position" | "key" (mirrors the pruning driver)

    def merge(self, entries, control=None):
        """Rank ``(score, position, key, result)`` entries; return top-k."""
        from repro.errors import SearchCancelled

        if control is not None and control.cancelled:
            completed, total, dropped = control.snapshot()
            raise SearchCancelled(
                "tail refresh cancelled: {} of {} shard(s) completed, {} dropped"
                .format(completed, total, dropped)
            )
        if self.tie == "key":
            ranked = sorted(entries, key=lambda entry: (-entry[0], str(entry[2])))
        else:
            ranked = sorted(entries, key=lambda entry: (-entry[0], entry[1]))
        return ranked[: self.k]


# ---------------------------------------------------------------------------
# The staged physical-operator pipeline (§7 execution engine)
# ---------------------------------------------------------------------------


@dataclass
class PipelineContext:
    """Runtime services a plan executes against: the engine + this call's
    private stats.  Pools and shm sessions are reached through the
    engine so plans stay cheap, reusable descriptions.

    ``control`` (an :class:`~repro.engine.control.ExecutionControl`) is
    set by the non-blocking submit paths: the Score stage feeds it
    per-shard progress and honors cooperative cancellation, and the
    MergeTopK rendezvous acknowledges dropped shards by raising
    :class:`~repro.errors.SearchCancelled` instead of merging a partial
    top-k.  ``None`` (the blocking paths) costs nothing.
    """

    engine: object
    stats: object
    control: object = None


@dataclass
class TableSource:
    """Output of ScanTable: the table plus its published form, if any."""

    table: Table
    params: VisualParams
    handle: Optional[object] = None  # shm TableHandle when published


@dataclass
class DeferredGeneration:
    """A worker-side Extract/Group whose work is fused into Score tasks."""

    source: TableSource
    normalize_y: bool
    plan: Optional[PushdownPlan]
    group_count: int


@dataclass
class Candidates:
    """Extract/Group output: materialized trendlines or a deferred plan."""

    trendlines: Optional[Sequence[Trendline]] = None
    deferred: Optional[DeferredGeneration] = None


@dataclass
class ScoredShards:
    """Score output: per-shard top-k heaps, awaiting the global merge."""

    shards: List[object] = field(default_factory=list)
    pruned: bool = False
    sequential: bool = False
    worker_generated: bool = False


class Operator:
    """One physical pipeline stage.  ``run`` consumes the upstream
    operator's output; ``describe`` renders the EXPLAIN line."""

    name = "Operator"
    mode = ""

    def run(self, ctx: PipelineContext, value):
        raise NotImplementedError

    def detail(self) -> str:
        return ""

    def describe(self) -> str:
        detail = self.detail()
        return "{}[{}]{}".format(self.name, self.mode, " " + detail if detail else "")


class ScanTable(Operator):
    """Leaf: the OLAP table (in-process, or published to shared memory)."""

    name = "ScanTable"

    def __init__(self, table: Table, params: VisualParams, mode: str = "in-process"):
        self.table = table
        self.params = params
        self.mode = mode  # "in-process" | "shared-memory"

    def run(self, ctx, _value) -> TableSource:
        _require_columns(self.table, self.params)
        handle = None
        if self.mode == "shared-memory":
            # The only mode that needs the content fingerprint — computed
            # (and memoized) inside table_handle; the in-process scan
            # stays hash-free.  Only the columns generation reads are
            # published.
            handle = ctx.engine._shm_session().table_handle(
                self.table, columns=_required_columns(self.table, self.params)
            )
        return TableSource(table=self.table, params=self.params, handle=handle)

    def detail(self) -> str:
        return "rows={} z={!r}".format(len(self.table), self.params.z)


class PrebuiltScan(Operator):
    """Leaf for the rank() paths: candidates the caller already holds."""

    name = "Scan"
    mode = "prebuilt"

    def __init__(self, trendlines: Sequence[Trendline]):
        self.trendlines = trendlines

    def run(self, ctx, _value) -> Candidates:
        return Candidates(trendlines=self.trendlines)

    def detail(self) -> str:
        return "candidates={}".format(len(self.trendlines))


class ExtractGroup(Operator):
    """EXTRACT ∘ GROUP with a parent-side and a worker-side implementation.

    ``parent`` materializes the collection in the calling process
    (through the engine's trendline cache and the optional batch memo);
    ``worker`` defers generation into the Score stage's fused tasks —
    the parent only establishes the shard domain (the group count).
    """

    name = "Extract/Group"

    def __init__(self, normalize_y: bool, plan: Optional[PushdownPlan],
                 mode: str, memo: Optional[dict] = None):
        self.normalize_y = normalize_y
        self.plan = plan
        self.mode = mode  # "parent" | "worker"
        self.memo = memo

    def run(self, ctx, source: TableSource) -> Candidates:
        ctx.stats.generation = self.mode
        if self.mode == "worker":
            if source.handle is not None:
                # Process backend: the parent never builds the grouping
                # (workers do, resident), so a memoized count-only pass
                # establishes the shard domain.
                group_count = count_groups(source.table, source.params)
            else:
                # Thread backend: the pool shares this very table
                # instance, so building (and caching) the grouping here
                # *is* the workers' grouping — no separate count pass.
                _filtered, groups = _grouping(source.table, source.params)
                group_count = len(groups)
            return Candidates(
                deferred=DeferredGeneration(
                    source=source,
                    normalize_y=self.normalize_y,
                    plan=self.plan,
                    group_count=group_count,
                )
            )
        memo_key = (self.normalize_y, plan_fingerprint(self.plan))
        if self.memo is not None and memo_key in self.memo:
            ctx.stats.trendline_cache_hit = True
            trendlines = self.memo[memo_key]
        else:
            trendlines = ctx.engine._trendlines(
                source.table, source.params, self.normalize_y, self.plan, ctx.stats
            )
            if self.memo is not None:
                self.memo[memo_key] = trendlines
        ctx.stats.extracted = len(trendlines)
        return Candidates(trendlines=trendlines)

    def detail(self) -> str:
        return "normalize_y={}".format(self.normalize_y)


class PrecisionCast(Operator):
    """Opt-in ``precision="float32"`` scoring: cast candidates once, here.

    Everything downstream — index bounds, DP kernels, merge — then runs
    on float32 values.  This is an *approximate* throughput mode,
    excluded from the byte-identity contract by construction (the engine
    refuses to combine it with the ``kernel="loop"`` oracle).
    """

    name = "Cast"
    mode = "float32"

    def run(self, ctx, candidates: Candidates) -> Candidates:
        return Candidates(
            trendlines=[
                cast_trendline(trendline, np.float32)
                for trendline in candidates.trendlines
            ]
        )


#: Below this candidate count the index bound pass is not worth shipping
#: to workers even on the process backend — with the block-batched
#: kernel it is a handful of array ops over the whole collection.  The
#: default of the engine's ``index_dispatch_min`` option; override per
#: engine or via the ``REPRO_INDEX_DISPATCH_MIN`` environment variable
#: (resolved once at engine construction).
INDEX_DISPATCH_MIN = 256


class IndexPrune(Operator):
    """Discard candidates the shape index proves cannot enter the top k.

    Runs between candidate materialization and Score: the engine's
    persistent :class:`~repro.engine.shape_index.ShapeIndex` bounds every
    candidate, the highest-bounded ``max(k, MIN_SEED_CANDIDATES)`` seeds
    are scored exactly to establish the top-k floor, and every candidate
    whose bound falls strictly below the floor is dropped before the DP
    ever touches it (:func:`~repro.engine.shape_index.prune_candidates`,
    decisions routed through the
    :func:`~repro.engine.shape_index.survives_floor` seam).  Exactness:
    a discarded candidate's true score is strictly below at least k
    others', and survivors keep their relative positions, so the *(score
    desc, position asc)* merge selects exactly the full scan's top k.

    On the shm process backend with enough candidates, the bound pass
    itself is sharded: workers attach the published index zero-copy and
    evaluate the same function on the same buckets — identical floats,
    so the prune decisions cannot depend on the transport.
    """

    name = "IndexPrune"
    mode = "pyramid"

    def __init__(self, compiled, k: int, workers: int,
                 table: Optional[Table] = None, index_key: Optional[tuple] = None):
        self.compiled = compiled
        self.k = k
        self.workers = workers
        self.table = table
        self.index_key = index_key
        #: Which tier supplied the index on the last run ("memory" |
        #: "disk" | "built"), rendered into the explained plan.
        self.index_source: Optional[str] = None

    def run(self, ctx, candidates: Candidates) -> Candidates:
        from repro.engine.parallel import solve_one

        engine = ctx.engine
        source = candidates.trendlines
        trendlines = source if isinstance(source, list) else list(source)
        total = len(trendlines)
        ctx.stats.index_candidates = total
        if total <= max(self.k, MIN_SEED_CANDIDATES) or self.k < 1:
            return candidates
        index, index_source, index_reason = engine._shape_index_for(
            source, table=self.table, index_key=self.index_key
        )
        self.index_source = index_source
        ctx.stats.index_source = index_source
        ctx.stats.index_reason = index_reason
        bounds = self._dispatched_bounds(ctx, index, total)
        ctx.stats.index_bounds = "dispatched" if bounds is not None else "inline"

        def solve(trendline):
            return solve_one(
                trendline, self.compiled, engine.algorithm, kernel=engine.kernel
            )

        survivors, pruned = prune_candidates(
            trendlines, index, self.compiled, self.k, solve, bounds=bounds
        )
        ctx.stats.index_pruned = pruned
        if not pruned:
            return candidates
        return Candidates(trendlines=[trendlines[i] for i in survivors])

    def _dispatched_bounds(self, ctx, index, total: int):
        """Worker-evaluated bounds on the shm path, or None for in-process."""
        engine = ctx.engine
        if (
            self.workers <= 1
            or engine.backend != "process"
            or not engine.shm
            or total < getattr(engine, "index_dispatch_min", INDEX_DISPATCH_MIN)
        ):
            return None
        from repro.engine.parallel import dispatch_index_bounds

        session = engine._shm_session()
        acquired = session.acquire_index(index, self.compiled)
        if acquired is None:
            return None
        handle, query_ref = acquired
        try:
            pool = engine._resolve_pool(self.workers)
            return dispatch_index_bounds(
                handle,
                query_ref,
                total,
                pool,
                chunk_size=engine.chunk_size,
            )
        finally:
            session.unpin(handle, query_ref)

    def detail(self) -> str:
        if self.index_source is None:
            return "k={}".format(self.k)
        return "k={} source={}".format(self.k, self.index_source)


class _ScoreBase(Operator):
    """Shared configuration of the Score implementations."""

    name = "Score"

    def __init__(self, compiled, k: int, workers: int,
                 has_eager_checks: bool, pruning: bool):
        self.compiled = compiled
        self.k = k
        self.workers = workers
        self.has_eager_checks = has_eager_checks
        self.pruning = pruning

    def detail(self) -> str:
        return "workers={}{}".format(self.workers, " pruning" if self.pruning else "")


class SequentialScore(_ScoreBase):
    """One shard covering the whole collection — the workers=1 path."""

    mode = "sequential"

    def run(self, ctx, candidates: Candidates) -> ScoredShards:
        from repro.engine.parallel import prune_shard, score_shard

        engine = ctx.engine
        trendlines = list(candidates.trendlines)
        ctx.stats.candidates = len(trendlines)
        control = ctx.control
        if control is not None:
            # The whole collection is one shard here; a cancel observed
            # before scoring starts drops it (MergeTopK then raises).
            control.begin(1)
            if control.cancelled:
                control.drop(1)
                return ScoredShards([], pruned=self.pruning, sequential=True)
        if self.pruning:
            shard = prune_shard(
                trendlines,
                self.compiled,
                self.k,
                engine.sample_size,
                engine.sample_points,
                kernel=engine.kernel,
            )
        else:
            shard = score_shard(
                trendlines,
                0,
                self.compiled,
                self.k,
                algorithm=engine.algorithm,
                enable_pushdown=engine.enable_pushdown,
                has_eager_checks=self.has_eager_checks,
                kernel=engine.kernel,
            )
        if control is not None:
            control.shard_completed()
        return ScoredShards([shard], pruned=self.pruning, sequential=True)


class ParallelScore(_ScoreBase):
    """Object-passing sharded scoring (thread pools, process+pickle)."""

    mode = "parallel"

    def run(self, ctx, candidates: Candidates) -> ScoredShards:
        from repro.engine.parallel import dispatch_prune_shards, dispatch_score_shards

        engine = ctx.engine
        trendlines = list(candidates.trendlines)
        ctx.stats.candidates = len(trendlines)
        pool = engine._resolve_pool(self.workers)
        if self.pruning:
            shards = dispatch_prune_shards(
                trendlines,
                self.compiled,
                self.k,
                pool,
                sample_size=engine.sample_size,
                sample_points=engine.sample_points,
                chunk_size=engine.chunk_size,
                kernel=engine.kernel,
                control=ctx.control,
            )
        else:
            shards = dispatch_score_shards(
                trendlines,
                self.compiled,
                self.k,
                pool,
                algorithm=engine.algorithm,
                enable_pushdown=engine.enable_pushdown,
                chunk_size=engine.chunk_size,
                has_eager_checks=self.has_eager_checks,
                kernel=engine.kernel,
                control=ctx.control,
            )
        return ScoredShards(list(shards), pruned=self.pruning)


class SharedMemoryScore(_ScoreBase):
    """Range-sharded scoring over the shm-published collection.

    The collection and compiled query are published once per session
    (acquired-and-pinned atomically, so concurrent evictions cannot
    unlink a segment mid-dispatch); shards travel as ``(handle, start,
    end)`` index ranges resolved against the worker-resident store.
    """

    mode = "shared-memory"

    def run(self, ctx, candidates: Candidates) -> ScoredShards:
        from repro.engine.parallel import dispatch_prune_ranges, dispatch_score_ranges

        engine = ctx.engine
        trendlines = candidates.trendlines
        ctx.stats.candidates = len(trendlines)
        if not len(trendlines):
            return ScoredShards([], pruned=self.pruning)
        pool = engine._resolve_pool(self.workers)
        session = engine._shm_session()
        handle, query_ref = session.acquire(trendlines, self.compiled)
        try:
            if self.pruning:
                shards = dispatch_prune_ranges(
                    handle,
                    query_ref,
                    self.k,
                    pool,
                    sample_size=engine.sample_size,
                    sample_points=engine.sample_points,
                    chunk_size=engine.chunk_size,
                    kernel=engine.kernel,
                    control=ctx.control,
                )
            else:
                shards = dispatch_score_ranges(
                    handle,
                    query_ref,
                    self.k,
                    pool,
                    algorithm=engine.algorithm,
                    enable_pushdown=engine.enable_pushdown,
                    chunk_size=engine.chunk_size,
                    has_eager_checks=self.has_eager_checks,
                    kernel=engine.kernel,
                    control=ctx.control,
                )
        finally:
            session.unpin(handle, query_ref)
        return ScoredShards(list(shards), pruned=self.pruning)


class GenerateAndScore(_ScoreBase):
    """The fused worker-side stage: Extract/Group + Score in one task.

    Consumes a :class:`DeferredGeneration`: shards are group-key index
    ranges over the (published or in-process) table, and each worker
    generates its own trendlines before scoring them — generation
    parallelizes with scoring, and for the process backend nothing but
    the shard's top-k ever crosses a process boundary.
    """

    mode = "worker-generate"

    def run(self, ctx, candidates: Candidates) -> ScoredShards:
        from repro.engine.parallel import dispatch_generate_score

        engine = ctx.engine
        deferred = candidates.deferred
        if deferred.group_count == 0:
            ctx.stats.candidates = 0
            if ctx.control is not None:
                ctx.control.begin(0)
            return ScoredShards([], worker_generated=True)
        source = deferred.source
        pool = engine._resolve_pool(self.workers)
        session = None
        if source.handle is not None:
            # Re-acquire (publish-or-reuse) the table and query handles
            # and pin both atomically: the session's table memo is
            # LRU-bounded, so a concurrent execute over other tables
            # must not unlink this dispatch's segment mid-flight.
            session = engine._shm_session()
            table_ref, query_ref = session.acquire_generation(
                source.table,
                self.compiled,
                columns=_required_columns(source.table, source.params),
            )
        else:
            table_ref = source.table
            query_ref = self.compiled
        try:
            shards = dispatch_generate_score(
                table_ref,
                source.params,
                deferred.normalize_y,
                deferred.plan,
                query_ref,
                deferred.group_count,
                self.k,
                pool,
                algorithm=engine.algorithm,
                enable_pushdown=engine.enable_pushdown,
                chunk_size=engine.chunk_size,
                has_eager_checks=self.has_eager_checks,
                kernel=engine.kernel,
                control=ctx.control,
            )
        finally:
            if session is not None:
                session.unpin(table_ref, query_ref)
        return ScoredShards(list(shards), worker_generated=True)


class MergeTopK(Operator):
    """Global top-k from per-shard heaps, under the shared total order.

    Also the stats rendezvous: per-shard counters (scored, eager
    discards, worker-side generation counts, pruning reports) fold into
    the call's :class:`ExecutionStats` here, exactly once.  And the
    *cancellation* rendezvous: when a cooperative cancel dropped shards
    upstream, the merge refuses to present a partial top-k and raises
    :class:`~repro.errors.SearchCancelled` instead.
    """

    name = "MergeTopK"
    mode = "(score desc, position asc)"

    def __init__(self, k: int):
        self.k = k

    def run(self, ctx, scored: ScoredShards):
        from repro.engine.executor import _to_matches
        from repro.engine.parallel import (
            aggregate_pruning_reports,
            merge_pruned_items,
            merge_shard_results,
        )
        from repro.errors import SearchCancelled

        control = ctx.control
        if control is not None and control.cancelled:
            completed, total = control.progress
            raise SearchCancelled(
                "search cancelled: {} of {} shard(s) completed, {} dropped"
                .format(completed, total, control.dropped)
            )
        stats = ctx.stats
        shards = scored.shards
        if not scored.sequential:
            stats.shards = len(shards)
        if scored.pruned:
            report = aggregate_pruning_reports(shards)
            stats.pruning = report
            stats.scored = report.completed
            items = merge_pruned_items(shards, self.k)
        else:
            for shard in shards:
                stats.scored += shard.scored
                stats.eager_discarded += shard.eager_discarded
            if scored.worker_generated:
                generated = sum(shard.generated for shard in shards)
                stats.extracted = generated
                stats.candidates = generated
            items = merge_shard_results(shards, self.k)
        return _to_matches(items)

    def detail(self) -> str:
        return "k={}".format(self.k)


@dataclass
class PhysicalPlan:
    """A compiled execution: the operator chain plus planner decisions."""

    operators: List[Operator]
    generation: str = "parent"

    def run(self, ctx: PipelineContext):
        value = None
        for operator in self.operators:
            value = operator.run(ctx, value)
        return value

    def explain(self) -> str:
        """The EXPLAIN rendering: one line per operator, in flow order."""
        lines = []
        for index, operator in enumerate(self.operators):
            prefix = "" if index == 0 else "  -> "
            lines.append(prefix + operator.describe())
        return "\n".join(lines)


def _resolve_generation(engine, parallel, use_pruning, force_parent=False) -> str:
    """Pick the Extract/Group implementation for one execution.

    Worker-side generation requires a parallel Score stage whose workers
    can reach the table — the thread backend (shared address space) or
    the process backend with the shm transport — and is skipped under
    pruning (the collective-pruning driver wants the materialized
    collection).  ``generation="auto"`` applies it on the process
    backend, where parent-side generation is the serial bottleneck the
    stage exists to remove, unless a trendline cache is configured — a
    cache marks an interactive session, where one parent-side generation
    pass feeds every repeat query from memory and also lets the shm
    transport reuse the published collection segment.  The thread
    backend defaults to parent-side — in-process generation is GIL-bound
    either way, so deferral buys nothing — but honors an explicit
    ``generation="worker"``.  ``force_parent`` marks executions whose
    plan needs the materialized collection in the parent (index pruning,
    precision casting) regardless of the backend's preference.
    """
    requested = getattr(engine, "generation", "auto")
    capable = (
        parallel
        and not use_pruning
        and not force_parent
        and (engine.backend == "thread" or (engine.backend == "process" and engine.shm))
    )
    if requested == "parent" or not capable:
        return "parent"
    if requested == "worker":
        return "worker"
    if engine.backend != "process" or engine.cache is not None:
        return "parent"
    return "worker"


def plan_pipeline(
    engine,
    compiled,
    k: int,
    table: Optional[Table] = None,
    params: Optional[VisualParams] = None,
    trendlines: Optional[Sequence[Trendline]] = None,
    workers: Optional[int] = None,
    memo: Optional[dict] = None,
) -> PhysicalPlan:
    """Compile one query execution into the staged operator DAG.

    The planner replaces the engine's historical ``_rank_into`` /
    ``_rank_parallel`` / ``_rank_parallel_shm`` branching: every
    decision — sequential vs parallel Score, object vs range transport,
    parent- vs worker-side Extract/Group, pruning — is made here, once,
    and the returned plan is a linear chain of operators whose
    implementations all preserve the total order *(score desc, position
    asc)*.  Pass either ``table`` + ``params`` (the execute paths) or
    pre-built ``trendlines`` (the rank paths); ``memo`` is the batch
    generation memo shared across an ``execute_many`` call.
    """
    from repro.engine.pruning import is_prunable

    effective = engine.workers if workers is None else engine._check_workers(workers)
    plan = plan_pushdown(compiled) if engine.enable_pushdown else None
    has_eager = plan.has_eager_checks if plan is not None else False
    use_pruning = (
        engine.enable_pruning
        and engine.algorithm == "segment-tree"
        and is_prunable(compiled)
    )
    parallel = effective > 1
    cast = getattr(engine, "precision", "float64") == "float32"
    # Index pruning needs a parent-materialized collection and a query
    # whose units the pyramid can bound; anything else is the full-scan
    # fallback, visible as the absence of an IndexPrune line in EXPLAIN.
    use_index = (
        getattr(engine, "index", False)
        and not use_pruning
        and k >= 1
        and index_supports(compiled)
    )

    operators: List[Operator] = []
    index_table: Optional[Table] = None
    index_key: Optional[tuple] = None
    if trendlines is not None:
        operators.append(PrebuiltScan(trendlines))
        generation = "parent"
    else:
        normalize_y = not query_constrains_y(compiled)
        generation = _resolve_generation(
            engine, parallel, use_pruning, force_parent=use_index or cast
        )
        scan_mode = (
            "shared-memory"
            if generation == "worker" and engine.backend == "process"
            else "in-process"
        )
        operators.append(ScanTable(table, params, scan_mode))
        operators.append(ExtractGroup(normalize_y, plan, generation, memo=memo))
        index_table = table
        index_key = (
            params,
            normalize_y,
            plan_fingerprint(plan),
            getattr(engine, "precision", "float64"),
        )
    if generation == "parent":
        if cast:
            operators.append(PrecisionCast())
        if use_index:
            operators.append(
                IndexPrune(compiled, k, effective, table=index_table,
                           index_key=index_key)
            )

    score_args = {
        "compiled": compiled,
        "k": k,
        "workers": effective,
        "has_eager_checks": has_eager,
        "pruning": use_pruning,
    }
    if generation == "worker":
        operators.append(GenerateAndScore(**score_args))
    elif not parallel:
        operators.append(SequentialScore(**score_args))
    elif engine.backend == "process" and engine.shm:
        operators.append(SharedMemoryScore(**score_args))
    else:
        operators.append(ParallelScore(**score_args))
    operators.append(MergeTopK(k))
    return PhysicalPlan(operators, generation=generation)
