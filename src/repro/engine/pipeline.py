"""The EXTRACT and GROUP physical operators (paper §5.3, Figure 5).

EXTRACT selects and aggregates records by the visual parameters
(z, x, y, filters, aggregation) and streams per-z point sets, sorted on
x.  GROUP turns each point set into a
:class:`~repro.engine.trendline.Trendline`: z-score normalization (when
the query has no raw-y constraints), optional binning by width ``b``,
and the per-bin summarized statistics of Theorem 5.1.  The push-down
hooks of §5.4 thread through both operators.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Optional, Tuple

import numpy as np

from repro.data.filters import apply_filters
from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.engine.pushdown import PushdownPlan, has_required_data
from repro.engine.trendline import Trendline, build_trendline
from repro.errors import DataError

_AGGREGATES = {
    "mean": np.mean,
    "sum": np.sum,
    "min": np.min,
    "max": np.max,
    "count": len,
    "median": np.median,
}


def extract(
    table: Table,
    params: VisualParams,
    plan: Optional[PushdownPlan] = None,
) -> Iterator[Tuple[Hashable, np.ndarray, np.ndarray]]:
    """EXTRACT: stream ``(z value, sorted x, aggregated y)`` per group.

    Duplicate x values inside a group are collapsed with the configured
    aggregate (the paper's Real-Estate case).  Push-down (a) skips groups
    lacking data in any pinned x span of the query.
    """
    for name in (params.z, params.x, params.y):
        if name not in table:
            raise DataError(
                "visual parameter column {!r} not in table (columns: {})".format(
                    name, table.column_names
                )
            )
    filtered = apply_filters(table, params.filters)
    aggregate = _AGGREGATES[params.aggregate]
    for key, indices in filtered.group_by(params.z):
        x = filtered.column(params.x)[indices].astype(float)
        y = filtered.column(params.y)[indices].astype(float)
        order = np.argsort(x, kind="stable")
        x, y = x[order], y[order]
        if plan is not None and plan.required_spans and not has_required_data(
            x, plan.required_spans
        ):
            continue
        unique_x, inverse = np.unique(x, return_inverse=True)
        if len(unique_x) != len(x):
            aggregated = np.empty(len(unique_x))
            for slot in range(len(unique_x)):
                aggregated[slot] = aggregate(y[inverse == slot])
            x, y = unique_x, aggregated
        if len(x) < 2:
            continue
        yield key, x, y


def group(
    streams: Iterator[Tuple[Hashable, np.ndarray, np.ndarray]],
    params: VisualParams,
    normalize_y: bool = True,
    plan: Optional[PushdownPlan] = None,
) -> Iterator[Trendline]:
    """GROUP: build one Trendline per z value.

    Push-down (c): when the plan says the query is fully pinned, the
    summarized statistics are materialized only over the union of the
    pinned x ranges.
    """
    for key, x, y in streams:
        keep_range = None
        if plan is not None and plan.keep_span is not None:
            lo_x, hi_x = plan.keep_span
            lo_bin = int(np.searchsorted(x, lo_x, side="left"))
            hi_bin = int(np.searchsorted(x, hi_x, side="right"))
            if params.bin_width is None and hi_bin - lo_bin >= 2:
                keep_range = (lo_bin, hi_bin)
        try:
            yield build_trendline(
                key,
                x,
                y,
                bin_width=params.bin_width,
                normalize_y=normalize_y,
                keep_range=keep_range,
            )
        except DataError:
            continue


def generate_trendlines(
    table: Table,
    params: VisualParams,
    normalize_y: bool = True,
    plan: Optional[PushdownPlan] = None,
) -> List[Trendline]:
    """EXTRACT ∘ GROUP: the candidate visualizations ``gen(R)``."""
    return list(group(extract(table, params, plan), params, normalize_y, plan))
