"""Trendline: the unit of matching produced by the GROUP operator (§5.3).

A :class:`Trendline` holds, for one value of the ``z`` attribute:

* the raw ``(x, y)`` points (kept for plotting, sketch matching, DTW and
  y-location constraints);
* the binned representation — one bin per raw point by default, or
  per-width bins when the user sets ``b`` — with per-bin representative
  coordinates; and
* :class:`~repro.engine.statistics.PrefixStats` accumulated in
  *normalized* coordinates (x scaled to [0, 1] over the trendline, y
  z-scored unless the query constrains raw y values), so the
  ``tan⁻¹``-based scores of Table 5 are scale-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.engine.statistics import PrefixStats
from repro.errors import DataError


@dataclass
class Trendline:
    """One candidate visualization, ready for segmentation and scoring."""

    key: Hashable
    x: np.ndarray
    y: np.ndarray
    bin_x: np.ndarray
    bin_y: np.ndarray
    norm_bin_y: np.ndarray
    prefix: PrefixStats
    y_mean: float
    y_std: float
    offset: int = 0  # index of the first materialized bin (push-down (c))
    #: Lazily built prefix sums over the normalized bin values
    #: (Σy, Σy², Σi·y) used by the vectorized LineUnit kernel.
    _line_prefix: Optional[tuple] = field(default=None, repr=False, compare=False)

    @property
    def n_bins(self) -> int:
        """Number of bins available for segmentation."""
        return self.prefix.bins

    def __getstate__(self) -> Dict[str, object]:
        """Drop the cached line-fit prefix from pickles.

        It is derived data one cumsum away from ``norm_bin_y``; shipping
        it with process-backend (``shm=False``) tasks would inflate the
        per-task payload by three n-length arrays per trendline — the
        exact cost the transport work exists to avoid.  Workers rebuild
        it lazily on first LineUnit score.
        """
        state = self.__dict__.copy()
        state["_line_prefix"] = None
        return state

    def line_prefix(self) -> tuple:
        """Prefix sums ``(Σy, Σy², Σi·y)`` over the normalized bin values.

        ``i`` is the global bin index, so the sums of any half-open bin
        range are two lookups and a subtraction — sufficient statistics
        to evaluate the straight-line RMSE of a LineUnit over *many*
        candidate ranges in one vectorized expression (the matrix-kernel
        fast path).  Built on first use and cached; the arrays are
        derived from ``norm_bin_y`` so shared-memory reattached
        trendlines build their own local copy.
        """
        if self._line_prefix is None:
            values = np.asarray(self.norm_bin_y, dtype=float)
            index = np.arange(len(values), dtype=float)
            zero = np.zeros(1)
            self._line_prefix = (
                np.concatenate([zero, np.cumsum(values)]),
                np.concatenate([zero, np.cumsum(values * values)]),
                np.concatenate([zero, np.cumsum(index * values)]),
            )
        return self._line_prefix

    def x_to_bin(self, x_value: float, clamp: bool = True) -> int:
        """Map a raw x coordinate to the index of the closest bin."""
        if not clamp and not self.bin_x[0] <= x_value <= self.bin_x[-1]:
            raise DataError("x={} outside trendline domain".format(x_value))
        index = int(np.searchsorted(self.bin_x, x_value))
        if index > 0 and (
            index == len(self.bin_x)
            or abs(self.bin_x[index - 1] - x_value) <= abs(self.bin_x[index] - x_value)
        ):
            index -= 1
        return int(np.clip(index, 0, len(self.bin_x) - 1))

    def normalize_y_value(self, value: float) -> float:
        """Map a raw y value into the z-scored space used for scoring."""
        return (value - self.y_mean) / self.y_std

    def segment_values(self, l: int, r: int) -> np.ndarray:
        """Normalized bin values of ``[l, r)`` (sketch matching, UDPs)."""
        return self.norm_bin_y[l:r]

    def segment_raw(self, l: int, r: int) -> Tuple[np.ndarray, np.ndarray]:
        """Raw (x, y) bin values of ``[l, r)``."""
        return self.bin_x[l:r], self.bin_y[l:r]


def cast_trendline(trendline: Trendline, dtype: Any) -> Trendline:
    """A copy of ``trendline`` with every float array cast to ``dtype``.

    The ``precision="float32"`` mode's workhorse: the cumulative prefix
    block is cast as one unit (keeping the fused-gather layout) and the
    cached line-fit prefix is dropped so it rebuilds in the new dtype.
    Casting float64 statistics to float32 rounds — this is explicitly an
    approximate representation, never part of the byte-identity
    contract.  ``dtype=float64`` returns the trendline unchanged.
    """
    dtype = np.dtype(dtype)
    if dtype == np.float64:
        return trendline
    prefix = trendline.prefix
    if prefix.stacked is not None:
        stacked = np.ascontiguousarray(prefix.stacked, dtype=dtype)
        cast_prefix = PrefixStats.from_cumulative(*stacked, stacked=stacked)
    else:
        cast_prefix = PrefixStats.from_cumulative(
            prefix.count.astype(dtype),
            prefix.sx.astype(dtype),
            prefix.sy.astype(dtype),
            prefix.sxy.astype(dtype),
            prefix.sxx.astype(dtype),
        )
    return Trendline(
        key=trendline.key,
        x=trendline.x.astype(dtype),
        y=trendline.y.astype(dtype),
        bin_x=trendline.bin_x.astype(dtype),
        bin_y=trendline.bin_y.astype(dtype),
        norm_bin_y=trendline.norm_bin_y.astype(dtype),
        prefix=cast_prefix,
        y_mean=trendline.y_mean,
        y_std=trendline.y_std,
        offset=trendline.offset,
    )


def trendline_extends(base: Trendline, extended: Trendline) -> bool:
    """True when ``extended`` is ``base`` plus appended bins, bit for bit.

    The gate for the DP suffix re-solve: state computed on ``base`` may
    seed a solve over ``extended`` only if every value the recurrence
    (and every unit scorer) could have read is unchanged — raw points,
    bin coordinates, normalized values, normalization constants, and the
    cumulative prefix arrays.  Appends that shift ``y_mean``/``y_std``
    or the x span rescale history and fail here, forcing the cold solve
    that byte-identity then requires.
    """
    if extended.n_bins < base.n_bins:
        return False
    if base.offset != extended.offset:
        return False
    if base.y_mean != extended.y_mean or base.y_std != extended.y_std:
        return False
    n = base.n_bins
    for ours, theirs in (
        (base.bin_x, extended.bin_x),
        (base.bin_y, extended.bin_y),
        (base.norm_bin_y, extended.norm_bin_y),
    ):
        if not np.array_equal(theirs[:n], ours):
            return False
    if not np.array_equal(extended.x[: len(base.x)], base.x):
        return False
    if not np.array_equal(extended.y[: len(base.y)], base.y):
        return False
    return extended.prefix.extends(base.prefix)


def build_trendline(
    key: Hashable,
    x: np.ndarray,
    y: np.ndarray,
    bin_width: Optional[float] = None,
    normalize_y: bool = True,
    keep_range: Optional[tuple] = None,
) -> Trendline:
    """Assemble a :class:`Trendline` from sorted raw points.

    ``keep_range`` is the push-down-(c) hook: when the query pins every
    segment, statistics are materialized only over ``[lo_bin, hi_bin)``
    (raw values are always kept in full for plotting).

    Points must already be sorted by x and aggregated to one y per x by
    the caller (the GROUP operator does both).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y):
        raise DataError("x and y lengths differ: {} vs {}".format(len(x), len(y)))
    if len(x) < 2:
        raise DataError("a trendline needs at least two points (key={!r})".format(key))
    if np.any(np.diff(x) < 0):
        raise DataError("trendline x values must be sorted (key={!r})".format(key))

    # Bin assignment: one bin per point, or fixed-width bins on the x axis.
    if bin_width is None or bin_width <= 0:
        bin_index = np.arange(len(x))
    else:
        bin_index = np.floor((x - x[0]) / bin_width).astype(int)
        # Re-number to consecutive ids so empty bins do not appear.
        _, bin_index = np.unique(bin_index, return_inverse=True)

    n_bins = int(bin_index[-1]) + 1
    counts = np.bincount(bin_index, minlength=n_bins)
    bin_x = np.bincount(bin_index, weights=x, minlength=n_bins) / counts
    bin_y = np.bincount(bin_index, weights=y, minlength=n_bins) / counts

    # Normalized coordinates: x in [0, 1] across the trendline, y z-scored.
    x_span = x[-1] - x[0]
    if x_span <= 0:
        raise DataError("trendline spans a single x value (key={!r})".format(key))
    if normalize_y:
        y_mean = float(y.mean())
        y_std = float(y.std())
        if y_std < 1e-12:
            y_std = 1.0
    else:
        y_mean, y_std = 0.0, 1.0
    norm_x = (x - x[0]) / x_span
    norm_y = (y - y_mean) / y_std
    norm_bin_y = (bin_y - y_mean) / y_std

    offset = 0
    if keep_range is not None:
        lo, hi = keep_range
        lo = max(0, int(lo))
        hi = min(n_bins, int(hi))
        if hi - lo < 2:
            raise DataError("keep_range {!r} leaves fewer than two bins".format(keep_range))
        point_mask = (bin_index >= lo) & (bin_index < hi)
        prefix = PrefixStats.from_binned(
            norm_x[point_mask], norm_y[point_mask], bin_index[point_mask] - lo
        )
        offset = lo
        bin_x = bin_x[lo:hi]
        bin_y = bin_y[lo:hi]
        norm_bin_y = norm_bin_y[lo:hi]
    else:
        prefix = PrefixStats.from_binned(norm_x, norm_y, bin_index)

    return Trendline(
        key=key,
        x=x,
        y=y,
        bin_x=bin_x,
        bin_y=bin_y,
        norm_bin_y=norm_bin_y,
        prefix=prefix,
        y_mean=y_mean,
        y_std=y_std,
        offset=offset,
    )
