"""Score bounds for ShapeQueries (paper §6.3, Table 7, Theorem 6.4).

Given the fitted slopes of the SegmentTree nodes at some level, every
unit's final score is bounded (Table 7); operator combination preserves
boundedness (Property 5.1): CONCAT's mean, AND's min and OR's max of
per-child bounds bound the combined score.  The two-stage pruning driver
uses the resulting per-visualization upper bounds to discard candidates
whose best possible score cannot reach the current top-k floor.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.engine.chains import Chain, CompiledQuery
from repro.engine.trendline import Trendline
from repro.engine.units import MIN_SEGMENT_BINS, SlopeUnit


def level_slopes(trendline: Trendline, ranges: List[Tuple[int, int]]) -> np.ndarray:
    """Fitted slopes of the given node ranges (vectorized)."""
    starts = np.array([l for l, _ in ranges])
    ends = np.array([r for _, r in ranges])
    valid = ends - starts >= MIN_SEGMENT_BINS
    if not valid.any():
        return np.zeros(1)
    return np.asarray(trendline.prefix.slopes_pairs(starts[valid], ends[valid]))


def chain_bounds(
    trendline: Trendline, chain: Chain, slopes: np.ndarray
) -> Tuple[float, float]:
    """(lower, upper) bound on a chain's weighted-sum score (Property 5.1)."""
    lower = 0.0
    upper = 0.0
    for cu in chain.units:
        if isinstance(cu.unit, SlopeUnit):
            unit_lower, unit_upper = cu.unit.bounds_from_slopes(slopes)
        else:
            unit_lower, unit_upper = (-1.0, 1.0)
        lower += cu.weight * unit_lower
        upper += cu.weight * unit_upper
    return lower, upper


def query_bounds(
    trendline: Trendline, query: CompiledQuery, ranges: List[Tuple[int, int]]
) -> Tuple[float, float]:
    """(lower, upper) bound on the query score from a level's node ranges.

    The query is the max over its alternative chains, so both bounds are
    maxima of the per-chain bounds.
    """
    slopes = level_slopes(trendline, ranges)
    lower = -1.0
    upper = -1.0
    for chain in query.chains:
        chain_lower, chain_upper = chain_bounds(trendline, chain, slopes)
        lower = max(lower, chain_lower)
        upper = max(upper, chain_upper)
    return lower, upper


def query_upper_bound(
    trendline: Trendline, query: CompiledQuery, window: int
) -> float:
    """Upper bound from a uniform grid of ``window``-bin ranges."""
    n = trendline.n_bins
    ranges = [
        (start, min(start + window, n))
        for start in range(0, max(1, n - MIN_SEGMENT_BINS + 1), window)
        if min(start + window, n) - start >= MIN_SEGMENT_BINS
    ]
    if not ranges:
        return 1.0
    return query_bounds(trendline, query, ranges)[1]
