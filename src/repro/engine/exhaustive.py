"""Exhaustive segmentation: the brute-force oracle (paper §6 "naive").

Enumerates every way of placing a chain's fuzzy units over the
visualization — ``O(n^(k−1))`` SegmentedVizs — and scores each.  This is
hopeless at paper scale (the paper's motivating example: 10⁴ layouts for
a 3-segment query over 100 points) but it is *exact*, including POSITION
references (each candidate layout is finalized with its own slope
context), so the test suite uses it as ground truth for the DP and
SegmentTree engines on small inputs.
"""

from __future__ import annotations

from itertools import product
from typing import List, Optional, Tuple

from repro.engine.chains import Chain, CompiledQuery
from repro.engine.dynamic import (
    ChainSolution,
    QueryResult,
    _finalize,
    plan_layout,
)
from repro.engine.trendline import Trendline
from repro.engine.units import INFEASIBLE, MIN_SEGMENT_BINS, run_min_length

#: Safety valve: refuse enumerations beyond this many layouts.
MAX_LAYOUTS = 2_000_000


def enumerate_run_placements(
    m: int, lo: int, hi: int, min_len: int = MIN_SEGMENT_BINS
) -> List[List[Tuple[int, int]]]:
    """All full covers of ``[lo, hi)`` by ``m`` units of >= ``min_len`` bins."""
    if m == 0:
        return [[]]
    if hi - lo < min_len * m:
        return []
    if m == 1:
        return [[(lo, hi)]]
    placements: List[List[Tuple[int, int]]] = []
    # First unit takes [lo, s); the rest recursively cover [s, hi).
    for s in range(lo + min_len, hi - min_len * (m - 1) + 1):
        for rest in enumerate_run_placements(m - 1, s, hi, min_len):
            placements.append([(lo, s)] + rest)
    return placements


def exhaustive_solve_chain(
    trendline: Trendline,
    chain: Chain,
    lo: Optional[int] = None,
    hi: Optional[int] = None,
    context: Optional[dict] = None,
) -> ChainSolution:
    """Exact best placement of a chain by enumerating all layouts."""
    lo = 0 if lo is None else lo
    hi = trendline.n_bins if hi is None else hi
    layout = plan_layout(trendline, chain, lo, hi)
    if layout is None:
        return ChainSolution(score=INFEASIBLE)

    per_piece: List[List[List[Optional[Tuple[int, int]]]]] = []
    piece_indices: List[List[int]] = []
    for piece in layout:
        piece_indices.append(piece.indices)
        if piece.kind == "pinned":
            per_piece.append([[(piece.start, piece.end)]])
            continue
        min_len = run_min_length(piece.start, piece.end, len(piece.indices))
        options = enumerate_run_placements(
            len(piece.indices), piece.start, piece.end, min_len
        )
        if not options:
            options = [[None] * len(piece.indices)]
        per_piece.append(options)

    total_layouts = 1
    for options in per_piece:
        total_layouts *= len(options)
    if total_layouts > MAX_LAYOUTS:
        raise MemoryError(
            "exhaustive enumeration of {} layouts refused; use the DP engine".format(
                total_layouts
            )
        )

    best: Optional[ChainSolution] = None
    for combo in product(*per_piece):
        placements: List[Optional[Tuple[int, int]]] = [None] * chain.k
        feasible = True
        for indices, bounds_list in zip(piece_indices, combo):
            for i, bounds in zip(indices, bounds_list):
                placements[i] = bounds
                if bounds is None:
                    feasible = False
        solution = _finalize(trendline, chain, placements, context, feasible)
        if best is None or solution.score > best.score:
            best = solution
    return best if best is not None else ChainSolution(score=INFEASIBLE)


def exhaustive_solve_query(
    trendline: Trendline,
    query: CompiledQuery,
    lo: Optional[int] = None,
    hi: Optional[int] = None,
) -> QueryResult:
    """Exact query score: max of :func:`exhaustive_solve_chain` over chains."""
    best: Optional[QueryResult] = None
    for index, chain in enumerate(query.chains):
        solution = exhaustive_solve_chain(trendline, chain, lo=lo, hi=hi)
        if best is None or solution.score > best.score:
            best = QueryResult(score=solution.score, chain_index=index, solution=solution)
    return best
