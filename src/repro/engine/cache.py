"""Result caching for interactive exploration sessions.

ShapeSearch's workload is interactive: an analyst iterates on queries
over the *same* table and visual parameters, so most of EXTRACT/GROUP
and query compilation is repeated work.  This module provides the two
caches the engine consults:

* a **trendline cache** keyed on ``(table fingerprint, VisualParams,
  normalize_y, plan key)`` — repeated searches over the same data skip
  EXTRACT/GROUP entirely;
* a **plan cache** keyed on the canonicalized query text (the printer's
  regex dialect, so ``"up then down"`` in natural language and
  ``"[p=up][p=down]"`` share one entry) — repeated queries skip
  normalize/validate/flatten compilation.

Both sit on a thread-safe :class:`LRUCache` with hit/miss accounting, so
the benchmarks can report hit rates and sessions stay bounded in memory.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional, Tuple

from repro.data.table import Table
from repro.data.visual_params import VisualParams


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache (reported by benchmarks)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Resident cost of the current entries (only maintained by caches
    #: constructed with a ``max_bytes`` budget; 0 otherwise).
    bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self):
        return "CacheStats(hits={}, misses={}, hit_rate={:.1%})".format(
            self.hits, self.misses, self.hit_rate
        )


class LRUCache:
    """A small thread-safe least-recently-used map with stats.

    ``get`` promotes the entry to most-recently-used; ``put`` evicts the
    oldest entry once ``capacity`` is exceeded.  All operations take an
    internal lock so concurrent searches on one session are safe.

    ``max_bytes`` adds an optional *cost budget* on top of the entry
    count: every ``put`` may carry a ``cost`` (bytes, typically), the
    cache tracks the resident total (``stats.bytes``) and evicts
    least-recently-used entries until the total fits.  An entry whose
    own cost exceeds the whole budget is not admitted at all (caching it
    would evict everything else for a value too big to keep).  The
    serving layer's cross-request result cache is the primary consumer.
    """

    _MISSING = object()

    def __init__(self, capacity: int = 64, max_bytes: Optional[int] = None):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1, got {}".format(capacity))
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(
                "cache max_bytes must be >= 1 or None, got {}".format(max_bytes)
            )
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        #: key -> (value, cost); cost is 0 for budget-less puts.
        self._entries: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._lock = threading.Lock()
        self._evict_listeners: list = []

    def add_evict_listener(self, listener) -> None:
        """Call ``listener(value)`` for every evicted entry.

        Listeners let a value's owner release resources pinned by cache
        residency — the engine uses this to unlink the shared-memory
        segment of an evicted trendline collection.  They run outside the
        cache lock (a listener may touch the cache) and are deduplicated,
        so engines sharing one :class:`EngineCache` register safely.
        """
        if listener not in self._evict_listeners:
            self._evict_listeners.append(listener)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Value for ``key`` (counted as hit/miss), or ``default``."""
        with self._lock:
            entry = self._entries.get(key, self._MISSING)
            if entry is self._MISSING:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[0]

    def put(self, key: Hashable, value: Any, cost: int = 0) -> None:
        """Insert/overwrite ``key``, evicting LRU entries when over budget.

        ``cost`` only matters for caches constructed with ``max_bytes``:
        entries are evicted oldest-first until both the entry count and
        the resident cost fit.  A single entry costing more than the
        whole budget is rejected (the cache is left as it was).
        """
        cost = max(0, int(cost))
        evicted = []
        with self._lock:
            if self.max_bytes is not None and cost > self.max_bytes:
                return
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.stats.bytes -= previous[1]
            self._entries[key] = (value, cost)
            self.stats.bytes += cost
            while len(self._entries) > self.capacity or (
                self.max_bytes is not None and self.stats.bytes > self.max_bytes
            ):
                dropped_value, dropped_cost = self._entries.popitem(last=False)[1]
                self.stats.bytes -= dropped_cost
                self.stats.evictions += 1
                evicted.append(dropped_value)
        for dropped in evicted:
            for listener in self._evict_listeners:
                listener(dropped)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats.bytes = 0


def table_fingerprint(table: Table) -> str:
    """A content digest of a table, stable across processes.

    Tables expose read-only columns, so the digest is computed once and
    memoized on the instance (in-place mutation raises rather than
    staleing the memo).  Column names, dtypes and raw bytes all
    contribute: a table built with a renamed column, a changed value, or
    reordered rows gets a different fingerprint and misses the cache.
    The digest state is per-column, so :meth:`Table.append_rows` extends
    it incrementally instead of rehashing the whole table (see
    :func:`repro.data.table.content_fingerprint`, which this wraps).
    """
    from repro.data.table import content_fingerprint

    return content_fingerprint(table)


def canonical_query_text(node) -> str:
    """The canonicalized regex form used as the plan-cache key.

    Every front-end (natural language, regex dialect, sketch) reduces to
    one ShapeQuery AST; printing it in the canonical dialect gives a key
    under which equivalent phrasings share one compiled plan.
    """
    from repro.algebra.printer import to_regex

    return to_regex(node)


def trendline_cache_key(
    table: Table,
    params: VisualParams,
    normalize_y: bool,
    plan_key: Optional[Tuple] = None,
) -> Tuple:
    """Cache key for one generated trendline collection.

    ``plan_key`` captures any push-down effects on generation (required
    spans / keep span); it is ``None`` for the common fuzzy-query case,
    so all fuzzy queries over the same data share one entry.
    """
    return (table_fingerprint(table), params, bool(normalize_y), plan_key)


def plan_fingerprint(plan) -> Optional[Tuple]:
    """Key of a push-down plan's generation-visible effects (or None).

    Only ``required_spans`` and ``keep_span`` change what EXTRACT/GROUP
    produce; plans without them generate identical trendlines and map to
    the shared ``None`` key.
    """
    if plan is None:
        return None
    required = tuple(plan.required_spans) if plan.required_spans else ()
    keep = tuple(plan.keep_span) if plan.keep_span is not None else None
    if not required and keep is None:
        return None
    return (required, keep)


@dataclass
class EngineCache:
    """The engine-level cache pair: generated trendlines + compiled plans.

    Pass ``cache=EngineCache()`` (or simply ``cache=True``) to
    :class:`~repro.engine.executor.ShapeSearchEngine` /
    :class:`~repro.api.ShapeSearch`; share one instance across engines to
    share the cached work.
    """

    trendlines: LRUCache = field(default_factory=lambda: LRUCache(capacity=32))
    plans: LRUCache = field(default_factory=lambda: LRUCache(capacity=256))
    #: Shape indexes (engine/shape_index.py), keyed by table content
    #: fingerprint + generation inputs — like trendlines, shareable
    #: across engines because the index is a pure function of content.
    #: When the engine is configured with an artifact store (``store=``),
    #: this LRU is the hot tier above the memory-mapped disk tier
    #: (repro.engine.artifacts): an eviction here costs a verified
    #: ``np.memmap`` load, not a rebuild, and an entry loaded from disk
    #: is promoted back through this cache on first use.
    indexes: LRUCache = field(default_factory=lambda: LRUCache(capacity=16))

    @classmethod
    def with_capacity(
        cls, trendlines: int = 32, plans: int = 256, indexes: int = 16
    ) -> "EngineCache":
        return cls(
            trendlines=LRUCache(capacity=trendlines),
            plans=LRUCache(capacity=plans),
            indexes=LRUCache(capacity=indexes),
        )

    @property
    def stats(self) -> CacheStats:
        """Combined hit/miss accounting across all three caches."""
        combined = CacheStats(
            hits=self.trendlines.stats.hits + self.plans.stats.hits
            + self.indexes.stats.hits,
            misses=self.trendlines.stats.misses + self.plans.stats.misses
            + self.indexes.stats.misses,
            evictions=self.trendlines.stats.evictions + self.plans.stats.evictions
            + self.indexes.stats.evictions,
        )
        return combined

    def clear(self) -> None:
        self.trendlines.clear()
        self.plans.clear()
        self.indexes.clear()


def coerce_cache(cache) -> Optional[EngineCache]:
    """Normalize the ``cache=`` option: None/False off, True fresh, or own."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return EngineCache()
    if isinstance(cache, EngineCache):
        return cache
    raise TypeError(
        "cache must be None, a bool, or an EngineCache, got {!r}".format(type(cache))
    )
