"""The SegmentTree pattern-aware segmentation algorithm (paper §6.2).

A balanced binary tree is (logically) laid over the bins of the
visualization; leaves span 2–3 bins.  At every node the algorithm keeps,
for each contiguous *subchain* ``[i..j]`` of the query's units, the best
placement whose segments exactly cover the node's range — the paper's
per-node ShapeExpr tables of Figure 7.  A parent node combines its
children's tables two ways:

* **adjacent** — left ``[i..m]`` next to right ``[m+1..j]``;
* **merge** — left ``[i..m]`` with right ``[m..j]``: the shared unit
  ``m`` spans the node boundary, so its two partial segments are merged
  and the unit is *re-scored* over the union via the summarized
  statistics (the duplicate-resolution rule the paper walks through at
  node 5 of Figure 7, resolved by maximum score per Closure).

Under the paper's Closure assumption (a break point found in a smaller
region stays a break point in enclosing regions) the root's ``[0..k−1]``
entry is optimal; without it the result is an approximation whose
accuracy Figure 12 measures against the DP oracle.  Node work is
O(n·k³) — linear in the trendline length (Theorem 6.3; the paper quotes
the coarser O(n·k⁴) bound from the k²×k² cross product).

The tree is built bottom-up one level at a time
(:class:`IncrementalSegmentTree`), which is what the two-stage pruning
driver (§6.3) exploits: it advances all candidate visualizations in
rounds and prunes between levels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.chains import ChainUnit
from repro.engine.trendline import Trendline
from repro.engine.units import MIN_SEGMENT_BINS, run_min_length

#: A table entry: (weighted score sum, per-unit placements, per-unit scores).
Entry = Tuple[float, Tuple[Tuple[int, int], ...], Tuple[float, ...]]

#: A node table: subchain (i, j) -> best Entry.
Table = Dict[Tuple[int, int], Entry]


def leaf_ranges(lo: int, hi: int, size: int = MIN_SEGMENT_BINS) -> List[Tuple[int, int]]:
    """Chop ``[lo, hi)`` into ``size``-bin leaves; the last absorbs a remainder.

    The leaf size doubles as the minimum unit width: every placement the
    tree produces is a union of leaves, so sizing leaves at the
    perceptual minimum (:func:`repro.engine.units.run_min_length`)
    enforces it structurally.
    """
    ranges: List[Tuple[int, int]] = []
    position = lo
    while hi - position >= 2 * size:
        ranges.append((position, position + size))
        position += size
    ranges.append((position, hi))
    return ranges


class IncrementalSegmentTree:
    """Level-wise bottom-up construction of the SegmentTree tables."""

    def __init__(
        self,
        trendline: Trendline,
        units: List[ChainUnit],
        lo: int,
        hi: int,
        context: Optional[dict] = None,
        leaf_size: Optional[int] = None,
    ):
        self.trendline = trendline
        self.units = units
        self.context = context
        self.min_len = run_min_length(lo, hi, max(1, len(units)))
        if leaf_size is None:
            # Finer than the minimum unit width so break points stay close
            # to DP's; the width floor is enforced on interior placements
            # during combination instead (boundary placements keep growing
            # through merges at higher levels).
            leaf_size = max(MIN_SEGMENT_BINS, self.min_len // 2)
        self.ranges = leaf_ranges(lo, hi, leaf_size)
        self.tables = self._leaf_tables()

    @property
    def done(self) -> bool:
        return len(self.tables) <= 1

    def step(self) -> None:
        """Combine one level: adjacent node pairs become parent nodes."""
        if self.done:
            return
        final = len(self.tables) == 2
        new_tables: List[Table] = []
        new_ranges: List[Tuple[int, int]] = []
        for i in range(0, len(self.tables) - 1, 2):
            new_tables.append(
                self._combine(self.tables[i], self.tables[i + 1], final=final)
            )
            new_ranges.append((self.ranges[i][0], self.ranges[i + 1][1]))
        if len(self.tables) % 2 == 1:
            new_tables.append(self.tables[-1])
            new_ranges.append(self.ranges[-1])
        self.tables = new_tables
        self.ranges = new_ranges

    def run(self) -> Optional[Entry]:
        """Build to the root and return the full-chain entry (or None)."""
        while not self.done:
            self.step()
        return self.tables[0].get((0, len(self.units) - 1)) if self.tables else None

    # -- internals ---------------------------------------------------------
    def _leaf_tables(self) -> List[Table]:
        """Score every unit over every leaf range in one batched pass.

        This is the same unit kernel the matrix DP rides
        (:meth:`~repro.engine.units.CompiledUnit.score_pairs`): slope and
        line units evaluate all leaves with one vectorized prefix query
        instead of one Python call per (unit, leaf) pair.
        """
        starts = np.array([l for l, _ in self.ranges])
        ends = np.array([r for _, r in self.ranges])
        tables: List[Table] = [{} for _ in self.ranges]
        for i, cu in enumerate(self.units):
            scores = cu.unit.score_pairs(self.trendline, starts, ends, self.context)
            for table, (l, r), score in zip(tables, self.ranges, scores):
                score = float(score)
                table[(i, i)] = (cu.weight * score, ((l, r),), (score,))
        return tables

    def _combine(self, left: Table, right: Table, final: bool = False) -> Table:
        """Combine two sibling tables; ``final`` marks the root combine,
        where boundary placements can no longer grow and entries meeting
        the width floor on *every* placement are preferred."""
        trendline = self.trendline
        units = self.units
        context = self.context
        out: Table = {}
        strict: Table = {}

        def offer(key, entry):
            current = out.get(key)
            if current is None or entry[0] > current[0]:
                out[key] = entry
            if final:
                places = entry[1]
                if (
                    places[0][1] - places[0][0] >= self.min_len
                    and places[-1][1] - places[-1][0] >= self.min_len
                ):
                    best = strict.get(key)
                    if best is None or entry[0] > best[0]:
                        strict[key] = entry

        right_by_start: Dict[int, List[Tuple[int, Entry]]] = {}
        for (i2, j), entry in right.items():
            right_by_start.setdefault(i2, []).append((j, entry))

        min_len = self.min_len
        for (i, m), (l_wsum, l_place, l_scores) in left.items():
            # Adjacent: [i..m] ⊗ [m+1..j].  A placement that becomes
            # *interior* here is final and must meet the width floor.
            left_last_ok = i == m or l_place[-1][1] - l_place[-1][0] >= min_len
            for j, (r_wsum, r_place, r_scores) in right_by_start.get(m + 1, ()):
                if not left_last_ok:
                    break
                if m + 1 < j and r_place[0][1] - r_place[0][0] < min_len:
                    continue
                offer((i, j), (l_wsum + r_wsum, l_place + r_place, l_scores + r_scores))

            # Merge: the shared unit m spans the node boundary.
            for j, (r_wsum, r_place, r_scores) in right_by_start.get(m, ()):
                cu = units[m]
                a = l_place[-1][0]
                b = r_place[0][1]
                if i < m and m < j and b - a < min_len:
                    continue
                merged_score = cu.unit.score(trendline, a, b, context)
                wsum = (
                    l_wsum
                    - cu.weight * l_scores[-1]
                    + r_wsum
                    - cu.weight * r_scores[0]
                    + cu.weight * merged_score
                )
                offer(
                    (i, j),
                    (
                        wsum,
                        l_place[:-1] + ((a, b),) + r_place[1:],
                        l_scores[:-1] + (merged_score,) + r_scores[1:],
                    ),
                )
        if final:
            # Width-floor-compliant entries win at the root; entries with
            # an undersized boundary survive only as fallbacks.
            out.update(strict)
        return out


def segment_tree_run_solver(
    trendline: Trendline,
    units: List[ChainUnit],
    lo: int,
    hi: int,
    context: Optional[dict],
) -> Optional[List[Tuple[int, int]]]:
    """Drop-in run solver for :func:`repro.engine.dynamic.solve_chain`."""
    m = len(units)
    if m == 0:
        return []
    if hi - lo < MIN_SEGMENT_BINS * m:
        return None
    if m == 1:
        return [(lo, hi)]
    tree = IncrementalSegmentTree(trendline, units, lo, hi, context)
    entry = tree.run()
    if entry is None:
        return None
    return list(entry[1])
