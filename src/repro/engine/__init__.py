"""ShapeSearch execution engine (paper §5–§6)."""

from repro.engine.cache import CacheStats, EngineCache, LRUCache
from repro.engine.chains import Chain, ChainUnit, CompiledQuery, compile_query
from repro.engine.executor import ALGORITHMS, ExecutionStats, Match, ShapeSearchEngine
from repro.engine.parallel import BACKENDS, ParallelEngine, WorkerPool
from repro.engine.statistics import PrefixStats, SummaryStats
from repro.engine.trendline import Trendline, build_trendline

__all__ = [
    "Chain",
    "ChainUnit",
    "CompiledQuery",
    "compile_query",
    "ALGORITHMS",
    "BACKENDS",
    "ExecutionStats",
    "Match",
    "ShapeSearchEngine",
    "ParallelEngine",
    "WorkerPool",
    "EngineCache",
    "LRUCache",
    "CacheStats",
    "PrefixStats",
    "SummaryStats",
    "Trendline",
    "build_trendline",
]
