"""Two-stage collective pruning (paper §6.3).

Stage 1 — *identifying lower bounds*: a small sample of candidate
visualizations is scored with the DP algorithm on a uniform subsample of
their points; the k-th best sampled score becomes the initial top-k
floor λ.

Stage 2 — *refining and pruning*: every candidate builds its SegmentTree
bottom-up, but all candidates advance **together**, a few levels per
round.  Between rounds each candidate's upper bound is recomputed from
its current level's node slopes (Table 7 + Property 5.1 composition, see
:mod:`repro.engine.bounds`); candidates whose upper bound falls below λ
are discarded without ever reaching the root.  Candidates that complete
update λ through a top-k heap, tightening the floor for everyone else —
which is why the technique shines on needle-in-a-haystack patterns.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.chains import CompiledQuery
from repro.engine.dynamic import ChainSolution, QueryResult, _finalize, solve_query
from repro.engine.segment_tree import IncrementalSegmentTree
from repro.engine.shape_index import survives_floor
from repro.engine.trendline import Trendline, build_trendline
from repro.engine.units import INFEASIBLE, MIN_SEGMENT_BINS


@dataclass
class PruningReport:
    """Bookkeeping of what the two stages did (asserted on in benchmarks)."""

    candidates: int = 0
    sampled: int = 0
    pruned: int = 0
    completed: int = 0
    rounds: int = 0


@dataclass
class _Candidate:
    trendline: Trendline
    trees: List[IncrementalSegmentTree]
    alive: bool = True


def tree_upper_bound(trendline: Trendline, chain, tree: IncrementalSegmentTree) -> float:
    """Upper bound on a chain's final score from its current tables.

    Every unit's final segment is either one of its placements recorded
    in a current entry, or a merge of two boundary placements — whose
    fitted slope is (approximately) a blend of the recorded placements'
    slopes.  Per Table 7 the unit's score is therefore bounded by the
    score extremes over those recorded slopes (with the flat/θ straddle
    special case and the regression-slack margin of
    :attr:`SlopeUnit.BOUNDS_MARGIN`); Property 5.1 composes the per-unit
    bounds through the CONCAT weights.  Unlike bounds from raw
    level-granularity windows, this stays valid for placements finer
    than the current level.
    """
    import numpy as np

    from repro.engine.units import SlopeUnit

    k = len(chain.units)
    slopes_per_unit: List[List[float]] = [[] for _ in range(k)]
    prefix = trendline.prefix
    for table in tree.tables:
        for (i, _j), entry in table.items():
            for offset, (start, end) in enumerate(entry[1]):
                if end - start >= MIN_SEGMENT_BINS:
                    slopes_per_unit[i + offset].append(prefix.slope(start, end))
    upper = 0.0
    for cu, slopes in zip(chain.units, slopes_per_unit):
        if slopes and isinstance(cu.unit, SlopeUnit):
            _, unit_upper = cu.unit.bounds_from_slopes(np.asarray(slopes))
        else:
            unit_upper = 1.0
        upper += cu.weight * unit_upper
    return upper


def is_prunable(query: CompiledQuery) -> bool:
    """The collective driver handles fully fuzzy queries (paper §6)."""
    return all(
        not cu.unit.location.is_x_pinned and cu.unit.location.iterator is None
        for chain in query.chains
        for cu in chain.units
    )


def decimate(trendline: Trendline, max_points: int) -> Trendline:
    """Uniform point subsample used by the stage-1 sampler."""
    n = len(trendline.bin_x)
    if n <= max_points:
        return trendline
    stride = max(1, n // max_points)
    return build_trendline(
        trendline.key,
        trendline.bin_x[::stride],
        trendline.bin_y[::stride],
    )


def prune_and_rank(
    trendlines: List[Trendline],
    query: CompiledQuery,
    k: int,
    sample_size: int = 20,
    sample_points: int = 64,
    steps_per_round: int = 2,
    report: Optional[PruningReport] = None,
    kernel: Optional[str] = None,
) -> List[Tuple[Trendline, QueryResult]]:
    """Top-k visualizations for a fuzzy query under two-stage pruning.

    ``kernel`` selects the DP transition kernel for the stage-1 sampled
    solves (the two kernels are byte-identical, so this only matters for
    honest loop-vs-matrix timing comparisons).
    """
    report = report if report is not None else PruningReport()
    report.candidates = len(trendlines)

    # ---- Stage 1: sampled lower bound ---------------------------------
    floor = -float("inf")
    if trendlines and sample_size > 0:
        stride = max(1, len(trendlines) // sample_size)
        sampled_scores: List[float] = []
        for trendline in trendlines[::stride][:sample_size]:
            reduced = decimate(trendline, sample_points)
            result = solve_query(reduced, query, kernel=kernel)
            sampled_scores.append(result.score)
            report.sampled += 1
        if len(sampled_scores) >= k:
            floor = sorted(sampled_scores, reverse=True)[k - 1]

    # ---- Stage 2: collective level-wise refinement ---------------------
    candidates: List[_Candidate] = []
    heap: List[Tuple[float, int]] = []  # (score, candidate id) min-heap
    results: Dict[int, Tuple[Trendline, QueryResult]] = {}

    def offer(identifier: int, trendline: Trendline, result: QueryResult) -> None:
        nonlocal floor
        report.completed += 1
        results[identifier] = (trendline, result)
        heapq.heappush(heap, (result.score, identifier))
        if len(heap) > k:
            heapq.heappop(heap)
        if len(heap) == k:
            floor = max(floor, heap[0][0])

    for identifier, trendline in enumerate(trendlines):
        if trendline.n_bins < MIN_SEGMENT_BINS * query.k:
            continue
        trees = [
            IncrementalSegmentTree(trendline, list(chain.units), 0, trendline.n_bins)
            for chain in query.chains
        ]
        candidates.append(_Candidate(trendline=trendline, trees=trees))

    active = list(range(len(candidates)))
    while active:
        report.rounds += 1
        still_active: List[int] = []
        for index in active:
            candidate = candidates[index]
            for _ in range(steps_per_round):
                for tree in candidate.trees:
                    tree.step()
            if all(tree.done for tree in candidate.trees):
                result = _complete(candidate, query)
                offer(index, candidate.trendline, result)
                continue
            upper = max(
                tree_upper_bound(candidate.trendline, chain, tree)
                for chain, tree in zip(query.chains, candidate.trees)
            )
            if not survives_floor(upper, floor):
                candidate.alive = False
                report.pruned += 1
                continue
            still_active.append(index)
        active = still_active

    ranked = sorted(results.values(), key=lambda item: (-item[1].score, str(item[0].key)))
    return ranked[:k]


def _complete(candidate: _Candidate, query: CompiledQuery) -> QueryResult:
    """Assemble the final QueryResult from the finished trees."""
    best: Optional[QueryResult] = None
    for chain_index, (chain, tree) in enumerate(zip(query.chains, candidate.trees)):
        entry = tree.tables[0].get((0, chain.k - 1)) if tree.tables else None
        if entry is None:
            solution = ChainSolution(score=INFEASIBLE)
        else:
            placements = list(entry[1])
            solution = _finalize(candidate.trendline, chain, placements, None, True)
        if best is None or solution.score > best.score:
            best = QueryResult(score=solution.score, chain_index=chain_index, solution=solution)
    return best
