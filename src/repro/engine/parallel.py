"""Parallel batch execution: shard candidates across a worker pool.

The SEGMENT + SCORE loop of :class:`~repro.engine.executor.ShapeSearchEngine`
is embarrassingly parallel across candidate visualizations: each
trendline is scored independently and only the top-k survive.  This
module shards a candidate collection into chunks, scores each chunk on a
``concurrent.futures`` pool (thread or process backend), and merges the
per-shard top-k heaps deterministically.

Determinism contract: every candidate carries its global position in
the input collection, shards keep their local top-k under the total
order *(score desc, position asc)*, and the merge re-applies the same
order — so ``workers=N`` returns byte-identical results to ``workers=1``
for any N and any chunk size, including exact score ties.

Backend notes: the ``"thread"`` backend is the safe default (shared
memory, custom UDPs visible, modest speedup since the inner numpy
kernels release the GIL only briefly); the ``"process"`` backend gives
real multi-core scaling for large collections.  With the shared-memory
transport (:mod:`repro.engine.shm`, the engine's default for the process
backend) shards travel as ``(handle, start, end)`` index ranges resolved
against a worker-resident collection, so per-task serialization is a few
hundred bytes; without it each task pickles its chunk of Trendlines (on
platforms with ``fork`` start, custom UDPs registered before the first
search are inherited by the workers either way).
"""

from __future__ import annotations

import heapq
import os
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.engine.chains import CompiledQuery
from repro.engine.dynamic import QueryResult, solve_query
from repro.engine.exhaustive import exhaustive_solve_query
from repro.engine.greedy import greedy_run_solver
from repro.engine.pruning import PruningReport, prune_and_rank
from repro.engine.pushdown import eager_upper_bound, plan_pushdown
from repro.engine.segment_tree import segment_tree_run_solver
from repro.engine.trendline import Trendline
from repro.errors import ExecutionError

#: Supported worker-pool backends.
BACKENDS = ("thread", "process")

#: Shards per worker when no explicit chunk size is given — a few chunks
#: per worker lets the pool balance uneven shard costs.
_CHUNKS_PER_WORKER = 4


def default_workers() -> int:
    """Worker count used when ``workers=None``: one per available core."""
    return max(1, os.cpu_count() or 1)


@dataclass
class ShardResult:
    """One shard's local top-k plus its slice of the execution counters.

    ``items`` hold ``(score, global position, trendline, result)`` so the
    merge can re-establish the global candidate order; the counters are
    summed into the caller's :class:`ExecutionStats` — per-shard stats
    are never shared, which is what makes concurrent execution safe.
    """

    items: List[Tuple[float, int, Trendline, QueryResult]] = field(default_factory=list)
    scored: int = 0
    eager_discarded: int = 0
    #: Trendlines generated worker-side for this shard (the fused
    #: Extract/Group → Score tasks of repro.engine.pipeline; 0 when the
    #: shard scored a parent-materialized collection).
    generated: int = 0
    pruning: Optional[PruningReport] = None


#: Run solvers by algorithm name — the single dispatch table; the
#: executor's sequential and score_one paths route through solve_one too.
#: ``"dp"`` resolves through :func:`repro.engine.dynamic.fuzzy_run_solver`
#: so the kernel choice (matrix/loop) applies.
RUN_SOLVERS = {
    "dp": None,  # dynamic's own DP (kernel-selected in solve_one)
    "segment-tree": segment_tree_run_solver,
    "greedy": greedy_run_solver,
}


def solve_one(
    trendline: Trendline,
    query: CompiledQuery,
    algorithm: str,
    kernel: Optional[str] = None,
) -> QueryResult:
    """Score one candidate with the named algorithm.

    ``kernel`` picks the DP transition kernel (``"matrix"``/``"loop"``,
    None = the module default); it only affects ``algorithm="dp"`` — the
    two kernels are byte-identical, so this is a benchmarking/oracle
    knob, not a semantic one.
    """
    if algorithm == "exhaustive":
        return exhaustive_solve_query(trendline, query)
    if algorithm == "dp":
        # kernel= (rather than run_solver=) records the choice in the
        # solve context, so nested sub-queries and AND exact-covers run
        # the same kernel as the top-level chains.
        return solve_query(trendline, query, kernel=kernel)
    return solve_query(trendline, query, run_solver=RUN_SOLVERS[algorithm])


def score_shard(
    trendlines: Sequence[Trendline],
    base_position: int,
    query: CompiledQuery,
    k: int,
    algorithm: str = "segment-tree",
    enable_pushdown: bool = True,
    has_eager_checks: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> ShardResult:
    """Score one shard and keep its local top-k.

    The local heap uses the same total order as the merge —
    *(score desc, global position asc)* — so a candidate in the global
    top-k is always in its shard's local top-k, and ties at the boundary
    resolve identically no matter how candidates were sharded.

    Eager discarding (push-down (b)) tests the candidate's optimistic
    bound against the *shard-local* top-k floor — still exact (a shard
    hands over a strict superset of its global-top-k members), though
    the ``eager_discarded`` counter can differ across worker counts
    since each shard's floor tightens independently.
    """
    shard = ShardResult()
    if has_eager_checks is None:
        has_eager_checks = enable_pushdown and plan_pushdown(query).has_eager_checks
    check_eager = enable_pushdown and has_eager_checks
    heap: List[tuple] = []  # min-heap on (score, -position): worst kept item on top
    for offset, trendline in enumerate(trendlines):
        position = base_position + offset
        if (
            check_eager
            and len(heap) == k
            and eager_upper_bound(trendline, query) <= heap[0][0]
        ):
            shard.eager_discarded += 1
            continue
        result = solve_one(trendline, query, algorithm, kernel=kernel)
        shard.scored += 1
        item = (result.score, -position, trendline, result)
        if len(heap) < k:
            heapq.heappush(heap, item)
        elif item[:2] > heap[0][:2]:
            heapq.heapreplace(heap, item)
    shard.items = [
        (score, -neg_position, trendline, result)
        for score, neg_position, trendline, result in heap
    ]
    return shard


def prune_shard(
    trendlines: Sequence[Trendline],
    query: CompiledQuery,
    k: int,
    sample_size: int,
    sample_points: int,
    kernel: Optional[str] = None,
) -> ShardResult:
    """Run the two-stage collective pruning driver on one shard.

    Pruning is exact (candidates are discarded only when their upper
    bound is provably below the shard's top-k floor), so each shard's
    top-k is a superset of its contribution to the global top-k and the
    merge stays correct.
    """
    report = PruningReport()
    ranked = prune_and_rank(
        list(trendlines),
        query,
        k,
        sample_size=sample_size,
        sample_points=sample_points,
        report=report,
        kernel=kernel,
    )
    shard = ShardResult(pruning=report, scored=report.completed)
    shard.items = [
        (result.score, position, trendline, result)
        for position, (trendline, result) in enumerate(ranked)
    ]
    return shard


def score_shard_range(
    handle,
    start: int,
    end: int,
    query,
    k: int,
    algorithm: str = "segment-tree",
    enable_pushdown: bool = True,
    has_eager_checks: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> ShardResult:
    """Score bins ``[start, end)`` of a shared-memory-resident collection.

    ``handle`` is a :class:`~repro.engine.shm.CollectionHandle` and
    ``query`` a compiled query or a
    :class:`~repro.engine.shm.QueryHandle`; both resolve against the
    worker-resident store (attached on first use), so the task itself is
    only a manifest and two integers.  Scoring and the total order are
    exactly :func:`score_shard` over the same global positions, which is
    what keeps results byte-identical across transports.
    """
    from repro.engine.shm import resolve_collection, resolve_query

    trendlines = resolve_collection(handle)
    compiled = resolve_query(query)
    return score_shard(
        trendlines[start:end],
        start,
        compiled,
        k,
        algorithm=algorithm,
        enable_pushdown=enable_pushdown,
        has_eager_checks=has_eager_checks,
        kernel=kernel,
    )


def prune_shard_range(
    handle,
    start: int,
    end: int,
    query,
    k: int,
    sample_size: int,
    sample_points: int,
    kernel: Optional[str] = None,
) -> ShardResult:
    """Range-based twin of :func:`prune_shard` over the worker store."""
    from repro.engine.shm import resolve_collection, resolve_query

    trendlines = resolve_collection(handle)
    compiled = resolve_query(query)
    return prune_shard(
        trendlines[start:end], compiled, k, sample_size, sample_points, kernel=kernel
    )


def merge_shard_results(
    shards: Sequence[ShardResult], k: int
) -> List[Tuple[float, int, Trendline, QueryResult]]:
    """Global top-k from per-shard top-k heaps, under the shared order."""
    merged = [item for shard in shards for item in shard.items]
    merged.sort(key=lambda item: (-item[0], item[1]))
    return merged[:k]


def make_range_chunks(
    count: int, workers: int, chunk_size: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Split ``count`` candidates into ``(start, end)`` index ranges.

    This is the sizing rule for *every* sharding path — the object-passing
    chunks below reuse it — so range-based (shared-memory) and
    object-based shards cover identical positions for any configuration.
    """
    if count == 0:
        return []
    if chunk_size is None:
        chunk_size = max(1, -(-count // (workers * _CHUNKS_PER_WORKER)))
    if chunk_size < 1:
        raise ExecutionError("chunk_size must be >= 1, got {}".format(chunk_size))
    return [
        (start, min(start + chunk_size, count)) for start in range(0, count, chunk_size)
    ]


def make_chunks(
    trendlines: Sequence[Trendline], workers: int, chunk_size: Optional[int] = None
) -> List[Tuple[int, Sequence[Trendline]]]:
    """Split candidates into ``(base position, chunk)`` shards."""
    return [
        (start, trendlines[start:end])
        for start, end in make_range_chunks(len(trendlines), workers, chunk_size)
    ]


def _shutdown_executor(executor) -> None:
    """`weakref.finalize` target: release a pool the owner never closed."""
    executor.shutdown(wait=True)


class WorkerPool:
    """A lazily created, reusable ``concurrent.futures`` pool.

    ``initializer``/``initargs`` run once per worker *process* (they are
    ignored for the thread backend, whose workers share the parent's
    state already — running e.g. :func:`repro.engine.shm.worker_init`
    in-process would wrongly reset the publisher's registries).  A
    ``weakref.finalize`` guard shuts the underlying executor down when a
    pool is garbage-collected or the interpreter exits, so forgotten
    pools never leak worker processes; :meth:`shutdown` stays the
    deterministic path and is idempotent.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        backend: str = "thread",
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
    ):
        if backend not in BACKENDS:
            raise ExecutionError(
                "unknown backend {!r}; choose from {}".format(backend, BACKENDS)
            )
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ExecutionError("workers must be >= 1, got {}".format(self.workers))
        self.backend = backend
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self._pool = None
        self._finalizer = None
        self._lock = threading.Lock()

    def _ensure(self):
        with self._lock:
            if self._pool is None:
                if self.backend == "process":
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=self.initializer,
                        initargs=self.initargs,
                    )
                else:
                    self._pool = ThreadPoolExecutor(max_workers=self.workers)
                self._finalizer = weakref.finalize(
                    self, _shutdown_executor, self._pool
                )
            return self._pool

    def map(self, fn, *iterables) -> List:
        """Apply ``fn`` across iterables, inline when ``workers == 1``."""
        if self.workers == 1:
            return [fn(*args) for args in zip(*iterables)]
        return list(self._ensure().map(fn, *iterables))

    def run_cancellable(self, fn, rows, control) -> List:
        """Run one ``fn(*row)`` task per row under an ExecutionControl.

        The cancellable twin of :meth:`map`: tasks are submitted one at a
        time so a :meth:`ExecutionControl.cancel` observed between
        submissions drops every not-yet-dispatched row, and queued
        futures whose ``cancel()`` still succeeds are dropped too.  Tasks
        already *running* are always waited for — cooperative
        cancellation never abandons in-flight work, which is what keeps
        the pool reusable (and deterministic) for the next execution.
        Each completed task feeds ``control.shard_completed()`` — the
        per-shard progress signal of the submit API.
        """
        rows = list(rows)
        control.begin(len(rows))
        results: List = []
        if not rows:
            return results  # nothing to do; never spin up the pool
        if self.workers == 1:
            for index, args in enumerate(rows):
                if control.cancelled:
                    control.drop(len(rows) - index)
                    return results
                results.append(fn(*args))
                control.shard_completed()
            return results
        executor = self._ensure()
        futures = []
        for args in rows:
            if control.cancelled:
                break
            futures.append(executor.submit(fn, *args))
        dropped = len(rows) - len(futures)
        swept = False
        for future in futures:
            if control.cancelled and not swept:
                # First observation of the cancel: sweep the whole tail at
                # once so the executor stops pulling queued shards — a
                # per-future check would race the workers, which keep
                # starting queued tasks while we harvest completed ones.
                for pending in reversed(futures):
                    pending.cancel()
                swept = True
            if future.cancelled():
                dropped += 1
                continue
            results.append(future.result())
            control.shard_completed()
        control.drop(dropped)
        return results

    def shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer.detach()
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _run_tasks(pool: WorkerPool, fn, rows: List[tuple], control=None) -> List:
    """Run one ``fn(*row)`` task per row — the single dispatch funnel.

    Every ``dispatch_*`` path routes through here, so the cancellable
    submit transport (``control`` set) and the plain blocking transport
    cover identical rows in identical order for any configuration.
    """
    if control is not None:
        return pool.run_cancellable(fn, rows, control)
    if not rows:
        return []
    return pool.map(fn, *zip(*rows))


def dispatch_score_shards(
    trendlines: Sequence[Trendline],
    query: CompiledQuery,
    k: int,
    pool: WorkerPool,
    algorithm: str = "segment-tree",
    enable_pushdown: bool = True,
    chunk_size: Optional[int] = None,
    has_eager_checks: Optional[bool] = None,
    kernel: Optional[str] = None,
    control=None,
) -> List[ShardResult]:
    """Shard and score an object-passing collection (no merge).

    The Score operators consume the raw shard results (the MergeTopK
    operator owns merging and stats); :func:`parallel_rank_items` wraps
    this for callers that want the merged items directly.  ``control``
    (an :class:`~repro.engine.control.ExecutionControl`) makes the
    dispatch cancellable and progress-observable.
    """
    chunks = make_chunks(list(trendlines), pool.workers, chunk_size)
    if has_eager_checks is None:
        has_eager_checks = enable_pushdown and plan_pushdown(query).has_eager_checks
    rows = [
        (chunk, base, query, k, algorithm, enable_pushdown, has_eager_checks, kernel)
        for base, chunk in chunks
    ]
    return _run_tasks(pool, score_shard, rows, control)


def parallel_rank_items(
    trendlines: Sequence[Trendline],
    query: CompiledQuery,
    k: int,
    pool: WorkerPool,
    algorithm: str = "segment-tree",
    enable_pushdown: bool = True,
    chunk_size: Optional[int] = None,
    stats=None,
    has_eager_checks: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> List[Tuple[float, int, Trendline, QueryResult]]:
    """Shard, score and merge: the parallel SEGMENT+SCORE inner loop.

    Returns the global top-k items; ``stats`` (an ``ExecutionStats``)
    receives the aggregated shard counters when provided.
    """
    shards = dispatch_score_shards(
        trendlines,
        query,
        k,
        pool,
        algorithm=algorithm,
        enable_pushdown=enable_pushdown,
        chunk_size=chunk_size,
        has_eager_checks=has_eager_checks,
        kernel=kernel,
    )
    if stats is not None:
        stats.shards = len(shards)
        for shard in shards:
            stats.scored += shard.scored
            stats.eager_discarded += shard.eager_discarded
    return merge_shard_results(shards, k)


def dispatch_score_ranges(
    handle,
    query,
    k: int,
    pool: WorkerPool,
    algorithm: str = "segment-tree",
    enable_pushdown: bool = True,
    chunk_size: Optional[int] = None,
    has_eager_checks: Optional[bool] = None,
    kernel: Optional[str] = None,
    control=None,
) -> List[ShardResult]:
    """Shared-memory twin of :func:`dispatch_score_shards` (no merge)."""
    from repro.engine.shm import resolve_query

    ranges = make_range_chunks(len(handle), pool.workers, chunk_size)
    if has_eager_checks is None:
        compiled = resolve_query(query)
        has_eager_checks = enable_pushdown and plan_pushdown(compiled).has_eager_checks
    rows = [
        (handle, start, end, query, k, algorithm, enable_pushdown,
         has_eager_checks, kernel)
        for start, end in ranges
    ]
    return _run_tasks(pool, score_shard_range, rows, control)


def dispatch_generate_score(
    table_ref,
    params,
    normalize_y: bool,
    plan,
    query,
    group_count: int,
    k: int,
    pool: WorkerPool,
    algorithm: str = "segment-tree",
    enable_pushdown: bool = True,
    chunk_size: Optional[int] = None,
    has_eager_checks: Optional[bool] = None,
    kernel: Optional[str] = None,
    control=None,
) -> List[ShardResult]:
    """Dispatch fused worker-side Extract/Group → Score range tasks.

    Shards are *group-key index ranges* over the table's candidate
    groups (sized by the same :func:`make_range_chunks` rule as every
    other sharding path); ``table_ref`` is a Table (thread backend) or
    shm TableHandle (process backend) and ``query`` a compiled query or
    QueryHandle — see :func:`repro.engine.pipeline.generate_score_shard`
    for the worker-side half.
    """
    from repro.engine.pipeline import generate_score_shard

    ranges = make_range_chunks(group_count, pool.workers, chunk_size)
    rows = [
        (table_ref, params, normalize_y, plan, query, start, end, k,
         algorithm, enable_pushdown, has_eager_checks, kernel)
        for start, end in ranges
    ]
    return _run_tasks(pool, generate_score_shard, rows, control)


def dispatch_tail_scores(
    table_ref,
    params,
    normalize_y: bool,
    plan,
    query,
    indices: Sequence[int],
    pool: WorkerPool,
    algorithm: str = "segment-tree",
    kernel: Optional[str] = None,
    control=None,
    chunk_size: Optional[int] = None,
) -> List[tuple]:
    """Dispatch streaming-tail re-scores of the named group indices.

    The tail's Score stage: shards are chunks of *affected* group
    indices (the groups an append's rows touched), sized by the shared
    :func:`make_range_chunks` rule and run through the single
    :func:`_run_tasks` funnel — so tail dispatches get the same
    cancellable transport and ``ExecutionControl`` stage hooks (begin /
    shard_completed / drop) as every other path.  Returns the flattened
    ``(index, key, result)`` triples of
    :func:`repro.engine.pipeline.score_tail_groups`; with ``control``
    cancelled mid-dispatch the list is partial and the caller's merge
    rendezvous must raise instead of applying it.
    """
    from repro.engine.pipeline import score_tail_groups

    indices = list(indices)
    chunks = make_range_chunks(len(indices), pool.workers, chunk_size)
    rows = [
        (table_ref, params, normalize_y, plan, query,
         indices[start:end], algorithm, kernel)
        for start, end in chunks
    ]
    shards = _run_tasks(pool, score_tail_groups, rows, control)
    return [item for shard in shards for item in shard]


def index_bounds_range(handle, query_ref, start: int, end: int):
    """Candidate upper bounds ``[start, end)`` from a shared shape index.

    The worker half of :func:`dispatch_index_bounds`: the index and the
    compiled query both resolve against the worker-resident store, and
    the shard runs the block-batched kernel
    (:meth:`~repro.engine.shape_index.ShapeIndex.upper_bounds_range`)
    over zero-copy views of the attached block with the default
    (unbounded) floor — the same kernel as the in-process path, no
    short-circuit, so the floats cannot depend on evaluation order or on
    how candidates were sharded.
    """
    from repro.engine.shm import resolve_index, resolve_query

    index = resolve_index(handle)
    compiled = resolve_query(query_ref)
    return index.upper_bounds_range(compiled, start, end)


def dispatch_index_bounds(
    handle,
    query_ref,
    total: int,
    pool: WorkerPool,
    chunk_size: Optional[int] = None,
    control=None,
):
    """Shard the IndexPrune bound pass over a published shape index.

    Returns the full ``total``-length float64 bound vector in candidate
    order.  Workers run the same block-batched kernel over the same
    attached bucket bytes as the in-process path, so the returned
    floats are bitwise identical to ``index.upper_bounds(query)`` — the
    pruning decision cannot depend on the transport.
    """
    import numpy as np

    ranges = make_range_chunks(total, pool.workers, chunk_size)
    rows = [(handle, query_ref, start, end) for start, end in ranges]
    shards = _run_tasks(pool, index_bounds_range, rows, control)
    if not shards:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate(
        [np.asarray(shard, dtype=np.float64) for shard in shards]
    )


def parallel_rank_ranges(
    handle,
    query,
    k: int,
    pool: WorkerPool,
    algorithm: str = "segment-tree",
    enable_pushdown: bool = True,
    chunk_size: Optional[int] = None,
    stats=None,
    has_eager_checks: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> List[Tuple[float, int, Trendline, QueryResult]]:
    """Shared-memory twin of :func:`parallel_rank_items`.

    ``handle``/``query`` are the session's published handles; each task
    carries only ``(handle, start, end, query handle, knobs)`` and the
    workers resolve both against their resident store.  Chunk sizing,
    scoring and the merge are shared with the object-passing path, so the
    two transports return byte-identical top-k for any worker count.
    """
    shards = dispatch_score_ranges(
        handle,
        query,
        k,
        pool,
        algorithm=algorithm,
        enable_pushdown=enable_pushdown,
        chunk_size=chunk_size,
        has_eager_checks=has_eager_checks,
        kernel=kernel,
    )
    if stats is not None:
        stats.shards = len(shards)
        for shard in shards:
            stats.scored += shard.scored
            stats.eager_discarded += shard.eager_discarded
    return merge_shard_results(shards, k)


def dispatch_prune_ranges(
    handle,
    query,
    k: int,
    pool: WorkerPool,
    sample_size: int = 20,
    sample_points: int = 64,
    chunk_size: Optional[int] = None,
    kernel: Optional[str] = None,
    control=None,
) -> List[ShardResult]:
    """Range-sharded collective pruning (no merge)."""
    ranges = make_range_chunks(len(handle), pool.workers, chunk_size)
    rows = [
        (handle, start, end, query, k, sample_size, sample_points, kernel)
        for start, end in ranges
    ]
    return _run_tasks(pool, prune_shard_range, rows, control)


def parallel_prune_ranges(
    handle,
    query,
    k: int,
    pool: WorkerPool,
    sample_size: int = 20,
    sample_points: int = 64,
    chunk_size: Optional[int] = None,
    stats=None,
    kernel: Optional[str] = None,
) -> List[Tuple[float, int, Trendline, QueryResult]]:
    """Shared-memory twin of :func:`parallel_prune_items`."""
    shards = dispatch_prune_ranges(
        handle, query, k, pool, sample_size=sample_size,
        sample_points=sample_points, chunk_size=chunk_size, kernel=kernel,
    )
    return _merge_pruned(shards, k, len(shards), stats)


def dispatch_prune_shards(
    trendlines: Sequence[Trendline],
    query: CompiledQuery,
    k: int,
    pool: WorkerPool,
    sample_size: int = 20,
    sample_points: int = 64,
    chunk_size: Optional[int] = None,
    kernel: Optional[str] = None,
    control=None,
) -> List[ShardResult]:
    """Object-passing sharded collective pruning (no merge)."""
    chunks = make_chunks(list(trendlines), pool.workers, chunk_size)
    rows = [
        (chunk, query, k, sample_size, sample_points, kernel)
        for _base, chunk in chunks
    ]
    return _run_tasks(pool, prune_shard, rows, control)


def parallel_prune_items(
    trendlines: Sequence[Trendline],
    query: CompiledQuery,
    k: int,
    pool: WorkerPool,
    sample_size: int = 20,
    sample_points: int = 64,
    chunk_size: Optional[int] = None,
    stats=None,
    kernel: Optional[str] = None,
) -> List[Tuple[float, int, Trendline, QueryResult]]:
    """Shard the collective-pruning driver and merge the exact top-k."""
    shards = dispatch_prune_shards(
        trendlines, query, k, pool, sample_size=sample_size,
        sample_points=sample_points, chunk_size=chunk_size, kernel=kernel,
    )
    return _merge_pruned(shards, k, len(shards), stats)


def aggregate_pruning_reports(shards: Sequence[ShardResult]) -> PruningReport:
    """Fold per-shard pruning reports into one (rounds is the max)."""
    report = PruningReport()
    for shard in shards:
        if shard.pruning is not None:
            report.candidates += shard.pruning.candidates
            report.sampled += shard.pruning.sampled
            report.pruned += shard.pruning.pruned
            report.completed += shard.pruning.completed
            report.rounds = max(report.rounds, shard.pruning.rounds)
    return report


def merge_pruned_items(
    shards: Sequence[ShardResult], k: int
) -> List[Tuple[float, int, Trendline, QueryResult]]:
    """Global top-k under the pruning drivers' (score desc, key asc) order.

    The single copy of the pruning-path merge rule — the MergeTopK
    operator and the ``parallel_prune_*`` wrappers both route through
    here, so the tie-break cannot drift between them.
    """
    merged = [item for shard in shards for item in shard.items]
    merged.sort(key=lambda item: (-item[0], str(item[2].key)))
    return merged[:k]


def _merge_pruned(
    shards: Sequence[ShardResult], k: int, shard_count: int, stats
) -> List[Tuple[float, int, Trendline, QueryResult]]:
    """Aggregate pruning reports and merge under the pruning-path order."""
    report = aggregate_pruning_reports(shards)
    if stats is not None:
        stats.shards = shard_count
        stats.pruning = report
        stats.scored = report.completed
    return merge_pruned_items(shards, k)


from repro.engine.executor import ShapeSearchEngine  # noqa: E402  (after helpers)


class ParallelEngine(ShapeSearchEngine):
    """A :class:`ShapeSearchEngine` configured for parallel, cached batches.

    Defaults differ from the base engine where scale wants them to:
    ``workers=None`` resolves to one worker per core, and ``cache=True``
    turns on the trendline/plan caches so interactive sessions skip
    repeated EXTRACT/GROUP and compilation.  Everything else — the
    algorithms, push-down, pruning, the batch :meth:`execute_many` API —
    is inherited.

    Use as a context manager (or call :meth:`close`) to release the
    worker pool deterministically::

        with ParallelEngine(workers=8, backend="process") as engine:
            matches = engine.execute(table, params, query, k=10)
    """

    def __init__(
        self,
        algorithm: str = "segment-tree",
        enable_pushdown: bool = True,
        enable_pruning: bool = False,
        sample_size: int = 20,
        sample_points: int = 64,
        workers: Optional[int] = None,
        backend: str = "thread",
        chunk_size: Optional[int] = None,
        cache=True,
        shm: bool = True,
        quantifier_threshold: Optional[float] = None,
        kernel: str = "matrix",
        generation: str = "auto",
        index: bool = False,
        precision: str = "float64",
    ):
        super().__init__(
            algorithm=algorithm,
            enable_pushdown=enable_pushdown,
            enable_pruning=enable_pruning,
            sample_size=sample_size,
            sample_points=sample_points,
            workers=workers,
            backend=backend,
            chunk_size=chunk_size,
            cache=cache,
            shm=shm,
            quantifier_threshold=quantifier_threshold,
            kernel=kernel,
            generation=generation,
            index=index,
            precision=precision,
        )
