"""Canvas-to-domain coordinate mapping for sketched queries (paper §2, §3.1).

The front-end reports a drawn polyline in pixel coordinates (origin at
the canvas's top-left, y growing downward).  ShapeSearch "automatically
translates the pixel values of the user-drawn sketch to the domain
values of the X and Y attributes"; :class:`Canvas` is that transform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import DataError


@dataclass(frozen=True)
class Canvas:
    """A drawing surface bound to a domain viewport.

    ``width``/``height`` are the canvas size in pixels; the ``x_*``/``y_*``
    fields give the data-domain rectangle the canvas displays.
    """

    width: int
    height: int
    x_min: float
    x_max: float
    y_min: float
    y_max: float

    def __post_init__(self):
        if self.width <= 0 or self.height <= 0:
            raise DataError("canvas size must be positive")
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise DataError("canvas viewport must have positive extent")

    def to_domain(self, pixels: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
        """Map pixel points to domain points (flipping the y axis)."""
        points: List[Tuple[float, float]] = []
        for px, py in pixels:
            if not (0 <= px <= self.width and 0 <= py <= self.height):
                raise DataError(
                    "pixel ({}, {}) outside the {}x{} canvas".format(px, py, self.width, self.height)
                )
            x = self.x_min + (px / self.width) * (self.x_max - self.x_min)
            y = self.y_max - (py / self.height) * (self.y_max - self.y_min)
            points.append((x, y))
        return points

    def to_pixels(self, points: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
        """Inverse mapping (used to echo fitted results back to the canvas)."""
        pixels: List[Tuple[float, float]] = []
        for x, y in points:
            px = (x - self.x_min) / (self.x_max - self.x_min) * self.width
            py = (self.y_max - y) / (self.y_max - self.y_min) * self.height
            pixels.append((px, py))
        return pixels
