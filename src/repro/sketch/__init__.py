"""Sketch front-end: canvas mapping, simplification, translation."""

from repro.sketch.canvas import Canvas
from repro.sketch.parser import parse_sketch
from repro.sketch.simplify import rdp, segment_directions

__all__ = ["Canvas", "parse_sketch", "rdp", "segment_directions"]
