"""Polyline simplification for blurry sketch interpretation (paper §5.2).

"We represent complex non-linear shapes using multiple line segments
that ShapeSearch can automatically infer from the user-drawn sketch."
The inference here is Ramer–Douglas–Peucker simplification followed by a
slope classification of each retained segment into the algebra's pattern
vocabulary (up / down / flat / θ).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

Point = Tuple[float, float]


def perpendicular_distance(point: Point, start: Point, end: Point) -> float:
    """Distance from ``point`` to the line through ``start``–``end``."""
    (px, py), (sx, sy), (ex, ey) = point, start, end
    dx, dy = ex - sx, ey - sy
    norm = math.hypot(dx, dy)
    if norm < 1e-12:
        return math.hypot(px - sx, py - sy)
    return abs(dy * px - dx * py + ex * sy - ey * sx) / norm


def rdp(points: Sequence[Point], epsilon: float) -> List[Point]:
    """Ramer–Douglas–Peucker: keep points deviating more than ``epsilon``."""
    points = list(points)
    if len(points) < 3:
        return points
    distances = [
        perpendicular_distance(points[i], points[0], points[-1])
        for i in range(1, len(points) - 1)
    ]
    index = int(np.argmax(distances)) + 1
    if distances[index - 1] > epsilon:
        left = rdp(points[: index + 1], epsilon)
        right = rdp(points[index:], epsilon)
        return left[:-1] + right
    return [points[0], points[-1]]


def classify_slope(
    slope: float, flat_threshold_degrees: float = 10.0
) -> str:
    """Map a normalized slope to a pattern word (up/down/flat)."""
    angle = math.degrees(math.atan(slope))
    if abs(angle) <= flat_threshold_degrees:
        return "flat"
    return "up" if angle > 0 else "down"


def segment_directions(
    points: Sequence[Point], epsilon: float
) -> List[Tuple[str, float]]:
    """Simplify a polyline and classify each piece.

    Returns ``(pattern, theta_degrees)`` per simplified segment, with
    coordinates normalized (x to [0,1] overall, y z-scored) before slope
    measurement so the classification matches the engine's scoring space.
    """
    points = list(points)
    if len(points) < 2:
        return []
    xs = np.array([p[0] for p in points], dtype=float)
    ys = np.array([p[1] for p in points], dtype=float)
    x_span = xs[-1] - xs[0]
    y_std = ys.std() or 1.0
    if x_span <= 0:
        return []
    normalized = list(zip((xs - xs[0]) / x_span, (ys - ys.mean()) / y_std))
    simplified = rdp(normalized, epsilon)
    directions: List[Tuple[str, float]] = []
    for (x0, y0), (x1, y1) in zip(simplified, simplified[1:]):
        if x1 - x0 <= 1e-9:
            continue
        slope = (y1 - y0) / (x1 - x0)
        directions.append((classify_slope(slope), math.degrees(math.atan(slope))))
    return directions
