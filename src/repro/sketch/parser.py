"""Sketch → ShapeQuery translation (paper §2 Box 2a, §3.1 SKETCH).

Two interpretations of a drawn polyline, as in the paper:

* **precise** — the sketch becomes a single ``v=...`` ShapeSegment
  matched by normalized L2 (or DTW at the VQS baseline level): "returns
  visualizations that precisely match the drawn trends";
* **blurry** — the sketch is simplified into line segments
  (:mod:`repro.sketch.simplify`) and each piece becomes an up/down/flat
  ShapeSegment of a CONCAT chain, giving sketches the same fuzzy
  semantics as NL/regex queries.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.algebra.nodes import Concat, Node, ShapeSegment
from repro.algebra.primitives import Pattern, Sketch
from repro.errors import ShapeQuerySyntaxError
from repro.sketch.canvas import Canvas
from repro.sketch.simplify import segment_directions

#: RDP tolerance in normalized sketch coordinates.
DEFAULT_EPSILON = 0.18


def parse_sketch(
    pixels: Sequence[Tuple[float, float]],
    canvas: Optional[Canvas] = None,
    mode: str = "precise",
    epsilon: float = DEFAULT_EPSILON,
) -> Node:
    """Translate a drawn polyline into a ShapeQuery.

    ``pixels`` are canvas coordinates when ``canvas`` is given, already-
    domain coordinates otherwise.  ``mode`` selects precise or blurry
    interpretation.
    """
    if mode not in ("precise", "blurry"):
        raise ShapeQuerySyntaxError("sketch mode must be 'precise' or 'blurry'")
    points = canvas.to_domain(pixels) if canvas is not None else [tuple(p) for p in pixels]
    if len(points) < 2:
        raise ShapeQuerySyntaxError("a sketch needs at least two points")
    points = sorted(points, key=lambda p: p[0])

    if mode == "precise":
        return ShapeSegment(sketch=Sketch(points=tuple(points)))

    directions = segment_directions(points, epsilon)
    if not directions:
        raise ShapeQuerySyntaxError("the sketch is too short to segment")
    segments = []
    for pattern_word, theta in directions:
        if pattern_word == "flat":
            segments.append(ShapeSegment(pattern=Pattern(kind="flat")))
        else:
            segments.append(ShapeSegment(pattern=Pattern(kind=pattern_word)))
    if len(segments) == 1:
        return segments[0]
    return Concat(tuple(segments))
