"""Result objects of the session API: :class:`ResultSet` and :class:`SearchFuture`.

Every execution path returns a :class:`ResultSet` where it used to
return a bare ``List[Match]``.  A ResultSet *is* a sequence of matches —
indexing, slicing, iteration, ``len`` and equality against plain lists
all behave exactly like the old list — but it additionally carries the
call's private :class:`~repro.engine.executor.ExecutionStats`, the
physical plan the planner chose (rendered lazily), and convenience
accessors (:meth:`ResultSet.top`, :meth:`ResultSet.to_records`,
:meth:`ResultSet.render`).

:class:`SearchFuture` is the handle returned by the non-blocking submit
paths (:meth:`repro.api.PreparedSearch.submit`,
:meth:`repro.api.ShapeSearch.submit_many`): a small promise resolved by
the engine's dispatcher thread, with cooperative cancellation routed
through the execution's :class:`~repro.engine.control.ExecutionControl`.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    cast,
    overload,
)

from repro.errors import SearchCancelled

if TYPE_CHECKING:  # import only for annotations: results must stay leaf-light
    from repro.engine.control import ExecutionControl


class ResultSet(Sequence):
    """Ranked matches plus everything the engine knows about the call.

    Sequence-compatible with the historical ``List[Match]`` return type:
    ``rs[0]``, ``rs[:3]`` (another ResultSet), ``len(rs)``, iteration,
    ``in`` and ``rs == [match, ...]`` all work, so existing code keeps
    working unchanged.  On top of that:

    * ``rs.stats`` — the per-call :class:`ExecutionStats` (never shared
      between calls);
    * ``rs.plan`` — the rendered physical operator chain this call
      actually ran (the same text :meth:`PreparedSearch.explain_plan`
      shows before running);
    * ``rs.top(n)`` — the first ``n`` matches as a ResultSet;
    * ``rs.to_records()`` — plain-dict rows for DataFrame/JSON handoff;
    * ``rs.render()`` — the terminal results panel, rendered lazily
      (nothing is formatted until asked).
    """

    __slots__ = ("_matches", "stats", "_plan", "revision")

    def __init__(
        self,
        matches: Iterable[Any],
        stats: Optional[Any] = None,
        plan: Optional[Any] = None,
        revision: Optional[int] = None,
    ) -> None:
        self._matches: List[Any] = list(matches)
        #: This call's private ExecutionStats (None for synthesized sets).
        self.stats = stats
        # The rendered plan text (or an object with .explain(); rendered
        # and cached on first access — never hold a live operator chain
        # here, it would pin the table/candidates it references).
        self._plan = plan
        #: Streaming refresh counter: set by :class:`repro.api.TailSearch`
        #: (0 for the initial pass, +1 per applied append), None for
        #: one-shot executions.  Lets observers of a live tail tell
        #: *which* table state a ResultSet reflects.
        self.revision = revision

    # -- sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._matches)

    @overload
    def __getitem__(self, index: int) -> Any: ...

    @overload
    def __getitem__(self, index: slice) -> "ResultSet": ...

    def __getitem__(self, index: Any) -> Any:
        if isinstance(index, slice):
            return ResultSet(
                self._matches[index],
                stats=self.stats,
                plan=self._plan,
                revision=self.revision,
            )
        return self._matches[index]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._matches)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResultSet):
            return self._matches == other._matches
        if isinstance(other, (list, tuple)):
            return self._matches == list(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    # mutable-sequence semantics, like the list it replaces
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        preview = ", ".join(repr(match) for match in self._matches[:3])
        if len(self._matches) > 3:
            preview += ", ..."
        return "ResultSet([{}], n={})".format(preview, len(self._matches))

    # -- accessors ---------------------------------------------------------
    @property
    def plan(self) -> Optional[str]:
        """The rendered physical plan this call ran."""
        if self._plan is not None and not isinstance(self._plan, str):
            self._plan = self._plan.explain()
        return self._plan

    @property
    def matches(self) -> List[Any]:
        """The underlying match list (a copy-free view; do not mutate)."""
        return self._matches

    @property
    def candidates_pruned(self) -> int:
        """Candidates this call discarded without a full DP solve.

        Sums every exact pruning channel the engine ran: the shape
        index's IndexPrune stage, push-down (b)'s eager discards, and
        the two-stage collective pruning driver.  0 for synthesized sets
        (no stats) and for runs where every candidate was scored.
        """
        if self.stats is None:
            return 0
        pruned = getattr(self.stats, "index_pruned", 0)
        pruned += getattr(self.stats, "eager_discarded", 0)
        report = getattr(self.stats, "pruning", None)
        if report is not None:
            pruned += report.pruned
        return pruned

    @property
    def index_source(self) -> Optional[str]:
        """Where this call's shape index came from, if IndexPrune bounded.

        ``"memory"`` (table-attached or cache hit), ``"disk"`` (loaded
        from the memory-mapped artifact store), ``"built"`` (fresh build
        or append-lineage extension), or None when the stage did not
        bound anything — index disabled, query unboundable, collection
        below the seed threshold, or a synthesized set without stats.
        """
        if self.stats is None:
            return None
        return getattr(self.stats, "index_source", None)

    def top(self, n: int) -> "ResultSet":
        """The best ``n`` matches, stats and plan carried along."""
        return self[:n]

    def to_records(self) -> List[dict]:
        """Plain-dict rows: ``{"key", "score", "placements"}`` per match.

        ``placements`` holds ``(seg_index, start, end, score, slope)``
        tuples — everything a DataFrame or JSON serializer needs without
        touching engine internals.
        """
        return [
            {
                "key": match.key,
                "score": match.score,
                "placements": [
                    (p.seg_index, p.start, p.end, p.score, p.slope)
                    for p in match.placements
                ],
            }
            for match in self._matches
        ]

    def render(self, width: int = 60) -> str:
        """The terminal results panel (see :mod:`repro.render`)."""
        from repro.render import render_matches

        return render_matches(self._matches, width)


class SearchFuture:
    """Handle on a search dispatched without blocking the caller.

    Returned by :meth:`PreparedSearch.submit` and
    :meth:`ShapeSearch.submit_many`; resolved by the engine's dispatcher
    thread.  The interface follows :class:`concurrent.futures.Future`
    where it can:

    * :meth:`result` blocks (optionally up to ``timeout`` seconds) and
      returns the :class:`ResultSet`, re-raising whatever the execution
      raised — :class:`~repro.errors.SearchCancelled` after a cancel;
    * :meth:`done` / :meth:`running` / :meth:`cancelled` observe state
      without blocking;
    * :meth:`cancel` requests *cooperative* cancellation: shards already
      running on the pool finish (the pool stays reusable), un-dispatched
      shards are dropped, and the pipeline's MergeTopK rendezvous raises
      instead of merging a partial top-k.  Unlike stdlib futures, cancel
      works mid-run, not only before the task starts;
    * :attr:`progress` is ``(completed shards, total shards or None)``.
    """

    __slots__ = (
        "_control", "_done", "_lock", "_result", "_exception",
        "_cancel_requested", "_started", "_callbacks",
    )

    def __init__(self, control: "ExecutionControl") -> None:
        self._control = control
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._result: Optional[ResultSet] = None
        self._exception: Optional[BaseException] = None
        self._cancel_requested = False
        self._started = False
        self._callbacks: List[Callable[["SearchFuture"], None]] = []

    # -- driver protocol (engine dispatcher only) --------------------------
    def _start(self) -> bool:
        """Mark the execution running; False when already cancelled."""
        with self._lock:
            if self._cancel_requested:
                return False
            self._started = True
            return True

    def _finish(
        self,
        result: Optional[ResultSet] = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        """Resolve the future exactly once (later calls are ignored).

        ``cancel() == True`` guarantees a cancelled resolution even when
        the request lands after the pipeline's last cancellation check:
        a successful result is discarded, and a concurrent execution
        error is wrapped (chained as ``__cause__`` so it stays
        inspectable via ``future.exception()``).
        """
        with self._lock:
            if self._done.is_set():
                return
            if self._cancel_requested and not isinstance(exception, SearchCancelled):
                if exception is None:
                    exception = SearchCancelled(
                        "search cancelled at completion; result discarded"
                    )
                else:
                    wrapped = SearchCancelled(
                        "search cancelled; execution failed concurrently: "
                        "{!r}".format(exception)
                    )
                    wrapped.__cause__ = exception
                    exception = wrapped
                result = None
            self._result = result
            self._exception = exception
            callbacks, self._callbacks = self._callbacks, []
            self._done.set()
        for callback in callbacks:
            try:
                callback(self)
            except Exception:
                pass  # observer errors must not poison the resolution path

    # -- observation -------------------------------------------------------
    def done(self) -> bool:
        """True once resolved (with a result, an error, or a cancel)."""
        return self._done.is_set()

    def running(self) -> bool:
        """True while the dispatcher is executing this search."""
        with self._lock:
            return self._started and not self._done.is_set()

    def cancelled(self) -> bool:
        """True when the future resolved as cancelled."""
        return self._done.is_set() and isinstance(self._exception, SearchCancelled)

    @property
    def progress(self) -> Tuple[int, Optional[int]]:
        """``(completed shards, total shards or None)`` right now."""
        return self._control.progress

    def add_done_callback(self, callback: Callable[["SearchFuture"], None]) -> None:
        """Run ``callback(self)`` on resolution (immediately if done)."""
        with self._lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    # -- resolution --------------------------------------------------------
    def cancel(self, reason: str = "user") -> bool:
        """Request cooperative cancellation.

        Returns True when the request was registered before the search
        resolved (the future will resolve as cancelled), False when the
        result already landed (it stands).  A future whose driver has
        not started yet resolves as cancelled immediately — it is not
        waiting on any in-flight work.

        ``reason`` is the cancellation reason code recorded on the
        execution's control (see
        :data:`repro.engine.control.CANCEL_USER` /
        :data:`~repro.engine.control.CANCEL_SHED` /
        :data:`~repro.engine.control.CANCEL_SHUTDOWN`); read it back via
        :attr:`cancel_reason` to distinguish a user cancel from a
        load-shed or a shutdown sweep.
        """
        with self._lock:
            if self._done.is_set():
                return False
            self._cancel_requested = True
            started = self._started
        self._control.cancel(reason=reason)
        if not started:
            self._finish(
                exception=SearchCancelled(
                    "search cancelled before dispatch (reason={})".format(
                        self._control.cancel_reason or reason
                    )
                )
            )
        return True

    @property
    def cancel_reason(self) -> Optional[str]:
        """Reason code of the first cancel request (None when never cancelled)."""
        return self._control.cancel_reason

    def result(self, timeout: Optional[float] = None) -> ResultSet:
        """Block for the ResultSet; raise what the execution raised.

        Raises :class:`TimeoutError` if ``timeout`` seconds elapse first
        (the search keeps running; call again to keep waiting).
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                "search did not complete within {!r}s".format(timeout)
            )
        if self._exception is not None:
            raise self._exception
        # _finish only resolves without an exception when a ResultSet
        # landed, so the None in the Optional is unreachable here.
        return cast(ResultSet, self._result)

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """Block like :meth:`result` but return the exception, if any."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                "search did not complete within {!r}s".format(timeout)
            )
        return self._exception

    def __repr__(self) -> str:
        if not self._done.is_set():
            state = "running" if self.running() else "pending"
        elif self.cancelled():
            state = "cancelled"
        elif self._exception is not None:
            state = "error={!r}".format(self._exception)
        else:
            state = "done n={}".format(len(cast(ResultSet, self._result)))
        completed, total = self.progress
        return "SearchFuture({}, progress={}/{})".format(state, completed, total)
