"""Synthetic stand-ins for the five evaluation datasets (paper Table 11).

The paper evaluates on Weather, Worms, 50 Words, Haptics (UCI) and a
Zillow Real-Estate table.  Those files are not redistributable and are
unavailable offline, so each suite here reproduces the *workload
characteristics* that drive the performance experiments — the number of
visualizations, their lengths, multi-y-per-x aggregation for Real
Estate — with a deterministic mix of shape families (see DESIGN.md §3
for why this substitution preserves the experiments).

Alongside the data, this module records the exact fuzzy and non-fuzzy
queries of Table 11 in the regex dialect (non-fuzzy x ranges are scaled
into each suite's x domain where the paper's printed ranges exceed it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.table import Table
from repro.datasets.synthetic import mixed_collection
from repro.engine.trendline import Trendline, build_trendline
from repro.errors import DataError


@dataclass(frozen=True)
class SuiteSpec:
    """Cardinality and query set of one Table 11 dataset."""

    name: str
    visualizations: int
    length: int
    fuzzy_queries: Tuple[str, ...]
    non_fuzzy_query: str
    #: Real Estate has several y rows per (z, x) and needs aggregation.
    y_per_x: int = 1
    seed: int = 7


SUITES: Dict[str, SuiteSpec] = {
    "weather": SuiteSpec(
        name="weather",
        visualizations=144,
        length=366,
        fuzzy_queries=(
            "[p=45][p=down][p=up][p=down]",
            "([p=up]|[p=down])[p=flat][p=up][p=down]",
            "[p=flat][p=up][p=down][p=flat]",
        ),
        non_fuzzy_query=(
            "[p=down,x.s=0,x.e=91][p=up,x.s=91,x.e=274][p=down,x.s=274,x.e=365]"
        ),
        seed=11,
    ),
    "worms": SuiteSpec(
        name="worms",
        visualizations=258,
        length=900,
        fuzzy_queries=(
            "[p=down]([p=45]|[p=-20])[p=flat]",
            "[p=down][p=45][p=down]",
            "[p=up][p=down][p=up]",
        ),
        non_fuzzy_query="[p=down,x.s=50,x.e=100]",
        seed=13,
    ),
    "50words": SuiteSpec(
        name="50words",
        visualizations=905,
        length=270,
        fuzzy_queries=(
            "[p=down]([p=up]|[p=flat][p=down])",
            "[p=flat][p=up][p=down][p=flat]",
            "([p=up]|[p=down])([p=up]|[p=down])[p=flat]",
        ),
        # The paper prints x ranges beyond the 270-point domain; scaled in.
        non_fuzzy_query="[p=down,x.s=50,x.e=100][p=up,x.s=200,x.e=250]",
        seed=17,
    ),
    "realestate": SuiteSpec(
        name="realestate",
        visualizations=1777,
        length=138,
        fuzzy_queries=(
            "[p=flat][p=down][p=up][p=flat]",
            "[p=up][p=down][p=up][p=flat]",
            "[p=up][p=flat](([p=45][p=60])|([p=up][p=down]))",
        ),
        non_fuzzy_query=(
            "[p=down,x.s=1,x.e=20][p=up,x.s=20,x.e=60][p=down,x.s=60,x.e=137]"
        ),
        y_per_x=3,
        seed=19,
    ),
    "haptics": SuiteSpec(
        name="haptics",
        visualizations=463,
        length=1092,
        fuzzy_queries=(
            "[p=up][p=down][p=flat][p=up]",
            "[p=down][p=up][p=down][p=flat]",
        ),
        non_fuzzy_query="[p=up,x.s=60,x.e=80]",
        seed=23,
    ),
}


def suite_spec(name: str) -> SuiteSpec:
    """Look up a suite by name."""
    try:
        return SUITES[name]
    except KeyError:
        raise DataError(
            "unknown suite {!r}; available: {}".format(name, sorted(SUITES))
        ) from None


def suite_trendlines(
    name: str,
    max_visualizations: Optional[int] = None,
    max_length: Optional[int] = None,
) -> List[Trendline]:
    """The suite as ready-to-score trendlines (what the benchmarks use).

    ``max_visualizations``/``max_length`` allow scaled-down runs on
    modest hardware (set by the ``REPRO_BENCH_SCALE`` knob in the
    benchmark harness); defaults reproduce the full Table 11 sizes.
    """
    spec = suite_spec(name)
    count = spec.visualizations if max_visualizations is None else min(
        spec.visualizations, max_visualizations
    )
    length = spec.length if max_length is None else min(spec.length, max_length)
    collection = mixed_collection(count, length, seed=spec.seed)
    x = np.arange(length, dtype=float)
    return [build_trendline(key, x, series) for key, series in collection]


def suite_table(
    name: str,
    max_visualizations: Optional[int] = None,
    max_length: Optional[int] = None,
) -> Table:
    """The suite as a relational table (z, x, y) for the full pipeline.

    For Real Estate, each (z, x) pair carries ``y_per_x`` noisy readings,
    exercising EXTRACT's aggregation path.
    """
    spec = suite_spec(name)
    count = spec.visualizations if max_visualizations is None else min(
        spec.visualizations, max_visualizations
    )
    length = spec.length if max_length is None else min(spec.length, max_length)
    collection = mixed_collection(count, length, seed=spec.seed)
    rng = np.random.default_rng(spec.seed + 1)

    zs: List[str] = []
    xs: List[float] = []
    ys: List[float] = []
    for key, series in collection:
        for position, value in enumerate(series):
            for _ in range(spec.y_per_x):
                zs.append(key)
                xs.append(float(position))
                jitter = rng.normal(0, 0.05) if spec.y_per_x > 1 else 0.0
                ys.append(float(value) + jitter)
    return Table.from_arrays(
        z=np.array(zs, dtype=object), x=np.array(xs), y=np.array(ys)
    )
