"""Synthetic trendline generators.

The building blocks the dataset suites and the study tasks are made of:
piecewise-linear trends, seasonal curves, random walks, and motif
injection (peaks, dips, plateaus).  Everything is driven by an explicit
``numpy.random.Generator`` so datasets are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def piecewise(
    n: int,
    levels: Sequence[float],
    noise: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """A piecewise-linear series through equally spaced ``levels``.

    ``levels`` are the values at the breakpoints (len(levels) − 1 linear
    pieces).  Gaussian noise of the given σ is added when requested.
    """
    if len(levels) < 2:
        raise ValueError("piecewise needs at least two levels")
    breakpoints = np.linspace(0, n - 1, len(levels))
    series = np.interp(np.arange(n), breakpoints, levels)
    if noise > 0:
        rng = rng if rng is not None else np.random.default_rng(0)
        series = series + rng.normal(0.0, noise, n)
    return series


def seasonal(
    n: int,
    period: float,
    amplitude: float = 1.0,
    phase: float = 0.0,
    trend: float = 0.0,
    noise: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sinusoidal seasonality with an optional linear trend."""
    t = np.arange(n, dtype=float)
    series = amplitude * np.sin(2 * np.pi * t / period + phase) + trend * t / n
    if noise > 0:
        rng = rng if rng is not None else np.random.default_rng(0)
        series = series + rng.normal(0.0, noise, n)
    return series


def random_walk(
    n: int,
    drift: float = 0.0,
    sigma: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Cumulative-sum random walk with drift (stock-like background)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    steps = rng.normal(drift, sigma, n)
    return np.cumsum(steps)


def flat(
    n: int, level: float = 0.0, noise: float = 0.0, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """A stable series around ``level``."""
    rng = rng if rng is not None else np.random.default_rng(0)
    return np.full(n, level, dtype=float) + (rng.normal(0.0, noise, n) if noise > 0 else 0.0)


def add_peak(
    series: np.ndarray,
    center: int,
    width: int,
    height: float,
) -> np.ndarray:
    """Inject a triangular peak (or dip, with negative height) in place of a copy."""
    out = np.array(series, dtype=float)
    n = len(out)
    lo = max(0, center - width // 2)
    hi = min(n, center + width // 2 + 1)
    for i in range(lo, hi):
        fraction = 1.0 - abs(i - center) / max(1, width // 2)
        out[i] += height * max(0.0, fraction)
    return out


def add_plateau(series: np.ndarray, start: int, end: int, level: float) -> np.ndarray:
    """Clamp a copy of the series to ``level`` over ``[start, end)`` (stem-cell motifs)."""
    out = np.array(series, dtype=float)
    out[start:end] = level
    return out


#: Shape families used to diversify the dataset suites.  Each entry maps a
#: name to a factory (n, rng) -> series, covering the pattern taxonomy the
#: study tasks search over.
SHAPE_FAMILIES = {
    "rise": lambda n, rng: piecewise(n, [0, rng.uniform(2, 6)], noise=0.3, rng=rng),
    "fall": lambda n, rng: piecewise(n, [rng.uniform(2, 6), 0], noise=0.3, rng=rng),
    "valley": lambda n, rng: piecewise(n, [4, rng.uniform(-1, 1), 4], noise=0.3, rng=rng),
    "peak": lambda n, rng: piecewise(n, [0, rng.uniform(3, 6), 0], noise=0.3, rng=rng),
    "rise-fall-rise": lambda n, rng: piecewise(
        n, [0, rng.uniform(3, 6), rng.uniform(0.5, 2), rng.uniform(4, 8)], noise=0.3, rng=rng
    ),
    "fall-rise-fall": lambda n, rng: piecewise(
        n, [5, rng.uniform(0, 2), rng.uniform(3, 6), 0], noise=0.3, rng=rng
    ),
    "double-peak": lambda n, rng: piecewise(
        n, [0, rng.uniform(3, 5), 1, rng.uniform(3, 5), 0], noise=0.3, rng=rng
    ),
    "flat": lambda n, rng: flat(n, level=rng.uniform(-2, 2), noise=0.2, rng=rng),
    "seasonal": lambda n, rng: seasonal(
        n,
        period=n / rng.integers(2, 6),
        amplitude=rng.uniform(1, 3),
        phase=rng.uniform(0, 2 * np.pi),
        noise=0.2,
        rng=rng,
    ),
    "walk": lambda n, rng: random_walk(n, drift=rng.uniform(-0.05, 0.05), sigma=0.5, rng=rng),
    "flat-rise-fall-flat": lambda n, rng: piecewise(
        n, [1, 1, rng.uniform(4, 6), 1, 1], noise=0.25, rng=rng
    ),
    "ramp-plateau": lambda n, rng: piecewise(
        n, [0, rng.uniform(3, 6), rng.uniform(3, 6)], noise=0.25, rng=rng
    ),
}


def mixed_collection(
    count: int,
    length: int,
    seed: int,
    families: Optional[Sequence[str]] = None,
) -> List[Tuple[str, np.ndarray]]:
    """``count`` named series of the given length, cycling over shape families.

    Keys are ``"<family>-<index>"`` so tests and examples can assert on
    which family a retrieved visualization came from.
    """
    rng = np.random.default_rng(seed)
    names = list(families) if families is not None else list(SHAPE_FAMILIES)
    collection: List[Tuple[str, np.ndarray]] = []
    for index in range(count):
        family = names[index % len(names)]
        series = SHAPE_FAMILIES[family](length, rng)
        collection.append(("{}-{:04d}".format(family, index), series))
    return collection
