"""Synthetic datasets: Table 11 suite equivalents and domain generators."""

from repro.datasets.domains import (
    astronomy_dataset,
    gene_expression_dataset,
    stock_dataset,
    weather_dataset,
)
from repro.datasets.suites import SUITES, suite_spec, suite_table, suite_trendlines
from repro.datasets.synthetic import SHAPE_FAMILIES, mixed_collection

__all__ = [
    "astronomy_dataset",
    "gene_expression_dataset",
    "stock_dataset",
    "weather_dataset",
    "SUITES",
    "suite_spec",
    "suite_table",
    "suite_trendlines",
    "SHAPE_FAMILIES",
    "mixed_collection",
]
