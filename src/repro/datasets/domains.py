"""Domain datasets for the examples and case studies (paper §1, §8).

Each generator plants the motifs the paper describes among realistic
background series, and returns both the table and the planted keys so
examples and tests can verify that ShapeSearch queries actually retrieve
the planted phenomena:

* :func:`gene_expression_dataset` — the genomics case study (§8):
  treatment responses (sudden expression then gradual decline),
  stem-cell differentiation plateaus (gbx2/klf5/spry4), an outlier
  double-peak gene (pvt1).
* :func:`stock_dataset` — technical patterns from the intro: double
  top, head-and-shoulders, cup, W-shape.
* :func:`weather_dataset` — seasonal city temperatures, including
  southern-hemisphere cities that rise Nov–Jan and fall May–Jul.
* :func:`astronomy_dataset` — star luminosities with planetary-transit
  dips and one supernova spike (Figure 1c).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.data.table import Table
from repro.datasets.synthetic import add_peak, flat, piecewise, random_walk, seasonal


def _to_table(series_by_key: Dict[str, np.ndarray], z: str, x: str, y: str) -> Table:
    zs: List[str] = []
    xs: List[float] = []
    ys: List[float] = []
    for key, series in series_by_key.items():
        for position, value in enumerate(series):
            zs.append(key)
            xs.append(float(position))
            ys.append(float(value))
    return Table.from_arrays(**{
        z: np.array(zs, dtype=object),
        x: np.array(xs),
        y: np.array(ys),
    })


def gene_expression_dataset(
    n_genes: int = 60, length: int = 48, seed: int = 101
) -> Tuple[Table, Dict[str, List[str]]]:
    """Mouse-gene-like expression table with the §8 motifs planted.

    Returns ``(table, planted)`` where ``planted`` maps motif names to
    the gene keys that carry them:

    * ``treatment``  — stable/low, sudden rise, gradual decline;
    * ``stem-up``    — rise at ~45° then high stable plateau;
    * ``stem-down``  — start high, gradual decline, low plateau;
    * ``double-peak`` — two peaks within a short window (the pvt1 outlier).
    """
    rng = np.random.default_rng(seed)
    series: Dict[str, np.ndarray] = {}
    planted: Dict[str, List[str]] = {
        "treatment": [],
        "stem-up": [],
        "stem-down": [],
        "double-peak": [],
    }

    for name in ("gene_tr1", "gene_tr2", "gene_tr3"):
        low = rng.uniform(0.5, 1.0)
        peak = rng.uniform(5.0, 7.0)
        # Stable and low, a sudden burst of expression, then a slow decline
        # back toward baseline as the treatment's effect subsides (§8-II).
        profile = piecewise(
            length,
            [low, low, low, peak, peak * 0.55, peak * 0.25, low * 1.5],
            noise=0.12,
            rng=rng,
        )
        series[name] = profile
        planted["treatment"].append(name)

    for name in ("gbx2", "klf5", "spry4"):
        high = rng.uniform(4.0, 5.0)
        profile = piecewise(length, [0.5, high, high, high], noise=0.12, rng=rng)
        series[name] = profile
        planted["stem-up"].append(name)

    for name in ("gene_sd1", "gene_sd2"):
        high = rng.uniform(4.0, 5.0)
        profile = piecewise(length, [high, high * 0.6, 0.6, 0.5], noise=0.12, rng=rng)
        series[name] = profile
        planted["stem-down"].append(name)

    base = flat(length, level=1.0, noise=0.1, rng=rng)
    pvt1 = add_peak(base, center=length // 3, width=6, height=4.0)
    pvt1 = add_peak(pvt1, center=length // 3 + 8, width=6, height=4.0)
    series["pvt1"] = pvt1
    planted["double-peak"].append("pvt1")

    planted_count = len(series)
    for index in range(n_genes - planted_count):
        name = "gene_bg{:03d}".format(index)
        choice = index % 3
        if choice == 0:
            series[name] = flat(length, level=rng.uniform(0.5, 2.0), noise=0.15, rng=rng)
        elif choice == 1:
            series[name] = seasonal(
                length, period=length / 2, amplitude=rng.uniform(0.3, 0.8),
                phase=rng.uniform(0, 6), noise=0.15, rng=rng,
            ) + 2.0
        else:
            series[name] = random_walk(length, sigma=0.2, rng=rng) + 2.0

    return _to_table(series, z="gene", x="time", y="expression"), planted


def stock_dataset(
    n_stocks: int = 80, length: int = 250, seed: int = 202
) -> Tuple[Table, Dict[str, List[str]]]:
    """Daily-price-like table with classic technical patterns planted."""
    rng = np.random.default_rng(seed)
    series: Dict[str, np.ndarray] = {}
    planted: Dict[str, List[str]] = {
        "double-top": [],
        "head-shoulders": [],
        "cup": [],
        "w-shape": [],
    }

    for name in ("DTOP_A", "DTOP_B"):
        series[name] = piecewise(length, [10, 18, 13, 18, 9], noise=0.25, rng=rng)
        planted["double-top"].append(name)
    for name in ("HS_A", "HS_B"):
        series[name] = piecewise(length, [10, 15, 12, 19, 12, 15, 9], noise=0.25, rng=rng)
        planted["head-shoulders"].append(name)
    for name in ("CUP_A", "CUP_B"):
        series[name] = piecewise(length, [16, 9, 8, 9, 16], noise=0.25, rng=rng)
        planted["cup"].append(name)
    for name in ("WSHAPE_A", "WSHAPE_B"):
        series[name] = piecewise(length, [15, 8, 12, 8, 15], noise=0.25, rng=rng)
        planted["w-shape"].append(name)

    planted_count = len(series)
    for index in range(n_stocks - planted_count):
        name = "STK{:03d}".format(index)
        series[name] = random_walk(length, drift=rng.uniform(-0.02, 0.04), sigma=0.3, rng=rng) + 20
    return _to_table(series, z="symbol", x="day", y="price"), planted


def weather_dataset(
    n_cities: int = 48, length: int = 365, seed: int = 303
) -> Tuple[Table, Dict[str, List[str]]]:
    """City temperatures; southern-hemisphere cities are phase-shifted.

    Planted keys: ``southern`` cities rise Nov–Jan and fall May–Jul (the
    intro's Sydney example); ``northern`` the inverse.
    """
    rng = np.random.default_rng(seed)
    series: Dict[str, np.ndarray] = {}
    planted: Dict[str, List[str]] = {"southern": [], "northern": []}
    for index in range(n_cities):
        southern = index % 4 == 0
        name = ("sydney_like{:02d}" if southern else "city{:02d}").format(index)
        # Northern cities peak mid-year; southern peak at the year edges.
        phase = np.pi / 2 if southern else -np.pi / 2
        amplitude = rng.uniform(8, 14)
        base = rng.uniform(5, 18)
        profile = base + seasonal(
            length, period=length, amplitude=amplitude, phase=phase, noise=0.8, rng=rng
        )
        series[name] = profile
        planted["southern" if southern else "northern"].append(name)
    return _to_table(series, z="city", x="day", y="temperature"), planted


def astronomy_dataset(
    n_stars: int = 120, length: int = 400, seed: int = 404
) -> Tuple[Table, Dict[str, List[str]]]:
    """Star luminosities with transit dips and one supernova (Figure 1c)."""
    rng = np.random.default_rng(seed)
    series: Dict[str, np.ndarray] = {}
    planted: Dict[str, List[str]] = {"transit": [], "supernova": []}
    for index in range(n_stars):
        name = "star{:03d}".format(index)
        base = flat(length, level=rng.uniform(80, 120), noise=0.6, rng=rng)
        if index % 10 == 0:
            center = int(rng.integers(length // 4, 3 * length // 4))
            base = add_peak(base, center=center, width=24, height=-rng.uniform(8, 15))
            planted["transit"].append(name)
        series[name] = base
    supernova = flat(length, level=90.0, noise=0.6, rng=rng)
    supernova = add_peak(supernova, center=length // 2, width=30, height=60.0)
    series["sn2026a"] = supernova
    planted["supernova"].append("sn2026a")
    return _to_table(series, z="object", x="time", y="luminosity"), planted
