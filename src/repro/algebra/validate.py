"""Semantic validation of ShapeQuery trees (paper §4, "meaningful ASTs").

Syntactic well-formedness is enforced by the node constructors; this
module checks cross-primitive consistency — the conditions whose
violation the paper calls *semantic ambiguities* (e.g. "increasing from
y=10 to y=5").  :func:`check` returns structured :class:`Issue` records
(consumed by the NL ambiguity resolver); :func:`validate` raises on the
first issue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.algebra.nodes import Node, ShapeSegment
from repro.errors import ShapeQueryValidationError

#: Issue codes (stable identifiers, keyed by the resolver and by tests).
X_ORDER = "x-order"
Y_CONFLICT = "y-conflict"
POSITION_RANGE = "position-range"
POSITION_SELF = "position-self"
QUANTIFIER_PATTERN = "quantifier-pattern"
MODIFIER_PATTERN = "modifier-pattern"
SKETCH_MODIFIER = "sketch-modifier"


@dataclass(frozen=True)
class Issue:
    """One validation finding: a code, the segment index, and a message."""

    code: str
    segment_index: int
    message: str

    def __str__(self):
        return "segment {}: {} [{}]".format(self.segment_index, self.message, self.code)


def check(node: Node) -> List[Issue]:
    """Collect all semantic issues in the query (empty list = valid)."""
    issues: List[Issue] = []
    segments = list(node.segments())
    total = len(segments)
    for index, seg in enumerate(segments):
        issues.extend(_check_segment(seg, index, total))
        pattern = seg.pattern
        if pattern is not None and pattern.kind == "nested":
            issues.extend(check(pattern.nested))
    return issues


def validate(node: Node) -> None:
    """Raise :class:`ShapeQueryValidationError` on the first issue found."""
    issues = check(node)
    if issues:
        raise ShapeQueryValidationError(
            "; ".join(str(issue) for issue in issues)
        )


def _check_segment(seg: ShapeSegment, index: int, total: int) -> List[Issue]:
    issues: List[Issue] = []
    loc = seg.location
    if loc.x_start is not None and loc.x_end is not None and loc.x_start >= loc.x_end:
        issues.append(
            Issue(X_ORDER, index, "x.s={} must precede x.e={}".format(loc.x_start, loc.x_end))
        )
    pattern = seg.pattern
    if (
        pattern is not None
        and loc.y_start is not None
        and loc.y_end is not None
    ):
        rising = loc.y_end > loc.y_start
        falling = loc.y_end < loc.y_start
        if pattern.kind == "up" and falling:
            issues.append(
                Issue(Y_CONFLICT, index, "pattern 'up' conflicts with falling y endpoints")
            )
        if pattern.kind == "down" and rising:
            issues.append(
                Issue(Y_CONFLICT, index, "pattern 'down' conflicts with rising y endpoints")
            )
    if pattern is not None and pattern.kind == "position":
        target = pattern.reference.resolve(index)
        if target == index:
            issues.append(Issue(POSITION_SELF, index, "position reference points at itself"))
        elif not 0 <= target < total:
            issues.append(
                Issue(
                    POSITION_RANGE,
                    index,
                    "position reference ${} outside query with {} segments".format(target, total),
                )
            )
    modifier = seg.modifier
    if modifier is not None:
        if modifier.is_quantifier and pattern is None:
            issues.append(
                Issue(QUANTIFIER_PATTERN, index, "a quantifier needs a pattern to count")
            )
        if modifier.is_quantifier and pattern is not None and pattern.kind in ("any", "empty"):
            issues.append(
                Issue(
                    QUANTIFIER_PATTERN,
                    index,
                    "quantifier on pattern {!r} is not countable".format(pattern.kind),
                )
            )
        if (
            not modifier.is_quantifier
            and pattern is not None
            and pattern.kind in ("flat", "any", "empty", "nested", "udp")
        ):
            issues.append(
                Issue(
                    MODIFIER_PATTERN,
                    index,
                    "comparison modifier {!r} needs a directional or position pattern".format(
                        modifier.comparison
                    ),
                )
            )
    if seg.sketch is not None and modifier is not None:
        issues.append(Issue(SKETCH_MODIFIER, index, "sketch segments take no modifier"))
    return issues
