"""Shape primitives of the ShapeQuery algebra (paper §3.1, Table 1).

A :class:`~repro.algebra.nodes.ShapeSegment` is described by up to five
primitives:

* :class:`Location` — the endpoints of the sub-region over which the
  pattern is matched (``x.s``, ``x.e``, ``y.s``, ``y.e``) plus the
  ITERATOR sub-primitive (``x.s=., x.e=.+w``).
* :class:`Pattern` — the trend to match: ``up``, ``down``, ``flat``, a
  slope in degrees, the wildcard ``*``, a POSITION reference ``$i``, a
  registered user-defined pattern, or a nested ShapeQuery.
* :class:`Modifier` — refines the match: sharp/gradual comparisons
  (``>``, ``>>``, ``<``, ``<<``, ``=``, optionally with a numeric factor)
  or an occurrence :class:`Quantifier` (``{2,5}``, ``{2,}``, ``{,2}``).
* :class:`Sketch` — a drawn (x, y) polyline for precise matching.
* POSITION is folded into :class:`Pattern` via :attr:`Pattern.reference`.

All primitive classes are immutable value objects with structural
equality, so ShapeQuery trees can be hashed, compared and printed
canonically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ShapeQueryValidationError

#: Pattern kinds supported natively by the scoring engine (Table 5).
PATTERN_KINDS = ("up", "down", "flat", "any", "empty", "slope", "position", "udp", "nested")

#: Comparison modifier operators (Table 1).
COMPARISON_OPS = (">", ">>", "<", "<<", "=")

#: Slope targets (degrees) used to score sharp/gradual up/down modifiers.
SHARP_SLOPE_DEGREES = 75.0
GRADUAL_SLOPE_DEGREES = 30.0


@dataclass(frozen=True)
class Iterator:
    """ITERATOR sub-primitive: slide a width-``width`` window (``x.e=.+w``).

    The window is expressed in x-axis units of the trendline; the engine
    evaluates the pattern over every window position and keeps the best.
    """

    width: float

    def __post_init__(self):
        if self.width <= 0:
            raise ShapeQueryValidationError(
                "ITERATOR width must be positive, got {!r}".format(self.width)
            )


@dataclass(frozen=True)
class Location:
    """LOCATION primitive: optional endpoints of the matching sub-region.

    Any subset of the four endpoints may be given; a segment with at least
    one of ``x_start``/``x_end`` missing is *fuzzy* (paper §6) and the
    engine searches for the best placement.  When :attr:`iterator` is set
    the x endpoints are interpreted as a sliding window instead.
    """

    x_start: Optional[float] = None
    x_end: Optional[float] = None
    y_start: Optional[float] = None
    y_end: Optional[float] = None
    iterator: Optional[Iterator] = None

    def __post_init__(self):
        if self.iterator is not None and (self.x_start is not None or self.x_end is not None):
            raise ShapeQueryValidationError(
                "ITERATOR cannot be combined with fixed x endpoints"
            )

    @property
    def is_empty(self) -> bool:
        """True when no location information is present at all."""
        return (
            self.x_start is None
            and self.x_end is None
            and self.y_start is None
            and self.y_end is None
            and self.iterator is None
        )

    @property
    def is_x_pinned(self) -> bool:
        """True when both x endpoints are fixed (a non-fuzzy segment)."""
        return self.x_start is not None and self.x_end is not None

    @property
    def is_fuzzy(self) -> bool:
        """True when at least one x endpoint is free (paper §6)."""
        return self.iterator is None and not self.is_x_pinned

    def x_span(self) -> Optional[Tuple[float, float]]:
        """The pinned x interval, or None when the segment is fuzzy."""
        if self.is_x_pinned:
            return (self.x_start, self.x_end)
        return None


#: A Location with nothing pinned; the common fuzzy case.
ANYWHERE = Location()


@dataclass(frozen=True)
class Quantifier:
    """Occurrence quantifier on a pattern: between ``low`` and ``high`` times.

    ``low=None`` means "at most high"; ``high=None`` means "at least low";
    both set and equal means "exactly".  (Paper §3.1 MODIFIER, §5.2
    "Scoring quantifiers".)
    """

    low: Optional[int] = None
    high: Optional[int] = None

    def __post_init__(self):
        if self.low is None and self.high is None:
            raise ShapeQueryValidationError("quantifier needs at least one bound")
        for bound in (self.low, self.high):
            if bound is not None and bound < 0:
                raise ShapeQueryValidationError(
                    "quantifier bounds must be non-negative, got {!r}".format(bound)
                )
        if self.low is not None and self.high is not None and self.low > self.high:
            raise ShapeQueryValidationError(
                "quantifier lower bound {} exceeds upper bound {}".format(self.low, self.high)
            )

    def accepts(self, count: int) -> bool:
        """Whether ``count`` occurrences satisfy this quantifier."""
        if self.low is not None and count < self.low:
            return False
        if self.high is not None and count > self.high:
            return False
        return True

    @property
    def required(self) -> int:
        """Minimum number of occurrences that must be present and scored."""
        return self.low if self.low is not None else 0


@dataclass(frozen=True)
class Modifier:
    """MODIFIER primitive: a slope comparison or an occurrence quantifier.

    Exactly one of (:attr:`comparison`, :attr:`quantifier`) is set.  A
    comparison may carry a numeric :attr:`factor` (e.g. ``m = >2`` — at
    least twice the referenced slope, or ``m = <0.5``).
    """

    comparison: Optional[str] = None
    factor: Optional[float] = None
    quantifier: Optional[Quantifier] = None

    def __post_init__(self):
        if (self.comparison is None) == (self.quantifier is None):
            raise ShapeQueryValidationError(
                "modifier must be either a comparison or a quantifier"
            )
        if self.comparison is not None and self.comparison not in COMPARISON_OPS:
            raise ShapeQueryValidationError(
                "unknown comparison modifier {!r}".format(self.comparison)
            )
        if self.factor is not None and self.comparison not in (">", "<"):
            raise ShapeQueryValidationError(
                "numeric factors only apply to '>' and '<' modifiers"
            )
        if self.factor is not None and self.factor <= 0:
            raise ShapeQueryValidationError("modifier factor must be positive")

    @property
    def is_quantifier(self) -> bool:
        return self.quantifier is not None

    @classmethod
    def exactly(cls, count: int) -> "Modifier":
        """``m = 2`` — the pattern occurs exactly ``count`` times."""
        return cls(quantifier=Quantifier(low=count, high=count))

    @classmethod
    def at_least(cls, count: int) -> "Modifier":
        """``m = {count,}``."""
        return cls(quantifier=Quantifier(low=count))

    @classmethod
    def at_most(cls, count: int) -> "Modifier":
        """``m = {,count}``."""
        return cls(quantifier=Quantifier(high=count))

    @classmethod
    def between(cls, low: int, high: int) -> "Modifier":
        """``m = {low,high}``."""
        return cls(quantifier=Quantifier(low=low, high=high))


@dataclass(frozen=True)
class PositionRef:
    """POSITION sub-primitive ``$``: refer to another ShapeSegment's slope.

    ``index`` is an absolute 0-based unit index (``$0``, ``$1``, ...);
    ``relative`` is −1 for ``$-`` (previous) or +1 for ``$+`` (next).
    Exactly one of the two is set.
    """

    index: Optional[int] = None
    relative: Optional[int] = None

    def __post_init__(self):
        if (self.index is None) == (self.relative is None):
            raise ShapeQueryValidationError(
                "position reference must be absolute ($i) or relative ($-/$+)"
            )
        if self.index is not None and self.index < 0:
            raise ShapeQueryValidationError("position index must be >= 0")
        if self.relative is not None and self.relative not in (-1, 1):
            raise ShapeQueryValidationError("relative position must be -1 or +1")

    def resolve(self, own_index: int) -> int:
        """Absolute unit index this reference points at, given our index."""
        if self.index is not None:
            return self.index
        return own_index + self.relative


@dataclass(frozen=True)
class Pattern:
    """PATTERN primitive: the trend to match in a VisualSegment.

    :attr:`kind` selects the scorer (Table 5).  ``slope`` kinds carry
    :attr:`theta` in degrees; ``position`` kinds carry :attr:`reference`;
    ``udp`` kinds carry :attr:`udp_name` (resolved against the UDP
    registry at execution time); ``nested`` kinds carry a full sub-query
    in :attr:`nested` (grammar rule ``P → S``).
    """

    kind: str = "any"
    theta: Optional[float] = None
    reference: Optional[PositionRef] = None
    udp_name: Optional[str] = None
    nested: object = None  # a repro.algebra.nodes.Node; typed loosely to avoid a cycle

    def __post_init__(self):
        if self.kind not in PATTERN_KINDS:
            raise ShapeQueryValidationError("unknown pattern kind {!r}".format(self.kind))
        if self.kind == "slope":
            if self.theta is None:
                raise ShapeQueryValidationError("slope pattern requires theta (degrees)")
            if not -90.0 < self.theta < 90.0:
                raise ShapeQueryValidationError(
                    "slope theta must lie strictly within (-90, 90) degrees"
                )
        if self.kind == "position" and self.reference is None:
            raise ShapeQueryValidationError("position pattern requires a reference")
        if self.kind == "udp" and not self.udp_name:
            raise ShapeQueryValidationError("udp pattern requires a name")
        if self.kind == "nested" and self.nested is None:
            raise ShapeQueryValidationError("nested pattern requires a sub-query")

    @property
    def theta_radians(self) -> float:
        """Target slope angle in radians (``slope`` kind only)."""
        return math.radians(self.theta)

    def negated(self) -> "Pattern":
        """The OPPOSITE of this pattern, for `!` push-down.

        ``up`` ↔ ``down``; a slope flips sign; the engine handles the
        remaining kinds by negating the computed score, which is flagged
        at the ShapeSegment level rather than here.
        """
        if self.kind == "up":
            return Pattern(kind="down")
        if self.kind == "down":
            return Pattern(kind="up")
        if self.kind == "slope":
            return Pattern(kind="slope", theta=-self.theta)
        return self


#: Singleton convenience patterns.
UP = Pattern(kind="up")
DOWN = Pattern(kind="down")
FLAT = Pattern(kind="flat")
ANY = Pattern(kind="any")
EMPTY = Pattern(kind="empty")


@dataclass(frozen=True)
class Sketch:
    """SKETCH primitive ``v``: a drawn polyline in domain coordinates.

    Stored as paired tuples so the dataclass stays hashable; use
    :meth:`xs`/:meth:`ys` for numpy views.  Matching uses a normalized L2
    distance (Table 5, configurable to DTW at the API level).
    """

    points: Tuple[Tuple[float, float], ...] = field(default_factory=tuple)

    def __post_init__(self):
        if len(self.points) < 2:
            raise ShapeQueryValidationError("a sketch needs at least two points")
        xs = [p[0] for p in self.points]
        if any(b < a for a, b in zip(xs, xs[1:])):
            raise ShapeQueryValidationError("sketch x values must be non-decreasing")

    def xs(self):
        """X coordinates as a list (ascending)."""
        return [p[0] for p in self.points]

    def ys(self):
        """Y coordinates as a list."""
        return [p[1] for p in self.points]

    def __len__(self):
        return len(self.points)
