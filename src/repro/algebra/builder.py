"""Fluent construction helpers for ShapeQuery trees.

These are the programmatic equivalent of the regex dialect — convenient
for tests, examples and user code that builds queries in Python::

    from repro.algebra import builder as q

    query = q.concat(q.up(), q.down(), q.up())          # u ⊗ d ⊗ u
    query = q.up() >> (q.flat() | (q.down() >> q.up())) # operator sugar
    query = q.up(x_start=2, x_end=5, sharp=True)
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.nodes import And, Concat, Node, Opposite, Or, ShapeSegment
from repro.algebra.primitives import (
    Iterator,
    Location,
    Modifier,
    Pattern,
    PositionRef,
    Quantifier,
    Sketch,
)


def location(
    x_start: Optional[float] = None,
    x_end: Optional[float] = None,
    y_start: Optional[float] = None,
    y_end: Optional[float] = None,
    window: Optional[float] = None,
) -> Location:
    """Build a :class:`Location`; ``window`` builds the ITERATOR form."""
    iterator = Iterator(window) if window is not None else None
    return Location(
        x_start=x_start,
        x_end=x_end,
        y_start=y_start,
        y_end=y_end,
        iterator=iterator,
    )


def segment(
    pattern: Optional[Pattern] = None,
    modifier: Optional[Modifier] = None,
    sketch: Optional[Sketch] = None,
    **location_kwargs,
) -> ShapeSegment:
    """Build a ShapeSegment from a pattern and location keyword arguments."""
    return ShapeSegment(
        pattern=pattern,
        location=location(**location_kwargs),
        modifier=modifier,
        sketch=sketch,
    )


def _directional(kind: str, sharp: bool, gradual: bool, **kwargs) -> ShapeSegment:
    modifier = kwargs.pop("modifier", None)
    if sharp and gradual:
        raise ValueError("a pattern cannot be both sharp and gradual")
    if sharp:
        modifier = Modifier(comparison=">>" if kind == "up" else "<<")
    elif gradual:
        modifier = Modifier(comparison=">" if kind == "up" else "<")
    return segment(pattern=Pattern(kind=kind), modifier=modifier, **kwargs)


def up(sharp: bool = False, gradual: bool = False, **kwargs) -> ShapeSegment:
    """``[p=up]`` — optionally sharp (``m=>>``) or gradual (``m=>``)."""
    return _directional("up", sharp, gradual, **kwargs)


def down(sharp: bool = False, gradual: bool = False, **kwargs) -> ShapeSegment:
    """``[p=down]`` — optionally sharp (``m=<<``) or gradual (``m=<``)."""
    return _directional("down", sharp, gradual, **kwargs)


def flat(**kwargs) -> ShapeSegment:
    """``[p=flat]``."""
    return segment(pattern=Pattern(kind="flat"), **kwargs)


def any_pattern(**kwargs) -> ShapeSegment:
    """``[p=*]`` — the wildcard pattern."""
    return segment(pattern=Pattern(kind="any"), **kwargs)


def slope(theta_degrees: float, **kwargs) -> ShapeSegment:
    """``[p=θ]`` — match a specific slope in degrees."""
    return segment(pattern=Pattern(kind="slope", theta=theta_degrees), **kwargs)


def udp(name: str, **kwargs) -> ShapeSegment:
    """``[p=udp:name]`` — a registered user-defined pattern."""
    return segment(pattern=Pattern(kind="udp", udp_name=name), **kwargs)


def position(
    index: Optional[int] = None,
    relative: Optional[int] = None,
    comparison: Optional[str] = None,
    factor: Optional[float] = None,
    **kwargs,
) -> ShapeSegment:
    """``[p=$i, m=cmp]`` — compare this segment's slope to another's."""
    ref = PositionRef(index=index, relative=relative)
    modifier = None
    if comparison is not None:
        modifier = Modifier(comparison=comparison, factor=factor)
    return segment(
        pattern=Pattern(kind="position", reference=ref), modifier=modifier, **kwargs
    )


def nested(query: Node, **kwargs) -> ShapeSegment:
    """``[p=[...]]`` — a segment whose pattern is a full sub-query."""
    return segment(pattern=Pattern(kind="nested", nested=query), **kwargs)


def sketch(points, **kwargs) -> ShapeSegment:
    """``[v=(x:y,...)]`` — precise matching against a drawn polyline."""
    return segment(sketch=Sketch(points=tuple(map(tuple, points))), **kwargs)


def repeated(base: ShapeSegment, low: Optional[int] = None, high: Optional[int] = None) -> ShapeSegment:
    """Attach an occurrence quantifier to a segment (``m={low,high}``)."""
    return base.with_modifier(Modifier(quantifier=Quantifier(low=low, high=high)))


def concat(*children: Node) -> Node:
    """CONCAT (⊗) the children; a single child passes through."""
    if len(children) == 1:
        return children[0]
    return Concat(tuple(children))


def and_(*children: Node) -> Node:
    """AND (⊙) the children; a single child passes through."""
    if len(children) == 1:
        return children[0]
    return And(tuple(children))


def or_(*children: Node) -> Node:
    """OR (⊕) the children; a single child passes through."""
    if len(children) == 1:
        return children[0]
    return Or(tuple(children))


def opposite(child: Node) -> Opposite:
    """OPPOSITE (!) of a sub-query."""
    return Opposite(child)
