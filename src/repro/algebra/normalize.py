"""ShapeQuery normalization: OPPOSITE push-down and operator flattening.

The execution engines (DP, SegmentTree, exhaustive) assume a tree built
only of CONCAT / AND / OR with negation recorded on the leaves.  This
module rewrites any ShapeQuery into that form:

* ``!`` distributes over the operators under score negation::

      !(A ⊗ B) → !A ⊗ !B        (−mean(a, b) = mean(−a, −b))
      !(A ⊕ B) → !A ⊙ !B        (−max(a, b) = min(−a, −b))
      !(A ⊙ B) → !A ⊕ !B        (−min(a, b) = max(−a, −b))
      !!A      → A

  At a leaf, ``!`` flips :attr:`ShapeSegment.negated` — except for plain
  ``up``/``down``/``slope`` patterns, which are replaced by their mirror
  pattern (``!up`` ≡ ``down`` exactly, per Table 5's antisymmetric
  scores), keeping queries readable when printed back.

* Same-operator AND/OR children are flattened (min and max are
  associative).  CONCAT is **not** flattened: ``a⊗(c⊗d)`` deliberately
  weights ``c`` and ``d`` by 1/4 each (Table 6 takes the mean at every
  level), so grouping is semantic.
"""

from __future__ import annotations

from typing import Tuple

from repro.algebra.nodes import And, Concat, Node, Opposite, Or, ShapeSegment


def normalize(node: Node) -> Node:
    """Return an equivalent tree with ``!`` pushed to leaves and AND/OR flattened."""
    return _normalize(node, negate=False)


def _normalize(node: Node, negate: bool) -> Node:
    if isinstance(node, Opposite):
        return _normalize(node.child, not negate)
    if isinstance(node, ShapeSegment):
        return _normalize_leaf(node, negate)
    if isinstance(node, Concat):
        children = tuple(_normalize(child, negate) for child in node.children)
        return Concat(children)
    if isinstance(node, And):
        cls = Or if negate else And
        return cls(_flatten(cls, tuple(_normalize(c, negate) for c in node.children)))
    if isinstance(node, Or):
        cls = And if negate else Or
        return cls(_flatten(cls, tuple(_normalize(c, negate) for c in node.children)))
    raise TypeError("unknown ShapeQuery node {!r}".format(node))


def _normalize_leaf(segment: ShapeSegment, negate: bool) -> ShapeSegment:
    effective = segment.negated != negate
    if not effective:
        return segment if not segment.negated else segment.toggled()
    pattern = segment.pattern
    # Mirror-symmetric patterns fold the negation into the pattern itself;
    # anything else keeps an explicit flag for the scorer.
    if pattern is not None and pattern.kind in ("up", "down", "slope") and segment.modifier is None:
        flipped = segment.with_pattern(pattern.negated())
        return flipped if not flipped.negated else flipped.toggled()
    if not segment.negated:
        return segment.toggled()
    return segment


def _flatten(cls, children: Tuple[Node, ...]) -> Tuple[Node, ...]:
    flat = []
    for child in children:
        if isinstance(child, cls):
            flat.extend(child.children)
        else:
            flat.append(child)
    return tuple(flat)


def is_normalized(node: Node) -> bool:
    """True when the tree contains no Opposite nodes and no nested AND/AND, OR/OR."""
    for sub in node.walk():
        if isinstance(sub, Opposite):
            return False
        if isinstance(sub, (And, Or)):
            if any(isinstance(child, type(sub)) for child in sub.child_nodes()):
                return False
    return True
