"""AST nodes of the ShapeQuery algebra (paper §3.2, Tables 1–2).

A ShapeQuery is a tree whose leaves are :class:`ShapeSegment` (the MATCH
operator ``[ ]`` bound to a set of primitives) and whose internal nodes
are the combining operators:

* :class:`Concat` (⊗) — a sequence of sub-shapes over consecutive
  sub-regions; scored as the mean of its children (Table 6).
* :class:`And` (⊙) — all sub-shapes over the *same* sub-region; min.
* :class:`Or` (⊕) — any one sub-shape over the sub-region; max.
* :class:`Opposite` (!) — negates the child's score.

Nodes are immutable; tree rewrites (normalization, ambiguity fixes)
produce new trees.  ``children`` of n-ary operators are tuples, so nodes
are hashable and structurally comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.algebra.primitives import (
    ANYWHERE,
    Location,
    Modifier,
    Pattern,
    Sketch,
)
from repro.errors import ShapeQueryValidationError


class Node:
    """Base class for ShapeQuery AST nodes."""

    def walk(self) -> "TypingIterator[Node]":
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.child_nodes():
            yield from child.walk()

    def child_nodes(self) -> Tuple["Node", ...]:
        """Direct children; leaves return an empty tuple."""
        return ()

    def segments(self) -> "TypingIterator[ShapeSegment]":
        """All ShapeSegment leaves, left to right."""
        for node in self.walk():
            if isinstance(node, ShapeSegment):
                yield node

    # Operator sugar mirroring the paper's symbols ----------------------
    def __and__(self, other: "Node") -> "And":
        """``a & b`` builds AND (⊙)."""
        return And((self, other))

    def __or__(self, other: "Node") -> "Or":
        """``a | b`` builds OR (⊕)."""
        return Or((self, other))

    def __rshift__(self, other: "Node") -> "Concat":
        """``a >> b`` builds CONCAT (⊗)."""
        return Concat((self, other))

    def __invert__(self) -> "Opposite":
        """``~a`` builds OPPOSITE (!)."""
        return Opposite(self)


@dataclass(frozen=True)
class ShapeSegment(Node):
    """A single pattern bound to the MATCH operator (paper §3).

    All primitives are optional except that a segment must say *something*
    (a pattern, a sketch, or at least a location).  ``negated`` marks a
    leaf-level OPPOSITE produced by normalization.
    """

    pattern: Optional[Pattern] = None
    location: Location = ANYWHERE
    modifier: Optional[Modifier] = None
    sketch: Optional[Sketch] = None
    negated: bool = False

    def __post_init__(self):
        if self.pattern is None and self.sketch is None and self.location.is_empty:
            raise ShapeQueryValidationError(
                "a ShapeSegment needs a pattern, a sketch, or a location"
            )
        if self.sketch is not None and self.pattern is not None:
            raise ShapeQueryValidationError(
                "a ShapeSegment cannot carry both a sketch and a pattern"
            )

    @property
    def effective_pattern(self) -> Pattern:
        """The pattern to score; a bare location matches a line segment.

        Per §3.1, a segment such as ``[x.s=2, x.e=10, y.s=10, y.e=100]``
        with no explicit pattern matches the straight line between its
        endpoints — the engine scores it as the wildcard constrained by
        the location, so here we return ``any``.
        """
        if self.pattern is not None:
            return self.pattern
        from repro.algebra.primitives import ANY

        return ANY

    @property
    def is_fuzzy(self) -> bool:
        """Fuzzy segments have at least one x endpoint free (paper §6)."""
        return self.location.is_fuzzy

    def with_location(self, location: Location) -> "ShapeSegment":
        """Copy of this segment with a replaced location."""
        return ShapeSegment(
            pattern=self.pattern,
            location=location,
            modifier=self.modifier,
            sketch=self.sketch,
            negated=self.negated,
        )

    def with_pattern(self, pattern: Optional[Pattern]) -> "ShapeSegment":
        """Copy of this segment with a replaced pattern."""
        return ShapeSegment(
            pattern=pattern,
            location=self.location,
            modifier=self.modifier,
            sketch=self.sketch,
            negated=self.negated,
        )

    def with_modifier(self, modifier: Optional[Modifier]) -> "ShapeSegment":
        """Copy of this segment with a replaced modifier."""
        return ShapeSegment(
            pattern=self.pattern,
            location=self.location,
            modifier=modifier,
            sketch=self.sketch,
            negated=self.negated,
        )

    def toggled(self) -> "ShapeSegment":
        """Copy with the negation flag flipped (OPPOSITE push-down)."""
        return ShapeSegment(
            pattern=self.pattern,
            location=self.location,
            modifier=self.modifier,
            sketch=self.sketch,
            negated=not self.negated,
        )


def _require_children(children: Tuple[Node, ...], operator: str) -> None:
    if len(children) < 2:
        raise ShapeQueryValidationError(
            "{} requires at least two children, got {}".format(operator, len(children))
        )
    for child in children:
        if not isinstance(child, Node):
            raise ShapeQueryValidationError(
                "{} children must be ShapeQuery nodes, got {!r}".format(operator, child)
            )


@dataclass(frozen=True)
class Concat(Node):
    """CONCAT (⊗): children matched over consecutive sub-regions.

    Score is the arithmetic mean of the children's scores (Table 6); the
    grouping structure matters, so nested Concats are *not* flattened into
    their parents (``a⊗(c⊗d)`` weights c and d by 1/4 each, not 1/3).
    """

    children: Tuple[Node, ...]

    def __post_init__(self):
        _require_children(self.children, "CONCAT")

    def child_nodes(self) -> Tuple[Node, ...]:
        return self.children


@dataclass(frozen=True)
class And(Node):
    """AND (⊙): all children over the same sub-region; score is the min."""

    children: Tuple[Node, ...]

    def __post_init__(self):
        _require_children(self.children, "AND")

    def child_nodes(self) -> Tuple[Node, ...]:
        return self.children


@dataclass(frozen=True)
class Or(Node):
    """OR (⊕): best single child over the sub-region; score is the max."""

    children: Tuple[Node, ...]

    def __post_init__(self):
        _require_children(self.children, "OR")

    def child_nodes(self) -> Tuple[Node, ...]:
        return self.children


@dataclass(frozen=True)
class Opposite(Node):
    """OPPOSITE (!): negates the child's score.

    Normalization (:mod:`repro.algebra.normalize`) pushes this operator to
    the leaves before execution, so engines never see it.
    """

    child: Node

    def __post_init__(self):
        if not isinstance(self.child, Node):
            raise ShapeQueryValidationError("OPPOSITE requires a ShapeQuery node")

    def child_nodes(self) -> Tuple[Node, ...]:
        return (self.child,)


def count_concat_units(node: Node) -> int:
    """Number of CONCAT units (ShapeExprs) along the widest chain.

    Used for complexity accounting (paper's ``k``) and sanity limits.
    """
    if isinstance(node, Concat):
        return sum(count_concat_units(child) for child in node.children)
    if isinstance(node, (And, Or)):
        return max(count_concat_units(child) for child in node.children)
    if isinstance(node, Opposite):
        return count_concat_units(node.child)
    return 1
