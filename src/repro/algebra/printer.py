"""Canonical textual form of a ShapeQuery.

The printer emits the ASCII regex dialect accepted by
:mod:`repro.parser.regex_parser`, so ``parse(print(q)) == q`` for any
query (round-trip property, covered by tests).  The Unicode operator
symbols of the paper (⊗ ⊙ ⊕) are also understood by the parser but the
printer always emits the ASCII forms for portability.
"""

from __future__ import annotations

from repro.algebra.nodes import And, Concat, Node, Opposite, Or, ShapeSegment
from repro.algebra.primitives import Modifier, Pattern, Quantifier


def to_regex(node: Node) -> str:
    """Render ``node`` in the canonical regex dialect."""
    return _render(node, parent_priority=0)


# Higher binds tighter: OR < AND < CONCAT < unary.
_PRIORITY = {Or: 1, And: 2, Concat: 3, Opposite: 4, ShapeSegment: 5}

_OPERATOR_GLYPH = {Or: " | ", And: " & "}


def _render(node: Node, parent_priority: int) -> str:
    priority = _PRIORITY[type(node)]
    if isinstance(node, ShapeSegment):
        text = _render_segment(node)
    elif isinstance(node, Opposite):
        text = "!" + _render(node.child, priority)
    elif isinstance(node, Concat):
        text = "".join(_render(child, priority) for child in node.children)
    else:
        glyph = _OPERATOR_GLYPH[type(node)]
        text = glyph.join(_render(child, priority) for child in node.children)
    if priority < parent_priority or (
        priority == parent_priority and isinstance(node, (Concat, And, Or))
    ):
        # Same-operator nesting keeps parentheses so the parse tree (and,
        # for CONCAT, the mean weights) round-trips exactly.
        return "(" + text + ")"
    return text


def _render_segment(segment: ShapeSegment) -> str:
    parts = []
    loc = segment.location
    if loc.iterator is not None:
        parts.append("x.s=.")
        parts.append("x.e=.+" + _num(loc.iterator.width))
    else:
        if loc.x_start is not None:
            parts.append("x.s=" + _num(loc.x_start))
        if loc.x_end is not None:
            parts.append("x.e=" + _num(loc.x_end))
    if loc.y_start is not None:
        parts.append("y.s=" + _num(loc.y_start))
    if loc.y_end is not None:
        parts.append("y.e=" + _num(loc.y_end))
    if segment.sketch is not None:
        pairs = ",".join(
            "{}:{}".format(_num(x), _num(y)) for x, y in segment.sketch.points
        )
        parts.append("v=({})".format(pairs))
    if segment.pattern is not None:
        parts.append("p=" + _render_pattern(segment.pattern))
    if segment.modifier is not None:
        parts.append("m=" + _render_modifier(segment.modifier))
    body = ",".join(parts)
    text = "[" + body + "]"
    if segment.negated:
        text = "!" + text
    return text


def _render_pattern(pattern: Pattern) -> str:
    if pattern.kind == "slope":
        return _num(pattern.theta)
    if pattern.kind == "position":
        ref = pattern.reference
        if ref.index is not None:
            return "$" + str(ref.index)
        return "$-" if ref.relative == -1 else "$+"
    if pattern.kind == "udp":
        return "udp:" + pattern.udp_name
    if pattern.kind == "nested":
        return _render(pattern.nested, parent_priority=0)
    if pattern.kind == "any":
        return "*"
    return pattern.kind  # up / down / flat / empty


def _render_modifier(modifier: Modifier) -> str:
    if modifier.comparison is not None:
        if modifier.factor is not None:
            return modifier.comparison + _num(modifier.factor)
        return modifier.comparison
    return _render_quantifier(modifier.quantifier)


def _render_quantifier(quantifier: Quantifier) -> str:
    if quantifier.low is not None and quantifier.low == quantifier.high:
        return str(quantifier.low)
    low = "" if quantifier.low is None else str(quantifier.low)
    high = "" if quantifier.high is None else str(quantifier.high)
    return "{" + low + "," + high + "}"


def _num(value: float) -> str:
    """Render a number without a trailing ``.0`` for integral values."""
    if value == int(value):
        return str(int(value))
    return repr(float(value))
