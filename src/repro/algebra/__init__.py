"""The ShapeQuery algebra (paper §3): primitives, operators, helpers."""

from repro.algebra.nodes import And, Concat, Node, Opposite, Or, ShapeSegment
from repro.algebra.normalize import is_normalized, normalize
from repro.algebra.primitives import (
    ANY,
    ANYWHERE,
    DOWN,
    EMPTY,
    FLAT,
    UP,
    Iterator,
    Location,
    Modifier,
    Pattern,
    PositionRef,
    Quantifier,
    Sketch,
)
from repro.algebra.printer import to_regex
from repro.algebra.validate import Issue, check, validate

__all__ = [
    "And",
    "Concat",
    "Node",
    "Opposite",
    "Or",
    "ShapeSegment",
    "normalize",
    "is_normalized",
    "ANY",
    "ANYWHERE",
    "DOWN",
    "EMPTY",
    "FLAT",
    "UP",
    "Iterator",
    "Location",
    "Modifier",
    "Pattern",
    "PositionRef",
    "Quantifier",
    "Sketch",
    "to_regex",
    "Issue",
    "check",
    "validate",
]
