"""Filter constraints (the ``f`` of the paper's visual parameters, §5.1).

Users apply on-the-fly filters while exploring ("luminosity < 90 &&
luminosity > 10", Figure 1c); a :class:`Filter` is one such predicate,
compiled to a boolean mask over a :class:`~repro.data.table.Table`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.table import Table
from repro.errors import DataError

_OPS = ("==", "!=", ">=", "<=", ">", "<", "in", "between")


@dataclass(frozen=True)
class Filter:
    """One predicate: ``column <op> value``.

    ``in`` takes a tuple of allowed values; ``between`` a (low, high)
    inclusive pair; the comparison operators take a scalar.
    """

    column: str
    op: str
    value: object

    def __post_init__(self):
        if self.op not in _OPS:
            raise DataError("unknown filter operator {!r}".format(self.op))

    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of rows satisfying this filter."""
        values = table.column(self.column)
        if self.op == "==":
            return values == self.value
        if self.op == "!=":
            return values != self.value
        if self.op == ">":
            return values > self.value
        if self.op == ">=":
            return values >= self.value
        if self.op == "<":
            return values < self.value
        if self.op == "<=":
            return values <= self.value
        if self.op == "in":
            allowed = set(self.value)
            return np.array([value in allowed for value in values.tolist()])
        low, high = self.value
        return (values >= low) & (values <= high)


_FILTER_RE = re.compile(
    r"^\s*(?P<column>[A-Za-z_][\w .-]*?)\s*(?P<op>==|!=|>=|<=|>|<|=)\s*(?P<value>.+?)\s*$"
)


def parse_filter(text: str) -> Filter:
    """Parse ``"column < 90"`` style filter strings (a single ``=`` is ``==``)."""
    match = _FILTER_RE.match(text)
    if match is None:
        raise DataError("cannot parse filter {!r}".format(text))
    op = match.group("op")
    if op == "=":
        op = "=="
    raw = match.group("value")
    try:
        value: object = float(raw)
    except ValueError:
        value = raw.strip("\"'")
    return Filter(column=match.group("column").strip(), op=op, value=value)


def apply_filters(table: Table, filters: Sequence[Filter]) -> Table:
    """Conjunction of all filters (``&&`` in the paper's UI)."""
    if not filters:
        return table
    mask = np.ones(len(table), dtype=bool)
    for item in filters:
        mask &= item.mask(table)
    return table.where(mask)
