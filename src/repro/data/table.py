"""A small in-memory columnar table (the paper's OLAP substrate, §5.1).

ShapeSearch's execution engine "considers a traditional OLAP data
exploration setting with dataset D, stored in either a database, or as a
raw file in CSV or JSON".  This module is that substrate: a columnar
table with CSV/JSON loading (type-inferred), filtering, group-by and
sorting — everything EXTRACT needs, with numpy arrays underneath.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import DataError


class Table:
    """Immutable columnar table: column name -> numpy array."""

    def __init__(self, columns: Dict[str, np.ndarray]):
        if not columns:
            raise DataError("a table needs at least one column")
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) != 1:
            raise DataError("column lengths differ: {}".format(lengths))
        self._columns = {name: np.asarray(values) for name, values in columns.items()}
        self._length = next(iter(lengths.values()))

    # -- construction -----------------------------------------------------
    @classmethod
    def from_arrays(cls, **columns) -> "Table":
        """Build from keyword columns of equal length."""
        return cls({name: np.asarray(values) for name, values in columns.items()})

    @classmethod
    def from_records(cls, records: Sequence[dict]) -> "Table":
        """Build from a list of homogeneous dicts."""
        if not records:
            raise DataError("no records given")
        names = list(records[0].keys())
        columns = {
            name: _infer_array([record.get(name) for record in records]) for name in names
        }
        return cls(columns)

    @classmethod
    def from_csv(cls, path: str, delimiter: str = ",") -> "Table":
        """Load a CSV file with header row; numeric columns are inferred."""
        with open(path, newline="") as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            try:
                header = next(reader)
            except StopIteration:
                raise DataError("CSV file {!r} is empty".format(path)) from None
            rows = list(reader)
        if not rows:
            raise DataError("CSV file {!r} has no data rows".format(path))
        columns = {}
        for index, name in enumerate(header):
            columns[name.strip()] = _infer_array([row[index] for row in rows])
        return cls(columns)

    @classmethod
    def from_json(cls, path: str) -> "Table":
        """Load a JSON file holding a list of records."""
        with open(path) as handle:
            records = json.load(handle)
        if not isinstance(records, list):
            raise DataError("JSON file {!r} must hold a list of records".format(path))
        return cls.from_records(records)

    # -- access -------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def column_names(self) -> List[str]:
        return list(self._columns.keys())

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise DataError(
                "unknown column {!r}; available: {}".format(name, self.column_names)
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    # -- relational operations ------------------------------------------------
    def take(self, indices: np.ndarray) -> "Table":
        """Row subset (by integer indices or boolean mask)."""
        return Table({name: values[indices] for name, values in self._columns.items()})

    def where(self, mask: np.ndarray) -> "Table":
        """Row subset by boolean mask."""
        if len(mask) != self._length:
            raise DataError("mask length {} != table length {}".format(len(mask), self._length))
        return self.take(np.asarray(mask, dtype=bool))

    def sort_by(self, *names: str) -> "Table":
        """Stable multi-key sort (last key least significant, numpy lexsort order)."""
        keys = [self.column(name) for name in reversed(names)]
        order = np.lexsort([_sortable(key) for key in keys])
        return self.take(order)

    def group_by(self, name: str) -> Iterator[Tuple[Hashable, np.ndarray]]:
        """Yield ``(key, row indices)`` per distinct value, in first-seen order."""
        values = self.column(name)
        seen: Dict[Hashable, int] = {}
        buckets: List[List[int]] = []
        keys: List[Hashable] = []
        for index, value in enumerate(values.tolist()):
            slot = seen.get(value)
            if slot is None:
                seen[value] = len(buckets)
                buckets.append([index])
                keys.append(value)
            else:
                buckets[slot].append(index)
        for key, bucket in zip(keys, buckets):
            yield key, np.asarray(bucket)


def _infer_array(values: Iterable) -> np.ndarray:
    """Numeric array when every value parses as float, else object array."""
    values = list(values)
    try:
        return np.array([float(value) for value in values], dtype=float)
    except (TypeError, ValueError):
        return np.array(values, dtype=object)


def _sortable(values: np.ndarray) -> np.ndarray:
    """Lexsort-compatible key: object columns sort by string form."""
    if values.dtype == object:
        return np.array([str(value) for value in values])
    return values
