"""A small in-memory columnar table (the paper's OLAP substrate, §5.1).

ShapeSearch's execution engine "considers a traditional OLAP data
exploration setting with dataset D, stored in either a database, or as a
raw file in CSV or JSON".  This module is that substrate: a columnar
table with CSV/JSON loading (type-inferred), filtering, group-by and
sorting — everything EXTRACT needs, with numpy arrays underneath.
"""

from __future__ import annotations

import csv
import hashlib
import json
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import DataError

#: The canonical NaN group key: every NaN encountered by
#: :meth:`Table.group_by` under the ``"coalesce"`` policy maps to this
#: one float object.  Dict and set lookups short-circuit on identity
#: before trying ``==``, so a single shared NaN object buckets correctly
#: even though ``NaN != NaN`` (and even on Python >= 3.10, where
#: ``hash(nan)`` is id-based and two NaN objects land in different
#: buckets).
_NAN_KEY = float("nan")

#: Supported NaN-key policies for :meth:`Table.group_by`.
NAN_POLICIES = ("coalesce", "drop")


def attached_state(obj: Any, name: str, factory: Callable[[], Any]) -> Any:
    """Lazily attach per-instance engine state to a (immutable) carrier.

    Tables are immutable, which makes them the natural home for caches
    derived purely from their content — the generation memo, the shape
    index — without any external registry to invalidate.  Returns the
    existing attachment or installs ``factory()``; carriers that reject
    new attributes (``__slots__``-style) just get a fresh, uncached
    value.  Attachments never pickle (``Table.__getstate__`` whitelists)
    and a concurrent double-create is benign: one value wins, the other
    was only ever a cache.
    """
    state = getattr(obj, name, None)
    if state is None:
        state = factory()
        try:
            setattr(obj, name, state)
        except AttributeError:
            pass
    return state


def canonical_group_key(value: Any) -> Any:
    """Map a raw column value to the key :meth:`Table.group_by` buckets by.

    Exists so every consumer that reasons about group identity — the
    group-count planner pass, the streaming tail's affected-key scan —
    applies the exact same NaN canonicalization as ``group_by`` itself
    and cannot drift from it.
    """
    if isinstance(value, float) and value != value:
        return _NAN_KEY
    return value


class Table:
    """Immutable columnar table: column name -> numpy array.

    Columns are exposed as read-only views, so the immutability is
    enforced, not just promised — the result cache fingerprints a table
    once and relies on its contents never changing in place.
    """

    #: Lazily memoized content caches: set by :func:`column_digests` /
    #: :func:`content_fingerprint` (or pre-seeded by ``from_shared`` and
    #: ``append_rows``), absent until then — always read via ``getattr``.
    _column_digests: Dict[str, "hashlib._Hash"]
    _fingerprint: str
    #: Shape-index lineage: ``append_rows`` points the appended table at
    #: the base table's index attachment so extension reuses it — absent
    #: on tables that were never appended from.
    _shape_index_base: Dict[Any, Any]

    def __init__(self, columns: Dict[str, np.ndarray]) -> None:
        if not columns:
            raise DataError("a table needs at least one column")
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) != 1:
            raise DataError("column lengths differ: {}".format(lengths))
        self._columns: Dict[str, np.ndarray] = {}
        for name, values in columns.items():
            # Private read-only storage: any input whose buffer a caller
            # could still write through — a writable ndarray, a view, or
            # an array wrapping an external buffer (memoryview, __array__
            # providers) — is copied, so mutating the source can never
            # reach the table and cached fingerprints can never go
            # stale.  Fresh allocations (asarray of a plain sequence)
            # and already-immutable arrays (columns of another Table)
            # are shared without copying.
            arr = values if isinstance(values, np.ndarray) else np.asarray(values)
            if (
                arr.base is not None
                or not arr.flags.owndata
                or (isinstance(values, np.ndarray) and arr.flags.writeable)
            ):
                arr = arr.copy()
            arr.setflags(write=False)
            self._columns[name] = arr
        self._length = next(iter(lengths.values()))

    # -- construction -----------------------------------------------------
    @classmethod
    def from_arrays(cls, **columns: Any) -> "Table":
        """Build from keyword columns of equal length."""
        return cls({name: np.asarray(values) for name, values in columns.items()})

    @classmethod
    def from_records(cls, records: Sequence[dict], lenient: bool = False) -> "Table":
        """Build from a list of homogeneous dicts.

        Every record must carry exactly the first record's keys: a
        missing key would silently become None/NaN in the built column
        and an extra key would be silently dropped — the same schema
        drift :meth:`append_rows` rejects, now rejected on first build
        too, with a :class:`DataError` naming the offending record.
        Pass ``lenient=True`` to restore the historical leniency
        (missing keys are filled with None/NaN, unknown keys ignored).
        """
        if not records:
            raise DataError("no records given")
        names = list(records[0].keys())
        if not lenient:
            schema = set(names)
            for index, record in enumerate(records):
                if set(record) != schema:
                    missing = sorted(schema - set(record))
                    unknown = sorted(set(record) - schema)
                    raise DataError(
                        "record {} does not match the first record's columns {}: "
                        "missing {}, unknown {} (pass lenient=True to fill missing "
                        "keys with None/NaN and drop unknown ones)".format(
                            index, sorted(schema), missing, unknown
                        )
                    )
        columns = {
            name: _infer_array([record.get(name) for record in records]) for name in names
        }
        return cls(columns)

    @classmethod
    def from_csv(cls, path: str, delimiter: str = ",") -> "Table":
        """Load a CSV file with header row; numeric columns are inferred."""
        with open(path, newline="") as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            try:
                header = next(reader)
            except StopIteration:
                raise DataError("CSV file {!r} is empty".format(path)) from None
            rows = list(reader)
        if not rows:
            raise DataError("CSV file {!r} has no data rows".format(path))
        columns: Dict[str, np.ndarray] = {}
        for index, name in enumerate(header):
            columns[name.strip()] = _infer_array([row[index] for row in rows])
        return cls(columns)

    @classmethod
    def from_shared(
        cls, columns: Dict[str, np.ndarray], fingerprint: Optional[str] = None
    ) -> "Table":
        """Adopt already-immutable arrays without copying.

        This is the shared-memory reattachment path
        (:mod:`repro.engine.shm`): the caller guarantees the arrays are
        read-only views over a buffer nobody mutates, so the constructor's
        defensive copy is skipped and the columns stay zero-copy.
        ``fingerprint`` pre-seeds the content digest the result cache keys
        on, so a reattached table hits the same cache entries as the
        publisher's original without rehashing (or re-encoding object
        columns, whose dtype the shared export may have narrowed).
        """
        if not columns:
            raise DataError("a table needs at least one column")
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) != 1:
            raise DataError("column lengths differ: {}".format(lengths))
        self = cls.__new__(cls)
        self._columns = {}  # type: Dict[str, np.ndarray]
        for name, values in columns.items():
            values = np.asarray(values)
            if values.flags.writeable:
                values = values.view()
                values.setflags(write=False)
            self._columns[name] = values
        self._length = next(iter(lengths.values()))
        if fingerprint is not None:
            self._fingerprint = fingerprint
        return self

    @classmethod
    def from_json(cls, path: str) -> "Table":
        """Load a JSON file holding a list of records."""
        with open(path) as handle:
            records = json.load(handle)
        if not isinstance(records, list):
            raise DataError("JSON file {!r} must hold a list of records".format(path))
        return cls.from_records(records)

    # -- access -------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def column_names(self) -> List[str]:
        return list(self._columns.keys())

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise DataError(
                "unknown column {!r}; available: {}".format(name, self.column_names)
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    # -- pickling ---------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Drop unpicklable caches (hashlib digests, generation locks).

        Only the columns and the memoized fingerprint travel: the
        per-column digest state and any engine-side generation memo
        attached to this instance hold hashlib objects and thread locks,
        neither of which pickles.  They are both pure caches — the
        receiver recomputes lazily on first use.
        """
        state: Dict[str, Any] = {
            "columns": self._columns,
            "length": self._length,
        }
        fingerprint = getattr(self, "_fingerprint", None)
        if fingerprint is not None:
            state["fingerprint"] = fingerprint
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._columns = {}
        for name, values in state["columns"].items():
            # Unpickled arrays come back writable; re-lock them so the
            # immutability contract (and fingerprint validity) holds.
            values.setflags(write=False)
            self._columns[name] = values
        self._length = state["length"]
        if "fingerprint" in state:
            self._fingerprint = state["fingerprint"]

    # -- relational operations ------------------------------------------------
    def take(self, indices: np.ndarray) -> "Table":
        """Row subset (by integer indices or boolean mask)."""
        columns: Dict[str, np.ndarray] = {}
        for name, values in self._columns.items():
            selected = values[indices]
            if selected.base is None:
                # Advanced indexing made a fresh private copy; lock it
                # here so the constructor shares instead of re-copying.
                selected.setflags(write=False)
            columns[name] = selected
        return Table(columns)

    def where(self, mask: np.ndarray) -> "Table":
        """Row subset by boolean mask."""
        if len(mask) != self._length:
            raise DataError("mask length {} != table length {}".format(len(mask), self._length))
        return self.take(np.asarray(mask, dtype=bool))

    def sort_by(self, *names: str) -> "Table":
        """Stable multi-key sort (last key least significant, numpy lexsort order)."""
        keys = [self.column(name) for name in reversed(names)]
        order = np.lexsort([_sortable(key) for key in keys])
        return self.take(order)

    # -- growth ----------------------------------------------------------------
    def append_rows(self, records: Sequence[dict]) -> "Table":
        """A new table with ``records`` appended (this table is unchanged).

        The streaming/append entry point: the returned table's content
        fingerprint is *extended* from this table's per-column digest
        state plus the new rows — O(new rows), not O(table) — so append
        workloads pay incremental hashing instead of a full rehash per
        batch.  The extended digest is identical to what a from-scratch
        fingerprint of the concatenated data would produce, so caches
        keyed on fingerprints behave exactly as if the table had been
        rebuilt.  When an appended value cannot be represented in the
        column's existing dtype (e.g. a float appended to an integer
        column widens it), the new table simply falls back to the lazy
        full rehash on first fingerprint use.
        """
        if not records:
            return self
        for record in records:
            unknown = set(record) - set(self._columns)
            if unknown:
                raise DataError(
                    "appended record has unknown columns {}; table has {}".format(
                        sorted(unknown), self.column_names
                    )
                )
            missing = set(self._columns) - set(record)
            if missing:
                # Unlike from_records' first-build leniency, an append
                # knows the schema: a missing key would silently inject
                # None/NaN into an existing numeric series.
                raise DataError(
                    "appended record is missing columns {}; table has {}".format(
                        sorted(missing), self.column_names
                    )
                )
        columns: Dict[str, np.ndarray] = {}
        tails: Dict[str, np.ndarray] = {}
        incremental = True
        for name, values in self._columns.items():
            raw = [record.get(name) for record in records]
            if values.dtype == object:
                # Element-wise fill: np.array would split sequence-valued
                # cells (tuple/list group keys) into a 2-D array and make
                # the concatenate below fail.
                tail = np.empty(len(raw), dtype=object)
                for index, value in enumerate(raw):
                    tail[index] = value
            else:
                try:
                    inferred = np.asarray(raw)
                    if inferred.dtype == values.dtype:
                        tail = inferred
                    else:
                        # Keep the column dtype only when the cast is
                        # value-preserving (ints into a float column);
                        # otherwise let concatenate widen and fall back
                        # to the lazy full rehash.
                        cast = inferred.astype(values.dtype)
                        if inferred.dtype != object and np.array_equal(cast, inferred):
                            tail = cast
                        else:
                            tail = inferred
                            incremental = False
                except (TypeError, ValueError, OverflowError):
                    # OverflowError: an int too large for the column's
                    # integer dtype must widen, not crash the append.
                    tail = _infer_array(raw)
                    incremental = False
            combined = np.concatenate([values, tail])
            if combined.dtype != values.dtype:
                incremental = False
                if combined.dtype == object:
                    # Concatenation boxed the numeric head as numpy
                    # scalars; a from-scratch build of the same data
                    # would hold plain Python values.  Rebuild
                    # element-wise so content (and therefore the content
                    # fingerprint) is identical either way.
                    combined = _infer_array(values.tolist() + list(raw))
            combined.setflags(write=False)
            columns[name] = combined
            tails[name] = tail
        appended = Table(columns)
        # Share (not copy) this table's shape-index attachment dict with
        # the appended table: an index built on either side of the append
        # becomes the extension base for the other, so streaming tails
        # keep their index across append_rows without retaining the whole
        # base table.  One level deep by construction — the dict holds
        # indexes, not further base links.  An engine with an artifact
        # store (``store=``) persists the delta-extended index under the
        # appended table's fingerprint, so the lineage survives process
        # restarts too (repro.engine.artifacts keeps entry witnesses on
        # disk for exactly this reuse).
        appended._shape_index_base = attached_state(self, "_shape_index_state", dict)
        if incremental:
            base = column_digests(self)
            digests: Dict[str, "hashlib._Hash"] = {}
            for name in self.column_names:
                digest = base[name].copy()
                _update_column_digest(digest, tails[name])
                digests[name] = digest
            appended._column_digests = digests
            appended._fingerprint = _combined_fingerprint(appended, digests)
        return appended

    def group_by(
        self, name: str, nan_policy: str = "coalesce"
    ) -> Iterator[Tuple[Hashable, np.ndarray]]:
        """Yield ``(key, row indices)`` per distinct value, in first-seen order.

        NaN values need an explicit policy because ``NaN != NaN``: used
        raw as dict keys, every NaN row would become its own singleton
        group.  ``nan_policy="coalesce"`` (the default) buckets all NaN
        keys into one group keyed by a single canonical NaN float;
        ``nan_policy="drop"`` skips NaN-keyed rows entirely.
        """
        if nan_policy not in NAN_POLICIES:
            raise DataError(
                "unknown nan_policy {!r}; expected one of {}".format(nan_policy, NAN_POLICIES)
            )
        values = self.column(name)
        seen: Dict[Hashable, int] = {}
        buckets: List[List[int]] = []
        keys: List[Hashable] = []
        for index, value in enumerate(values.tolist()):
            if isinstance(value, float) and value != value:
                if nan_policy == "drop":
                    continue
                value = _NAN_KEY
            slot = seen.get(value)
            if slot is None:
                seen[value] = len(buckets)
                buckets.append([index])
                keys.append(value)
            else:
                buckets[slot].append(index)
        for key, bucket in zip(keys, buckets):
            yield key, np.asarray(bucket)


def _update_column_digest(digest: "hashlib._Hash", values: np.ndarray) -> None:
    """Feed one column's content into a running digest.

    Numeric columns hash their raw bytes; object columns hash per-value
    ``repr``.  Appending rows extends the same byte stream, which is what
    makes the incremental fingerprint of :meth:`Table.append_rows` equal
    to a from-scratch rehash of the concatenated column.
    """
    if values.dtype == object:
        for value in values.tolist():
            digest.update(repr(value).encode("utf-8"))
    else:
        digest.update(np.ascontiguousarray(values).tobytes())


def column_digests(table: Table) -> Dict[str, "hashlib._Hash"]:
    """Per-column running SHA-1 digests, memoized on the instance.

    The returned digest objects are the table's live state: callers that
    extend them (``append_rows``) must ``copy()`` first.  Tables expose
    read-only columns, so the memo cannot go stale.
    """
    cached = getattr(table, "_column_digests", None)
    if cached is not None:
        return cached
    digests: Dict[str, "hashlib._Hash"] = {}
    for name in table.column_names:
        digest = hashlib.sha1()
        _update_column_digest(digest, table.column(name))
        digests[name] = digest
    try:
        table._column_digests = digests
    except AttributeError:  # __slots__-style tables: just recompute
        pass
    return digests


def _combined_fingerprint(table: Table, digests: Dict[str, "hashlib._Hash"]) -> str:
    """Fold per-column digests into one table fingerprint.

    Column names, dtypes and content all contribute, in column order, so
    a renamed column, a changed value or reordered columns all miss the
    cache — the same sensitivity the monolithic digest had.
    """
    combined = hashlib.sha1()
    for name in table.column_names:
        combined.update(name.encode("utf-8"))
        combined.update(str(table.column(name).dtype).encode("utf-8"))
        combined.update(digests[name].digest())
    return combined.hexdigest()


def content_fingerprint(table: Table) -> str:
    """A content digest of a table, stable across processes.

    Computed once and memoized on the instance (columns are read-only,
    so in-place mutation raises rather than staleing the memo); built
    from the per-column digest state so :meth:`Table.append_rows` can
    extend it with only the new rows' bytes.
    :func:`repro.engine.cache.table_fingerprint` is the engine-facing
    alias.
    """
    cached = getattr(table, "_fingerprint", None)
    if cached is not None:
        return cached
    fingerprint = _combined_fingerprint(table, column_digests(table))
    try:
        table._fingerprint = fingerprint
    except AttributeError:  # __slots__-style tables: just recompute
        pass
    return fingerprint


def _infer_array(values: Iterable) -> np.ndarray:
    """Numeric array when every value parses as float, else object array."""
    values = list(values)
    try:
        result = np.array([float(value) for value in values], dtype=float)
    except (TypeError, ValueError):
        result = np.array(values, dtype=object)
    # Freshly built and never exposed: lock it so Table shares it as-is.
    result.setflags(write=False)
    return result


def _sortable(values: np.ndarray) -> np.ndarray:
    """Lexsort-compatible key: object columns sort by string form."""
    if values.dtype == object:
        return np.array([str(value) for value in values])
    return values
