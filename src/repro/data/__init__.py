"""Data substrate: columnar tables, filters, visual parameters (§5.1)."""

from repro.data.filters import Filter, apply_filters, parse_filter
from repro.data.table import Table
from repro.data.visual_params import VisualParams

__all__ = ["Filter", "apply_filters", "parse_filter", "Table", "VisualParams"]
