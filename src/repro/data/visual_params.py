"""Visual parameters R = (z, x, y, f, b, a) of the paper (§5.1).

``z`` defines the space of candidate visualizations (one trendline per
distinct value), ``x``/``y`` the axes, ``f`` optional filters, ``b`` an
optional binning width on the x axis and ``a`` the aggregate used when a
single x value has multiple y values (the Real-Estate dataset case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.data.filters import Filter, parse_filter
from repro.errors import DataError

#: Supported aggregation functions for duplicate x values.
AGGREGATES = ("mean", "sum", "min", "max", "count", "median")


@dataclass(frozen=True)
class VisualParams:
    """The ``gen(R)`` inputs: which trendlines to generate and how."""

    z: str
    x: str
    y: str
    filters: tuple = ()
    aggregate: str = "mean"
    bin_width: Optional[float] = None

    def __post_init__(self):
        if self.aggregate not in AGGREGATES:
            raise DataError(
                "unknown aggregate {!r}; supported: {}".format(self.aggregate, AGGREGATES)
            )
        coerced = tuple(
            parse_filter(item) if isinstance(item, str) else item for item in self.filters
        )
        for item in coerced:
            if not isinstance(item, Filter):
                raise DataError("not a filter: {!r}".format(item))
        object.__setattr__(self, "filters", coerced)

    def with_filters(self, *filters: Union[str, Filter]) -> "VisualParams":
        """Copy with additional filters appended."""
        return VisualParams(
            z=self.z,
            x=self.x,
            y=self.y,
            filters=self.filters + tuple(filters),
            aggregate=self.aggregate,
            bin_width=self.bin_width,
        )
