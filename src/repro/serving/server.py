"""Socket lifecycle: the asyncio listener and a threaded test harness.

:class:`ShapeSearchServer` owns ``asyncio.start_server`` around one
:class:`~repro.serving.app.ShapeServingApp`; :func:`start_in_thread`
runs a complete server on a private event loop in a daemon thread and
hands back a :class:`ServerHandle` — the form tests, benchmarks and the
demo use, since their callers are synchronous.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Tuple

from repro.serving.app import ShapeServingApp
from repro.serving.http import STREAM_LIMIT


class ShapeSearchServer:
    """One listening socket in the caller's event loop."""

    def __init__(
        self,
        app: Optional[ShapeServingApp] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.app = app if app is not None else ShapeServingApp()
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port — the return value (and
        :attr:`address`) is how callers learn which.
        """
        self._server = await asyncio.start_server(
            self.app.handle_connection, self.host, self.port,
            limit=STREAM_LIMIT,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, shed inflight work, close every session."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.app.close()


class ServerHandle:
    """A running server on its own daemon thread (synchronous callers).

    ``handle.address`` is the bound ``(host, port)``; :meth:`stop`
    shuts the loop down and joins the thread.  Usable as a context
    manager so tests cannot leak servers.
    """

    def __init__(self, server: ShapeSearchServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self._server = server
        self._loop = loop
        self._thread = thread
        self.address = server.address
        self.app = server.app

    def stop(self, timeout: float = 10.0) -> None:
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(self._server.stop(), self._loop)
        try:
            future.result(timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(
    app: Optional[ShapeServingApp] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    timeout: float = 10.0,
) -> ServerHandle:
    """Start a server on a fresh event loop in a daemon thread.

    Blocks until the socket is bound (so ``handle.address`` is always
    valid) or raises whatever ``start`` raised.
    """
    server = ShapeSearchServer(app=app, host=host, port=port)
    loop = asyncio.new_event_loop()
    bound = threading.Event()
    failure: list = []

    def runner() -> None:
        asyncio.set_event_loop(loop)

        async def boot() -> None:
            try:
                await server.start()
            except Exception as exc:
                failure.append(exc)
            finally:
                bound.set()

        loop.run_until_complete(boot())
        if not failure:
            loop.run_forever()
        loop.close()

    thread = threading.Thread(target=runner, name="shapesearch-serving", daemon=True)
    thread.start()
    if not bound.wait(timeout):
        raise TimeoutError("server failed to bind within {}s".format(timeout))
    if failure:
        raise failure[0]
    return ServerHandle(server, loop, thread)
