"""The serving application: routing, handlers, and observability.

:class:`ShapeServingApp` is transport-agnostic glue between the wire
(:mod:`repro.serving.http` / :mod:`repro.serving.ws`) and the session
API: it owns the :class:`~repro.api.SessionRegistry` (tables), the
:class:`~repro.serving.tenancy.AdmissionController` (quotas), the
:class:`~repro.serving.result_cache.ResultCache` (responses), and the
:class:`ServerStats` every request reports into.

**The async/engine seam.**  Handlers are coroutines and must never
block the event loop (reprolint REP081 enforces this for the whole
package): CPU-bound session work — building tables, parsing and
compiling queries — runs on the default executor, and executions go
through :meth:`PreparedSearch.submit`, whose
:class:`~repro.results.SearchFuture` is bridged to asyncio via
``add_done_callback`` + ``call_soon_threadsafe``.  ``future.result`` is
only ever called after the bridge observed resolution, when it cannot
block.

**Response envelopes.**  A search response is ``{"cache": ..., "result":
{...}}`` where the ``result`` object's bytes are exactly
:func:`repro.serving.protocol.result_payload` through
:func:`~repro.serving.protocol.json_dumps` — the unit the result cache
stores, spliced into the envelope without re-serialization, so a warm
hit (``"cache": "result"``) is byte-identical to the cold response that
populated it.
"""

from __future__ import annotations

import asyncio
import functools
import json
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.api import SessionRegistry
from repro.engine.artifacts import artifact_budget, prune
from repro.engine.control import CANCEL_SHED, CANCEL_SHUTDOWN, CANCEL_USER
from repro.errors import DataError, SearchCancelled
from repro.serving import http, ws
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    Overloaded,
    RequestError,
    error_response,
    json_dumps,
    params_from_body,
    result_payload,
    search_k,
    table_from_body,
)
from repro.serving.result_cache import ResultCache
from repro.serving.tenancy import AdmissionController, TenantQuota

#: Tenant header; falls back to the body/message field, then "default".
TENANT_HEADER = "x-tenant"


def _quantile(values: List[float], q: float) -> float:
    """Nearest-rank quantile of an unsorted sample (0.0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


class _EndpointStats:
    __slots__ = ("count", "errors", "inflight", "latencies")

    def __init__(self, window: int) -> None:
        self.count = 0
        self.errors = 0
        self.inflight = 0
        self.latencies: deque = deque(maxlen=window)


class ServerStats:
    """Per-endpoint latency/error/inflight counters behind one lock.

    Latencies keep a sliding window (last ``window`` requests per
    endpoint) so the p50/p99 on ``/v1/stats`` reflect current behavior,
    not the whole process lifetime.
    """

    def __init__(
        self, clock: Callable[[], float] = time.monotonic, window: int = 1024
    ) -> None:
        self._clock = clock
        self._window = window
        self._lock = threading.Lock()
        self._endpoints: Dict[str, _EndpointStats] = {}

    def _entry(self, endpoint: str) -> _EndpointStats:
        entry = self._endpoints.get(endpoint)
        if entry is None:
            entry = self._endpoints[endpoint] = _EndpointStats(self._window)
        return entry

    def begin(self, endpoint: str) -> float:
        with self._lock:
            self._entry(endpoint).inflight += 1
        return self._clock()

    def end(self, endpoint: str, started: float, error: bool = False) -> None:
        elapsed = max(0.0, self._clock() - started)
        with self._lock:
            entry = self._entry(endpoint)
            entry.inflight = max(0, entry.inflight - 1)
            entry.count += 1
            if error:
                entry.errors += 1
            entry.latencies.append(elapsed)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                name: {
                    "count": entry.count,
                    "errors": entry.errors,
                    "inflight": entry.inflight,
                    "p50_ms": _quantile(list(entry.latencies), 0.50) * 1000.0,
                    "p99_ms": _quantile(list(entry.latencies), 0.99) * 1000.0,
                }
                for name, entry in self._endpoints.items()
            }


class ShapeServingApp:
    """Everything above the socket: routes, tenancy, caching, stats."""

    def __init__(
        self,
        registry: Optional[SessionRegistry] = None,
        quota: TenantQuota = TenantQuota(),
        max_inflight: int = 64,
        result_cache: Optional[ResultCache] = None,
        registry_capacity: int = 8,
        session_options: Optional[dict] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if registry is None:
            registry = SessionRegistry(
                capacity=registry_capacity, **(session_options or {})
            )
        self.registry = registry
        self.registry.add_evict_hook(self._artifact_gc)
        self.admission = AdmissionController(
            quota=quota, max_inflight=max_inflight, clock=clock
        )
        self.result_cache = result_cache if result_cache is not None else ResultCache()
        self.stats = ServerStats(clock=clock)
        #: The last artifact-store prune report (surfaced on /v1/stats).
        self.last_prune: Optional[dict] = None

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Shed every inflight execution, then close all sessions."""
        self.admission.sweep(CANCEL_SHUTDOWN)
        self.registry.close()

    def _artifact_gc(self, fingerprint: str, session) -> None:
        """Table-eviction hook: prune the artifact store to its budget.

        Disk follows memory: when the registry drops a session, the
        engine's artifact store (if configured) is pruned back to the
        :data:`~repro.engine.artifacts.ARTIFACT_BUDGET_ENV` byte budget
        so cold shape indexes do not outgrow the deployment.
        """
        store = getattr(session.engine, "store", None)
        if not store:
            return
        budget = artifact_budget()
        if budget is None:
            return
        report = prune(store, max_bytes=budget)
        self.last_prune = {
            "examined": report.examined,
            "removed": report.removed,
            "freed_bytes": report.freed_bytes,
            "kept_bytes": report.kept_bytes,
        }

    # -- connection entry point ---------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One accepted socket: keep-alive HTTP, or a WebSocket upgrade."""
        try:
            while True:
                request = await http.read_request(reader)
                if request is None:
                    break
                if request.path == "/v1/submit" and request.wants_websocket:
                    await self._handle_ws(request, reader, writer)
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _dispatch(
        self, request: http.HTTPRequest, writer: asyncio.StreamWriter
    ) -> bool:
        handler = self._route(request)
        # Only routed paths get their own stats entry; everything else
        # shares one fixed label so arbitrary 404 paths cannot grow the
        # per-endpoint table without bound.
        endpoint = request.path if handler is not None else "other"
        started = self.stats.begin(endpoint)
        status = 500
        try:
            if handler is None:
                status, body = 404, json_dumps(
                    {"error": {"code": "not_found",
                               "message": "no route {} {}".format(
                                   request.method, request.path)}}
                )
            else:
                status, body = await handler(request)
        except ValueError as exc:
            status, payload = 400, {
                "error": {"code": "bad_request", "message": str(exc)}
            }
            body = json_dumps(payload)
        except Exception as exc:  # every error is a response, never a hang
            status, payload = error_response(exc)
            body = json_dumps(payload)
        finally:
            self.stats.end(endpoint, started, error=status >= 400)
        keep_alive = request.keep_alive
        writer.write(
            http.response_bytes(status, body, keep_alive=keep_alive)
        )
        try:
            await writer.drain()
        except ConnectionError:
            return False
        return keep_alive

    def _route(self, request: http.HTTPRequest):
        routes = {
            ("POST", "/v1/tables"): self._handle_tables,
            ("POST", "/v1/prepare"): self._handle_prepare,
            ("POST", "/v1/search"): self._handle_search,
            ("GET", "/v1/stats"): self._handle_stats,
        }
        return routes.get((request.method, request.path))

    # -- HTTP handlers -------------------------------------------------------
    async def _handle_tables(self, request: http.HTTPRequest) -> Tuple[int, bytes]:
        body = request.json()
        loop = asyncio.get_running_loop()
        fingerprint, rows, columns = await loop.run_in_executor(
            None, self._publish_sync, body
        )
        return 200, json_dumps(
            {"fingerprint": fingerprint, "rows": rows, "columns": columns}
        )

    def _publish_sync(self, body: dict) -> Tuple[str, int, list]:
        table = table_from_body(body)
        fingerprint = self.registry.publish(table)
        return fingerprint, len(table), list(table.column_names)

    async def _handle_prepare(self, request: http.HTTPRequest) -> Tuple[int, bytes]:
        body = request.json()
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(None, self._prepare_payload_sync, body)
        return 200, json_dumps(payload)

    def _prepare_payload_sync(self, body: dict) -> dict:
        prepared, k, _key, fingerprint, session = self._prepare_search_sync(body)
        try:
            return {
                "table": fingerprint,
                "query": prepared.explain(),
                "plan": prepared.explain_plan(k=k),
                "k": k,
            }
        finally:
            self.registry.release(session)

    async def _handle_search(self, request: http.HTTPRequest) -> Tuple[int, bytes]:
        body = request.json()
        tenant = self._tenant(request, body)
        try:
            cache_flag, payload = await self._search(body, tenant)
        except SearchCancelled as exc:
            raise self._map_cancel(exc)
        return 200, _result_envelope(payload, cache_flag)

    async def _handle_stats(self, request: http.HTTPRequest) -> Tuple[int, bytes]:
        return 200, json_dumps(self.snapshot())

    def _tenant(self, request: http.HTTPRequest, body: dict) -> str:
        tenant = request.headers.get(TENANT_HEADER) or body.get("tenant")
        return tenant if isinstance(tenant, str) and tenant else "default"

    @staticmethod
    def _map_cancel(exc: SearchCancelled) -> Exception:
        """A shed execution is the server's refusal, not a user cancel."""
        if getattr(exc, "_shed", False):
            return Overloaded("overloaded", "execution shed under load")
        return exc

    # -- the shared search core ---------------------------------------------
    async def _release_session(self, session) -> None:
        """Drop a session lease off-loop.

        The last release of an evicted session runs its deferred
        :meth:`ShapeSearch.close` (worker pools, shared memory) — real
        blocking work, so it goes through the executor like every other
        engine call.
        """
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.registry.release, session)

    def _prepare_search_sync(self, body: dict):
        """Resolve (prepared, k, cache key, fingerprint, session) for one request.

        Runs on the executor: registry lookup, query parse + compile
        (through the session's plan cache), and the response-determining
        cache key.  Raises :class:`RequestError` 404 for fingerprints
        never published (or already evicted).

        The returned session is **checked out** of the registry — the
        lease keeps a concurrent publish/close from tearing it down
        mid-search — and the caller must ``registry.release(session)``
        exactly once when done with it (on error the lease is released
        here before the exception propagates).
        """
        fingerprint = body.get("table")
        if not isinstance(fingerprint, str) or not fingerprint:
            raise DataError("request field 'table' must be a fingerprint string")
        try:
            session = self.registry.checkout(fingerprint)
        except DataError:
            raise RequestError(
                404, "unknown_table",
                "table {!r} is not published (POST /v1/tables first)".format(
                    fingerprint
                ),
            )
        try:
            query = body.get("query")
            if not isinstance(query, str) or not query:
                raise DataError("request field 'query' must be a non-empty string")
            params = params_from_body(body)
            k = search_k(body)
            prepared = session.prepare(
                query, z=params.z, x=params.x, y=params.y, filters=params.filters,
                aggregate=params.aggregate, bin_width=params.bin_width,
            )
            key = ResultCache.key(
                fingerprint, prepared.explain(), params, k, session.engine.precision
            )
        except BaseException:
            self.registry.release(session)
            raise
        return prepared, k, key, fingerprint, session

    async def _search(
        self, body: dict, tenant: str, progress=None
    ) -> Tuple[Optional[str], bytes]:
        """Admission → cache → engine; returns (cache flag, result bytes).

        The happy path of both ``POST /v1/search`` and each WebSocket
        search message.  A result-cache hit returns the stored bytes
        without consuming admission capacity or touching the engine —
        the Score stage never runs (``"cache": "result"`` in the
        envelope).  A cancellation raises :class:`SearchCancelled`
        annotated with whether it was a load-shed.
        """
        loop = asyncio.get_running_loop()
        prepared, k, key, _fingerprint, session = await loop.run_in_executor(
            None, self._prepare_search_sync, body
        )
        try:
            cached = self.result_cache.get(key)
            if cached is not None:
                return "result", cached
            code = self.admission.admit(tenant)
            if code is not None:
                raise Overloaded(code)
            future = None
            try:
                future = await loop.run_in_executor(
                    None, functools.partial(prepared.submit, k=k, progress=progress)
                )
                self.admission.attach(tenant, future)
                await _await_future(future)
                try:
                    results = future.result(timeout=0)
                except SearchCancelled as exc:
                    exc._shed = future.cancel_reason == CANCEL_SHED
                    raise
            finally:
                self.admission.finish(tenant, future)
            payload = json_dumps(result_payload(results))
            self.result_cache.put(key, payload)
            return None, payload
        finally:
            await self._release_session(session)

    # -- WebSocket -----------------------------------------------------------
    async def _handle_ws(
        self,
        request: http.HTTPRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """The streaming surface: search/cancel messages, progress frames.

        Client messages are JSON texts: ``{"type": "search", "id": ...,
        "table": ..., "query": ..., "z"/"x"/"y": ..., "k": ...}`` starts
        a search (many may run concurrently on one connection, each
        under a distinct id — reusing an id still active on the
        connection is refused with an ``error`` frame);
        ``{"type": "cancel", "id": ...}`` cooperatively cancels one.
        A cancel racing ahead of its search's engine submission is
        remembered and applied at submit; cancels for ids that are
        unknown or already finished are ignored, so neither map can
        grow past the connection's concurrently active searches.
        The server streams ``progress`` frames per completed shard and
        terminates every search with exactly one ``result``, ``error``,
        or ``cancelled`` frame — a refused or shed search gets its
        terminal frame immediately, never a silent hang.
        """
        key = request.headers.get("sec-websocket-key")
        if not key:
            writer.write(http.response_bytes(
                400, json_dumps({"error": {"code": "bad_handshake",
                                           "message": "missing websocket key"}}),
                keep_alive=False,
            ))
            await writer.drain()
            return
        writer.write(http.switching_protocols(ws.accept_key(key)))
        await writer.drain()
        conn = ws.WebSocketConnection(reader, writer)
        header_tenant = request.headers.get(TENANT_HEADER, "")
        searches: Dict[object, object] = {}
        cancelled_early: set = set()
        tasks: set = set()
        try:
            while True:
                payload = await conn.recv()
                if payload is None:
                    break
                try:
                    message = json.loads(payload.decode("utf-8"))
                    if not isinstance(message, dict):
                        raise ValueError("message must be a JSON object")
                except (ValueError, UnicodeDecodeError) as exc:
                    await conn.send_json({
                        "code": "bad_request", "message": str(exc),
                        "type": "error",
                    })
                    continue
                mtype = message.get("type")
                if mtype == "search":
                    sid = message.get("id")
                    if sid in searches:
                        await conn.send_json({
                            "code": "bad_request",
                            "id": sid,
                            "message": "search id {!r} is already active on "
                                       "this connection".format(sid),
                            "type": "error",
                        })
                        continue
                    # Claim the id now (value None until the engine
                    # future exists) so a racing cancel has somewhere to
                    # land and a duplicate submit is refused.
                    searches[sid] = None
                    tenant = message.get("tenant") or header_tenant or "default"
                    task = asyncio.ensure_future(self._ws_search(
                        conn, message, tenant, searches, cancelled_early
                    ))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                elif mtype == "cancel":
                    sid = message.get("id")
                    if sid in searches:
                        future = searches[sid]
                        if future is not None:
                            future.cancel(reason=CANCEL_USER)
                        else:
                            cancelled_early.add(sid)
                    # else: unknown or already-finished id — nothing to
                    # cancel, and remembering it would only leak (or
                    # shoot down a later search reusing the id).
                elif mtype == "ping":
                    await conn.send_json({"type": "pong"})
                else:
                    await conn.send_json({
                        "code": "bad_request",
                        "id": message.get("id"),
                        "message": "unknown message type {!r}".format(mtype),
                        "type": "error",
                    })
        finally:
            for future in searches.values():
                if future is not None:
                    future.cancel(reason=CANCEL_SHUTDOWN)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            await conn.close()

    async def _ws_search(
        self, conn: "ws.WebSocketConnection", message: dict, tenant: str,
        searches: dict, cancelled_early: set,
    ) -> None:
        """One search task: run it, release its id, send its terminal frame.

        The id bookkeeping (``searches`` entry, any pending early
        cancel) is cleared *before* the terminal frame is written, so a
        client that saw the terminal frame can immediately reuse the id
        without racing this task's teardown.
        """
        sid = message.get("id")
        endpoint = "WS /v1/submit"
        started = self.stats.begin(endpoint)
        error = True
        terminal = None
        try:
            try:
                error, terminal = await self._ws_search_run(
                    conn, message, tenant, sid, searches, cancelled_early
                )
            except Exception as exc:
                error, terminal = True, self._ws_error_frame(sid, exc)
        finally:
            searches.pop(sid, None)
            cancelled_early.discard(sid)
            self.stats.end(endpoint, started, error=error)
        if terminal is not None:
            await conn.send(terminal)

    async def _ws_search_run(
        self, conn: "ws.WebSocketConnection", message: dict, tenant: str,
        sid, searches: dict, cancelled_early: set,
    ) -> Tuple[bool, Optional[bytes]]:
        """The search itself; returns ``(is_error, terminal frame bytes)``.

        Sends ``accepted``/``progress`` frames inline but leaves the
        terminal frame to the caller, which sends it only after the
        connection's id bookkeeping for ``sid`` is released.
        """
        loop = asyncio.get_running_loop()
        try:
            prepared, k, key, _fingerprint, session = await loop.run_in_executor(
                None, self._prepare_search_sync, message
            )
        except Exception as exc:
            return True, self._ws_error_frame(sid, exc)
        try:
            cached = self.result_cache.get(key)
            if cached is not None:
                return False, _result_envelope(cached, "result", sid=sid)
            code = self.admission.admit(tenant)
            if code is not None:
                return True, json_dumps({"code": code, "id": sid, "type": "error"})
            updates: asyncio.Queue = asyncio.Queue()

            def on_progress(completed, total):
                loop.call_soon_threadsafe(updates.put_nowait, (completed, total))

            future = None
            try:
                future = await loop.run_in_executor(
                    None,
                    functools.partial(prepared.submit, k=k, progress=on_progress),
                )
                searches[sid] = future
                if sid in cancelled_early:
                    cancelled_early.discard(sid)
                    future.cancel(reason=CANCEL_USER)
                self.admission.attach(tenant, future)
                future.add_done_callback(
                    lambda _f: loop.call_soon_threadsafe(updates.put_nowait, None)
                )
                await conn.send_json({"id": sid, "type": "accepted"})
                while True:
                    item = await updates.get()
                    if item is None:
                        break
                    completed, total = item
                    await conn.send_json({
                        "completed": completed, "id": sid, "total": total,
                        "type": "progress",
                    })
                try:
                    results = future.result(timeout=0)
                except SearchCancelled:
                    reason = future.cancel_reason or CANCEL_USER
                    if reason == CANCEL_SHED:
                        return True, json_dumps({
                            "code": "overloaded", "id": sid, "type": "error",
                        })
                    return False, json_dumps({
                        "id": sid, "reason": reason, "type": "cancelled",
                    })
                except Exception as exc:
                    return True, self._ws_error_frame(sid, exc)
            finally:
                self.admission.finish(tenant, future)
            payload = json_dumps(result_payload(results))
            self.result_cache.put(key, payload)
            return False, _result_envelope(payload, None, sid=sid)
        finally:
            await self._release_session(session)

    def _ws_error_frame(self, sid, exc: BaseException) -> bytes:
        _status, payload = error_response(exc)
        body = payload["error"]
        return json_dumps({
            "code": body["code"], "id": sid, "message": body["message"],
            "type": "error",
        })

    # -- observability -------------------------------------------------------
    def snapshot(self) -> dict:
        """The ``GET /v1/stats`` payload."""
        return {
            "protocol": PROTOCOL_VERSION,
            "endpoints": self.stats.snapshot(),
            "admission": self.admission.snapshot(),
            "result_cache": self.result_cache.snapshot(),
            "registry": {
                "sessions": len(self.registry),
                "capacity": self.registry.capacity,
                "fingerprints": self.registry.fingerprints(),
            },
            "artifact_prune": self.last_prune,
        }


#: Distinguishes "HTTP envelope, no id field" from a WS search whose id
#: happens to be null — the WS terminal frame always carries id + type.
_NO_ID = object()


def _result_envelope(
    payload: bytes, cache: Optional[str], sid: object = _NO_ID
) -> bytes:
    """Splice stored result bytes into a response envelope.

    The ``result`` field's bytes are used verbatim (no decode/re-encode
    round trip), which is what makes cached and cold responses
    byte-identical in the part that matters.  Field order is the sorted
    order :func:`json_dumps` would produce: cache, id, result, type.
    """
    parts = [b'"cache":' + json_dumps(cache)]
    if sid is not _NO_ID:
        parts.append(b'"id":' + json_dumps(sid))
    parts.append(b'"result":' + payload)
    if sid is not _NO_ID:
        parts.append(b'"type":"result"')
    return b"{" + b",".join(parts) + b"}"


async def _await_future(future) -> None:
    """Await a :class:`SearchFuture` without blocking the event loop."""
    loop = asyncio.get_running_loop()
    event = asyncio.Event()
    future.add_done_callback(lambda _f: loop.call_soon_threadsafe(event.set))
    await event.wait()
