"""Wire protocol: canonical JSON payloads and the error-status mapping.

Everything the server writes goes through :func:`json_dumps` — sorted
keys, minimal separators, numpy scalars coerced — so one logical
response has exactly one byte encoding.  That determinism is what makes
the cross-request result cache sound: a cached response *is* the bytes a
cold execution would have produced, and the acceptance contract
("responses byte-identical to direct session-API calls") reduces to
comparing :func:`result_payload` outputs.

The module is pure functions over plain data (no sockets, no asyncio),
shared by the async server and the synchronous test client.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.data.table import Table
from repro.data.visual_params import VisualParams
from repro.errors import (
    AmbiguityError,
    DataError,
    SearchCancelled,
    ShapeQuerySyntaxError,
    ShapeQueryValidationError,
)
from repro.results import ResultSet

#: Bumped on any wire-visible change; clients check it on /v1/stats.
PROTOCOL_VERSION = 1


class RequestError(Exception):
    """A request the server refuses with a specific status + code.

    Raised by handlers for conditions that are neither library errors
    nor overload — most prominently ``404 unknown_table`` when a search
    addresses a fingerprint that was never published (or was evicted).
    """

    def __init__(self, status: int, code: str, message: str = "") -> None:
        super().__init__(message or code)
        self.status = status
        self.code = code


class Overloaded(Exception):
    """Admission control refused the request (HTTP 429, never a hang).

    ``code`` distinguishes the two refusals: ``"rate_limited"`` (the
    tenant's token bucket is empty) and ``"overloaded"`` (an inflight
    cap is full, or the execution was shed mid-flight to make room).
    """

    def __init__(self, code: str, message: str = "") -> None:
        super().__init__(message or code)
        self.code = code


def _json_default(value: Any) -> Any:
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(
        "value of type {!r} is not JSON-serializable".format(type(value))
    )


def json_dumps(obj: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace, numpy coerced."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=_json_default
    ).encode("utf-8")


def stats_payload(stats: Any) -> Optional[dict]:
    """The wire form of one call's :class:`ExecutionStats` (or None)."""
    if stats is None:
        return None
    payload = {
        "candidates": stats.candidates,
        "extracted": stats.extracted,
        "eager_discarded": stats.eager_discarded,
        "scored": stats.scored,
        "shards": stats.shards,
        "generation": stats.generation,
        "appended_rows": stats.appended_rows,
        "index_candidates": stats.index_candidates,
        "index_pruned": stats.index_pruned,
        "index_source": stats.index_source,
        "index_bounds": stats.index_bounds,
        "index_reason": stats.index_reason,
        "trendline_cache_hit": stats.trendline_cache_hit,
        "plan_cache_hit": stats.plan_cache_hit,
    }
    return payload


def result_payload(results: ResultSet) -> dict:
    """The wire form of a :class:`~repro.results.ResultSet`.

    Matches ride as ``to_records``-shaped dicts, stats as the flat
    :func:`stats_payload` dict, the plan as its rendered text.  Passing
    this through :func:`json_dumps` yields the exact bytes the result
    cache stores — a direct session-API call and a served response over
    the same (table, query, k) encode identically.
    """
    return {
        "matches": results.to_records(),
        "stats": stats_payload(results.stats),
        "plan": results.plan,
    }


def params_from_body(body: dict) -> VisualParams:
    """Build :class:`VisualParams` from a request body.

    ``z``/``x``/``y`` are required strings; ``filters`` is a list of
    filter strings (``"price > 10"``), parsed by the same
    :func:`~repro.data.filters.parse_filter` the Python API uses.
    """
    for name in ("z", "x", "y"):
        value = body.get(name)
        if not isinstance(value, str) or not value:
            raise DataError(
                "request field {!r} must be a non-empty column name".format(name)
            )
    filters = body.get("filters", ())
    if isinstance(filters, str):
        filters = (filters,)
    if not isinstance(filters, (list, tuple)):
        raise DataError("request field 'filters' must be a list of filter strings")
    bin_width = body.get("bin_width")
    return VisualParams(
        z=body["z"],
        x=body["x"],
        y=body["y"],
        filters=tuple(filters),
        aggregate=body.get("aggregate", "mean"),
        bin_width=float(bin_width) if bin_width is not None else None,
    )


def table_from_body(body: dict) -> Table:
    """Build a :class:`Table` from a ``POST /v1/tables`` body.

    Accepts ``{"columns": {name: [values...]}}`` (the compact form) or
    ``{"records": [{...}, ...]}`` (one dict per row).
    """
    columns = body.get("columns")
    if columns is not None:
        if not isinstance(columns, dict) or not columns:
            raise DataError("'columns' must be a non-empty mapping of arrays")
        return Table.from_arrays(**columns)
    records = body.get("records")
    if records is not None:
        if not isinstance(records, list) or not records:
            raise DataError("'records' must be a non-empty list of row dicts")
        return Table.from_records(records)
    raise DataError("table payload needs 'columns' or 'records'")


def search_k(body: dict) -> int:
    """The validated ``k`` of a search request (default 10)."""
    k = body.get("k", 10)
    if isinstance(k, bool) or not isinstance(k, int) or k < 1:
        raise DataError("request field 'k' must be a positive integer")
    return k


#: Exception type -> (HTTP status, wire error code).  Order matters:
#: the first matching entry wins, so subclasses precede their bases.
_ERROR_MAP: Tuple[Tuple[type, int, str], ...] = (
    (Overloaded, 429, ""),  # code taken from the exception
    (RequestError, 0, ""),  # status + code taken from the exception
    (SearchCancelled, 409, "cancelled"),
    (ShapeQuerySyntaxError, 400, "bad_query"),
    (ShapeQueryValidationError, 400, "bad_query"),
    (AmbiguityError, 400, "bad_query"),
    (DataError, 400, "bad_request"),
)


def error_response(exc: BaseException) -> Tuple[int, Dict[str, Any]]:
    """Map an exception to ``(status, {"error": {...}})``.

    Library errors (syntax, validation, data) are the client's fault
    (400); an unpublished fingerprint is 404; admission refusals are
    429 with the refusal code; anything unrecognized is an opaque 500
    (the message is not leaked — check the server log).
    """
    for exc_type, status, code in _ERROR_MAP:
        if isinstance(exc, exc_type):
            if isinstance(exc, (Overloaded, RequestError)):
                status = exc.status if isinstance(exc, RequestError) else 429
                code = exc.code
            return status, {"error": {"code": code, "message": str(exc)}}
    return 500, {"error": {"code": "internal", "message": "internal server error"}}
