"""The cross-request result cache: whole responses, addressed by content.

The engine's own caches (trendlines, plans, indexes) make a repeated
search *cheap*; this cache makes it *free*.  The key is everything that
determines the bytes of a response —

    (table content fingerprint, canonical query text, VisualParams,
     k, precision)

— all content-addressed or value-typed, so two clients phrasing the same
question differently (``"up then down"`` vs ``"[p=up][p=down]"``) hit
one entry, and *any* change to the data, the query, or the requested
precision misses by construction.  Values are the canonical JSON bytes
of :func:`repro.serving.protocol.result_payload`: a hit is written to
the socket as-is, byte-identical to the cold execution that populated
it, with no Score stage, no serialization, no engine involvement.

Storage is the engine's :class:`~repro.engine.cache.LRUCache` with its
``max_bytes`` cost budget — entry count and resident bytes both bound
the cache, and hit/miss/bytes accounting feeds ``/v1/stats``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.data.visual_params import VisualParams
from repro.engine.cache import CacheStats, LRUCache

#: Defaults: plenty for an interactive exploration session, small next
#: to one resident table.
DEFAULT_CAPACITY = 256
DEFAULT_MAX_BYTES = 32 * 1024 * 1024


class ResultCache:
    """LRU + bytes-budget cache of serialized search responses."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self._cache = LRUCache(capacity=capacity, max_bytes=max_bytes)

    @staticmethod
    def key(
        fingerprint: str,
        canonical_query: str,
        params: VisualParams,
        k: int,
        precision: str,
    ) -> Tuple:
        """The response-determining tuple (hashable: params is frozen)."""
        return (fingerprint, canonical_query, params, int(k), precision)

    def get(self, key: Tuple) -> Optional[bytes]:
        """Cached response bytes, or None (counted as hit/miss)."""
        return self._cache.get(key)

    def put(self, key: Tuple, payload: bytes) -> None:
        """Admit one serialized response; cost is its byte length."""
        self._cache.put(key, payload, cost=len(payload))

    def invalidate(self) -> None:
        self._cache.clear()

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def snapshot(self) -> dict:
        stats = self._cache.stats
        return {
            "entries": len(self._cache),
            "capacity": self._cache.capacity,
            "bytes": stats.bytes,
            "max_bytes": self._cache.max_bytes,
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": stats.hit_rate,
            "evictions": stats.evictions,
        }
