"""A synchronous client for the serving API (tests, benchmarks, demos).

HTTP endpoints ride :mod:`http.client`; the streaming surface opens a
raw socket, performs the RFC 6455 handshake, and reuses the *server's*
frame codec (:mod:`repro.serving.ws`) with client-side masking — the
codec is exercised from both directions by construction.

Every error response raises :class:`ServingError` carrying the HTTP
status and the wire error code, so callers branch on
``exc.code == "overloaded"`` instead of parsing messages.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.serving.protocol import json_dumps
from repro.serving.ws import OP_CLOSE, OP_PING, OP_PONG, FrameParser, encode_frame

_WS_GUID_KEY_BYTES = 16


class ServingError(Exception):
    """An error response from the server (status + wire code attached)."""

    def __init__(self, status: int, code: str, message: str = "") -> None:
        super().__init__("{} {}: {}".format(status, code, message or "(no message)"))
        self.status = status
        self.code = code


class ServingClient:
    """One tenant's synchronous view of a running server."""

    def __init__(
        self, host: str, port: int, tenant: str = "default",
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        """One round trip; raises :class:`ServingError` on any non-200."""
        payload = json_dumps(body) if body is not None else None
        headers = {"X-Tenant": self.tenant}
        if payload is not None:
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # A dropped keep-alive connection gets one fresh retry.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        decoded = json.loads(raw.decode("utf-8")) if raw else {}
        if response.status != 200:
            error = decoded.get("error", {}) if isinstance(decoded, dict) else {}
            raise ServingError(
                response.status, error.get("code", "unknown"),
                error.get("message", ""),
            )
        return decoded

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the API surface -----------------------------------------------------
    def publish_columns(self, **columns) -> str:
        """Publish a table as column arrays; returns its fingerprint."""
        coerced = {
            name: values.tolist() if hasattr(values, "tolist") else list(values)
            for name, values in columns.items()
        }
        return self.request("POST", "/v1/tables", {"columns": coerced})["fingerprint"]

    def publish_records(self, records: Sequence[dict]) -> str:
        return self.request(
            "POST", "/v1/tables", {"records": list(records)}
        )["fingerprint"]

    def prepare(self, table: str, query: str, z: str, x: str, y: str,
                k: int = 10, **extra) -> dict:
        body = {"table": table, "query": query, "z": z, "x": x, "y": y, "k": k}
        body.update(extra)
        return self.request("POST", "/v1/prepare", body)

    def search(self, table: str, query: str, z: str, x: str, y: str,
               k: int = 10, **extra) -> dict:
        """Blocking top-k: ``{"cache": "result"|None, "result": {...}}``."""
        body = {"table": table, "query": query, "z": z, "x": x, "y": y, "k": k}
        body.update(extra)
        return self.request("POST", "/v1/search", body)

    def stats(self) -> dict:
        return self.request("GET", "/v1/stats")

    def open_stream(self) -> "StreamingSearch":
        """Open the WebSocket surface (one connection, many searches)."""
        return StreamingSearch(
            self.host, self.port, tenant=self.tenant, timeout=self.timeout
        )


class StreamingSearch:
    """A synchronous WebSocket session against ``/v1/submit``.

    :meth:`submit` sends one search message and returns its id;
    :meth:`frames` iterates server frames as dicts until the given
    search terminates; :meth:`result` drives that loop and returns the
    final result envelope (raising :class:`ServingError` for ``error``
    frames).  Frames for *other* concurrently submitted searches are
    buffered, so interleaved submissions on one connection work.
    """

    def __init__(self, host: str, port: int, tenant: str = "default",
                 timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._parser = FrameParser()
        self._buffered: Dict[Any, List[dict]] = {}
        self._loose: List[dict] = []
        self._next_id = 0
        self.tenant = tenant
        key_bytes = os.urandom(_WS_GUID_KEY_BYTES)
        import base64

        key = base64.b64encode(key_bytes).decode("ascii")
        handshake = (
            "GET /v1/submit HTTP/1.1\r\n"
            "Host: {}:{}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            "Sec-WebSocket-Key: {}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "X-Tenant: {}\r\n\r\n".format(host, port, key, tenant)
        )
        self._sock.sendall(handshake.encode("latin-1"))
        response = b""
        while b"\r\n\r\n" not in response:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise ConnectionError("server closed during websocket handshake")
            response += chunk
        head, _sep, rest = response.partition(b"\r\n\r\n")
        if b" 101 " not in head.split(b"\r\n", 1)[0]:
            raise ConnectionError(
                "websocket handshake refused: {!r}".format(head[:120])
            )
        if rest:
            self._feed(rest)

    # -- sending -------------------------------------------------------------
    def _send_json(self, obj: dict) -> None:
        frame = encode_frame(json_dumps(obj), mask=os.urandom(4))
        self._sock.sendall(frame)

    def submit(self, table: str, query: str, z: str, x: str, y: str,
               k: int = 10, search_id: Optional[Any] = None, **extra) -> Any:
        """Send one search; returns the id its frames will carry."""
        if search_id is None:
            self._next_id += 1
            search_id = self._next_id
        message = {
            "type": "search", "id": search_id, "table": table, "query": query,
            "z": z, "x": x, "y": y, "k": k,
        }
        message.update(extra)
        self._send_json(message)
        return search_id

    def cancel(self, search_id: Any) -> None:
        self._send_json({"type": "cancel", "id": search_id})

    # -- receiving -----------------------------------------------------------
    def _feed(self, data: bytes) -> None:
        for opcode, payload in self._parser.feed(data):
            if opcode == OP_PING:
                self._sock.sendall(
                    encode_frame(payload, opcode=OP_PONG, mask=os.urandom(4))
                )
                continue
            if opcode in (OP_PONG,):
                continue
            if opcode == OP_CLOSE:
                raise ConnectionError("server closed the websocket")
            frame = json.loads(payload.decode("utf-8"))
            sid = frame.get("id")
            if sid is None:
                self._loose.append(frame)
            else:
                self._buffered.setdefault(sid, []).append(frame)

    def _recv_some(self) -> None:
        data = self._sock.recv(65536)
        if not data:
            raise ConnectionError("server closed the websocket")
        self._feed(data)

    def next_frame(self, search_id: Any) -> dict:
        """The next frame addressed to ``search_id`` (blocking)."""
        while True:
            queued = self._buffered.get(search_id)
            if queued:
                return queued.pop(0)
            self._recv_some()

    def frames(self, search_id: Any) -> Iterator[dict]:
        """Frames for one search, ending after its terminal frame."""
        while True:
            frame = self.next_frame(search_id)
            yield frame
            if frame.get("type") in ("result", "error", "cancelled"):
                return

    def result(self, search_id: Any) -> dict:
        """Drain to the terminal frame; return it (or raise on error)."""
        for frame in self.frames(search_id):
            if frame.get("type") == "error":
                raise ServingError(0, frame.get("code", "unknown"),
                                   frame.get("message", ""))
            if frame.get("type") in ("result", "cancelled"):
                return frame
        raise ConnectionError("stream ended without a terminal frame")

    def close(self) -> None:
        try:
            self._sock.sendall(
                encode_frame(b"\x03\xe8", opcode=OP_CLOSE, mask=os.urandom(4))
            )
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "StreamingSearch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
