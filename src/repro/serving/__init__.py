"""Multi-tenant serving layer: the session API over the wire.

The session API (:class:`repro.ShapeSearch` → ``prepare`` → ``run`` /
``submit``) is a single-process surface; this package puts it behind a
socket so many clients share one resident process — tables published
once and addressed by content fingerprint, engines and caches warm
across requests, per-shard progress streamed live.  Everything is
standard library: an asyncio streams server speaking minimal HTTP/1.1
and RFC 6455 WebSocket, no third-party dependencies.

Endpoints (see the README's "Serving" section)::

    POST /v1/tables    publish a table once -> its fingerprint address
    POST /v1/prepare   parse + compile a query; canonical form + plan
    POST /v1/search    blocking top-k; result-cache aware
    GET  /v1/stats     per-endpoint latency, admission, cache hit rates
    GET  /v1/submit    WebSocket: streamed progress frames + cancel

Three serving-grade subsystems ride the seams the engine already
exposes: **admission control** (:mod:`repro.serving.tenancy`) gates each
tenant with a token bucket and an inflight cap, shedding queued work
through :meth:`SearchFuture.cancel(reason="shed")
<repro.results.SearchFuture.cancel>` rather than hanging connections; a
**cross-request result cache** (:mod:`repro.serving.result_cache`) keyed
on (table fingerprint, canonical query, visual params, k, precision)
serves repeated searches without running Score at all; and
**observability** (:class:`~repro.serving.app.ServerStats`) reports
p50/p99 latency, shed rates, and cache hit rates on ``GET /v1/stats``.
"""

from repro.serving.app import ServerStats, ShapeServingApp
from repro.serving.client import ServingClient, ServingError, StreamingSearch
from repro.serving.protocol import (
    Overloaded,
    RequestError,
    json_dumps,
    result_payload,
)
from repro.serving.result_cache import ResultCache
from repro.serving.server import ServerHandle, ShapeSearchServer, start_in_thread
from repro.serving.tenancy import AdmissionController, TenantQuota, TokenBucket

__all__ = [
    "ShapeServingApp",
    "ServerStats",
    "ShapeSearchServer",
    "ServerHandle",
    "start_in_thread",
    "ServingClient",
    "StreamingSearch",
    "ServingError",
    "AdmissionController",
    "TenantQuota",
    "TokenBucket",
    "ResultCache",
    "Overloaded",
    "RequestError",
    "json_dumps",
    "result_payload",
]
