"""Minimal HTTP/1.1 over asyncio streams — just enough for the API.

Not a general web server: fixed endpoints, JSON bodies, keep-alive, and
the single ``Upgrade: websocket`` handshake ``/v1/submit`` needs.  The
parser is strict about what it accepts (requests it cannot parse close
the connection) and bounded (``MAX_BODY`` caps the request body so one
client cannot balloon server memory).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Iterable, Optional, Tuple

#: Largest accepted request body; publishing a table dominates sizing.
MAX_BODY = 64 * 1024 * 1024

#: Stream buffer limit for ``asyncio.start_server`` (header lines only;
#: bodies are read with ``readexactly`` and bounded by MAX_BODY).
STREAM_LIMIT = 1 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    101: "Switching Protocols",
}


class HTTPRequest:
    """One parsed request: method, path, lower-cased headers, raw body."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        """The body as a JSON object; raises ``ValueError`` otherwise."""
        payload = json.loads(self.body.decode("utf-8")) if self.body else {}
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    @property
    def wants_websocket(self) -> bool:
        return (
            "websocket" in self.headers.get("upgrade", "").lower()
            and "upgrade" in self.headers.get("connection", "").lower()
        )

    def __repr__(self) -> str:
        return "HTTPRequest({} {}, {} byte body)".format(
            self.method, self.path, len(self.body)
        )


async def read_request(reader: asyncio.StreamReader) -> Optional[HTTPRequest]:
    """Parse one request off the stream; None on EOF / unparseable input.

    The head (request line + headers) is read up to the blank line; a
    ``Content-Length`` body follows via ``readexactly``.  Chunked bodies
    are not supported (no client of this API sends them) and oversized
    bodies return None, closing the connection.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (
        asyncio.IncompleteReadError,
        asyncio.LimitOverrunError,
        ConnectionError,
    ):
        return None
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, _version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        return None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _sep, value = line.partition(":")
        if not _sep:
            return None
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        return None
    if length < 0 or length > MAX_BODY:
        return None
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
    path = target.split("?", 1)[0]
    return HTTPRequest(method.upper(), path, headers, body)


def response_bytes(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: Iterable[Tuple[str, str]] = (),
    keep_alive: bool = True,
) -> bytes:
    """Serialize one response, Content-Length framed."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        "HTTP/1.1 {} {}".format(status, reason),
        "Content-Type: {}".format(content_type),
        "Content-Length: {}".format(len(body)),
        "Connection: {}".format("keep-alive" if keep_alive else "close"),
    ]
    for name, value in extra_headers:
        lines.append("{}: {}".format(name, value))
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def switching_protocols(accept: str) -> bytes:
    """The 101 response completing a WebSocket handshake."""
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        "Sec-WebSocket-Accept: {}\r\n\r\n".format(accept)
    ).encode("latin-1")
