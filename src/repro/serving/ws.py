"""RFC 6455 WebSocket: a pure frame codec plus one async wrapper.

The codec — :func:`accept_key`, :func:`encode_frame`,
:class:`FrameParser` — is synchronous, allocation-light, and shared by
both sides of the wire: the asyncio server wraps it in
:class:`WebSocketConnection`, and the synchronous test/bench client
(:mod:`repro.serving.client`) drives the very same functions over a
plain socket.  One implementation, exercised from both directions, is
the cheapest correctness argument a hand-rolled protocol gets.

Supported surface: FIN-fragmented text/binary messages, masked
client-to-server frames (unmasking is vectorized over the repeated
4-byte key), ping/pong, and close.  Extensions and subprotocols are
refused by omission.
"""

from __future__ import annotations

import base64
import hashlib
import struct
from typing import Iterator, List, Optional, Tuple

_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Largest accepted message after reassembly (matches the HTTP cap).
MAX_MESSAGE = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """The peer violated the framing rules; the connection must close."""


def accept_key(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a handshake ``key``."""
    digest = hashlib.sha1((key + _GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(
    payload: bytes, opcode: int = OP_TEXT, mask: Optional[bytes] = None,
    fin: bool = True,
) -> bytes:
    """Serialize one frame; ``mask`` (4 bytes) for client-to-server."""
    head = bytearray()
    head.append((0x80 if fin else 0) | (opcode & 0x0F))
    mask_bit = 0x80 if mask is not None else 0
    length = len(payload)
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if mask is not None:
        if len(mask) != 4:
            raise ProtocolError("mask key must be exactly 4 bytes")
        head += mask
        payload = _apply_mask(payload, mask)
    return bytes(head) + payload


def _apply_mask(data: bytes, key: bytes) -> bytes:
    """XOR ``data`` with the repeating 4-byte ``key`` (self-inverse)."""
    if not data:
        return data
    repeated = (key * (len(data) // 4 + 1))[: len(data)]
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(repeated, "little")
    ).to_bytes(len(data), "little")


class FrameParser:
    """Incremental frame decoder: feed bytes, collect complete messages.

    :meth:`feed` returns ``(opcode, payload)`` pairs for every message
    completed by the new bytes — control frames immediately, data frames
    after FIN reassembles any continuation fragments.  State between
    calls is just the byte buffer and the pending fragment, so a parser
    instance serves one connection for its lifetime.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._fragments: List[bytes] = []
        self._fragment_opcode: Optional[int] = None

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        self._buffer += data
        messages: List[Tuple[int, bytes]] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return messages
            fin, opcode, payload = frame
            if opcode in (OP_CLOSE, OP_PING, OP_PONG):
                if not fin:
                    raise ProtocolError("control frames must not fragment")
                messages.append((opcode, payload))
                continue
            if opcode == OP_CONT:
                if self._fragment_opcode is None:
                    raise ProtocolError("continuation without a message")
            else:
                if self._fragment_opcode is not None:
                    raise ProtocolError("new message interleaved mid-fragment")
                self._fragment_opcode = opcode
            self._fragments.append(payload)
            if sum(len(part) for part in self._fragments) > MAX_MESSAGE:
                raise ProtocolError("message exceeds the size cap")
            if fin:
                whole = b"".join(self._fragments)
                messages.append((self._fragment_opcode, whole))
                self._fragments = []
                self._fragment_opcode = None

    def _next_frame(self) -> Optional[Tuple[bool, int, bytes]]:
        buffer = self._buffer
        if len(buffer) < 2:
            return None
        first, second = buffer[0], buffer[1]
        fin = bool(first & 0x80)
        if first & 0x70:
            raise ProtocolError("reserved bits set (no extensions negotiated)")
        opcode = first & 0x0F
        masked = bool(second & 0x80)
        length = second & 0x7F
        offset = 2
        if length == 126:
            if len(buffer) < offset + 2:
                return None
            (length,) = struct.unpack_from(">H", buffer, offset)
            offset += 2
        elif length == 127:
            if len(buffer) < offset + 8:
                return None
            (length,) = struct.unpack_from(">Q", buffer, offset)
            offset += 8
        if length > MAX_MESSAGE:
            raise ProtocolError("frame exceeds the size cap")
        key = b""
        if masked:
            if len(buffer) < offset + 4:
                return None
            key = bytes(buffer[offset:offset + 4])
            offset += 4
        if len(buffer) < offset + length:
            return None
        payload = bytes(buffer[offset:offset + length])
        del buffer[: offset + length]
        if masked:
            payload = _apply_mask(payload, key)
        return fin, opcode, payload


def iter_messages(parser: FrameParser, data: bytes) -> Iterator[Tuple[int, bytes]]:
    """Convenience wrapper: ``parser.feed`` as an iterator."""
    return iter(parser.feed(data))


class WebSocketConnection:
    """Server side of one accepted WebSocket, over asyncio streams.

    ``send_json``/``send`` are safe from concurrent tasks (an internal
    lock serializes frame writes — progress frames from several inflight
    searches interleave at frame granularity, never inside one).
    :meth:`recv` answers pings transparently and returns ``None`` once
    the peer closes or the transport drops.
    """

    def __init__(self, reader, writer) -> None:
        import asyncio

        self._reader = reader
        self._writer = writer
        self._parser = FrameParser()
        self._send_lock = asyncio.Lock()
        self._pending: List[Tuple[int, bytes]] = []
        self.closed = False

    async def send(self, payload: bytes, opcode: int = OP_TEXT) -> None:
        async with self._send_lock:
            if self.closed:
                return
            self._writer.write(encode_frame(payload, opcode=opcode))
            try:
                await self._writer.drain()
            except ConnectionError:
                self.closed = True

    async def send_json(self, obj) -> None:
        from repro.serving.protocol import json_dumps

        await self.send(json_dumps(obj), opcode=OP_TEXT)

    async def recv(self) -> Optional[bytes]:
        """The next data message's payload, or ``None`` on close/EOF."""
        while True:
            while self._pending:
                opcode, payload = self._pending.pop(0)
                if opcode == OP_CLOSE:
                    await self.close()
                    return None
                if opcode == OP_PING:
                    await self.send(payload, opcode=OP_PONG)
                    continue
                if opcode == OP_PONG:
                    continue
                return payload
            try:
                data = await self._reader.read(65536)
            except ConnectionError:
                data = b""
            if not data:
                self.closed = True
                return None
            try:
                self._pending.extend(self._parser.feed(data))
            except ProtocolError:
                await self.close(code=1002)
                return None

    async def close(self, code: int = 1000) -> None:
        async with self._send_lock:
            if not self.closed:
                self.closed = True
                try:
                    self._writer.write(
                        encode_frame(struct.pack(">H", code), opcode=OP_CLOSE)
                    )
                    await self._writer.drain()
                except ConnectionError:
                    pass
