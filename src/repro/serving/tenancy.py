"""Per-tenant admission control: token buckets, inflight caps, shedding.

The serving contract is *fail fast, never hang*: a request the server
cannot take on right now is refused with a reason code (mapped to HTTP
429) while already-admitted work keeps its resources.  Two gates apply
in order:

1. **Rate** — a per-tenant :class:`TokenBucket` (``rate`` requests/s,
   ``burst`` capacity) absorbs interactive bursts and refuses sustained
   floods with ``"rate_limited"``.
2. **Inflight** — a per-tenant and a global concurrent-search cap.  A
   full cap refuses with ``"overloaded"`` *and* sheds: registered
   executions still queued behind the engine's dispatcher (not started)
   are cancelled with ``reason="shed"`` — the
   :class:`~repro.engine.control.ExecutionControl` seam the engine
   already honors — so the dispatcher drains to work that clients are
   actually waiting on instead of a backlog nobody will read.  Shedding
   respects tenant isolation: only a *global*-cap refusal sheds across
   tenants; a tenant exceeding its own ``max_inflight`` sheds only its
   own queued work, never another tenant's.

The inflight gates run *before* the rate gate, so a refused-as-
overloaded request does not consume a rate token — a well-behaved
tenant's bucket stays full through an overload episode and admits work
the moment capacity frees up.

The wall clock is injected (``clock=``, monotonic seconds) so tests
drive refill deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.control import CANCEL_SHED, CANCEL_SHUTDOWN


class TokenBucket:
    """The classic leaky counter: ``rate`` tokens/s up to ``burst``.

    ``try_acquire`` never blocks — it answers whether one token was
    available *now*, refilling lazily from the injected clock.  A
    ``rate`` of 0 disables refill (the initial burst is all there is);
    ``None`` disables the bucket entirely (always admits).
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock", "_lock")

    def __init__(
        self,
        rate: Optional[float],
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate < 0:
            raise ValueError("rate must be >= 0 or None, got {}".format(rate))
        if burst < 1:
            raise ValueError("burst must be >= 1, got {}".format(burst))
        self.rate = rate
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        if self.rate is None:
            return True
        with self._lock:
            now = self._clock()
            elapsed = max(0.0, now - self._last)
            self._last = now
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled to the current clock)."""
        if self.rate is None:
            return float("inf")
        with self._lock:
            now = self._clock()
            return min(self.burst, self._tokens + max(0.0, now - self._last) * self.rate)


@dataclass(frozen=True)
class TenantQuota:
    """What one tenant may do concurrently and per second.

    ``rate=None`` disables rate limiting; ``max_inflight`` caps the
    tenant's concurrent searches (admitted but unresolved).
    """

    rate: Optional[float] = 50.0
    burst: float = 100.0
    max_inflight: int = 8


@dataclass
class AdmissionStats:
    """Counters the controller exposes on ``/v1/stats``."""

    admitted: int = 0
    rate_limited: int = 0
    overloaded: int = 0
    shed: int = 0


class AdmissionController:
    """The gate every search passes before touching the engine.

    Lifecycle per request: :meth:`admit` (reserves an inflight slot or
    returns the refusal code), :meth:`attach` (registers the live
    :class:`~repro.results.SearchFuture` so shedding and shutdown can
    reach it), :meth:`finish` (releases the slot).  ``finish`` must run
    exactly once per successful ``admit`` — the server does it in a
    ``finally``.
    """

    def __init__(
        self,
        quota: TenantQuota = TenantQuota(),
        max_inflight: int = 64,
        clock: Callable[[], float] = time.monotonic,
        quotas: Optional[Dict[str, TenantQuota]] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(
                "max_inflight must be >= 1, got {}".format(max_inflight)
            )
        self.default_quota = quota
        self.max_inflight = max_inflight
        self._clock = clock
        #: Per-tenant quota overrides (tenant name -> TenantQuota).
        self._quotas: Dict[str, TenantQuota] = dict(quotas or {})
        self._buckets: Dict[str, TokenBucket] = {}
        self._inflight: Dict[str, int] = {}
        self._total_inflight = 0
        #: Registration order doubles as shed order (oldest first).
        self._futures: List[Tuple[str, object]] = []
        self._lock = threading.Lock()
        self.stats = AdmissionStats()

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        """Override one tenant's quota (takes effect on the next admit)."""
        with self._lock:
            self._quotas[tenant] = quota
            self._buckets.pop(tenant, None)

    def quota_for(self, tenant: str) -> TenantQuota:
        with self._lock:
            return self._quotas.get(tenant, self.default_quota)

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            quota = self._quotas.get(tenant, self.default_quota)
            bucket = TokenBucket(quota.rate, quota.burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    # -- the admission gate --------------------------------------------------
    def admit(self, tenant: str) -> Optional[str]:
        """Reserve an inflight slot; ``None`` on success, else the code.

        ``"overloaded"``: the tenant's or the global inflight cap is
        full — checked first, so the refusal costs no rate token.  A
        global-cap refusal sheds queued executions of every tenant (the
        whole server is saturated); a per-tenant-cap refusal sheds only
        that tenant's queued executions, so one tenant over its own
        quota never cancels another tenant's admitted work.
        ``"rate_limited"``: the tenant's bucket is empty.
        """
        with self._lock:
            quota = self._quotas.get(tenant, self.default_quota)
            inflight = self._inflight.get(tenant, 0)
            tenant_full = inflight >= quota.max_inflight
            global_full = self._total_inflight >= self.max_inflight
            if not tenant_full and not global_full:
                if not self._bucket(tenant).try_acquire():
                    self.stats.rate_limited += 1
                    return "rate_limited"
                self._inflight[tenant] = inflight + 1
                self._total_inflight += 1
                self.stats.admitted += 1
                return None
            self.stats.overloaded += 1
        self.shed_queued(tenant=None if global_full else tenant)
        return "overloaded"

    def attach(self, tenant: str, future) -> None:
        """Register an admitted execution for shed/shutdown sweeps."""
        with self._lock:
            self._futures.append((tenant, future))

    def finish(self, tenant: str, future=None) -> None:
        """Release the slot reserved by a successful :meth:`admit`."""
        with self._lock:
            remaining = self._inflight.get(tenant, 0) - 1
            if remaining > 0:
                self._inflight[tenant] = remaining
            else:
                self._inflight.pop(tenant, None)
            if self._total_inflight > 0:
                self._total_inflight -= 1
            if future is not None:
                self._futures = [
                    entry for entry in self._futures if entry[1] is not future
                ]

    # -- load shedding -------------------------------------------------------
    def shed_queued(self, tenant: Optional[str] = None) -> int:
        """Cancel registered executions the engine has not started yet.

        Shedding targets *queued* work — futures still waiting behind
        the dispatcher — with ``reason="shed"``; running shards finish
        cooperatively (the pool stays warm and deterministic), and the
        shed client gets a terminal ``overloaded`` response instead of
        an unbounded wait.  With ``tenant`` the sweep is scoped to that
        tenant's queued futures (the per-tenant-cap refusal path);
        ``None`` sheds across all tenants (the global-cap path).
        Returns how many were shed.
        """
        with self._lock:
            targets = [
                (owner, future)
                for owner, future in self._futures
                if (tenant is None or owner == tenant)
                and not future.running() and not future.done()
            ]
        shed = 0
        for _tenant, future in targets:
            if future.cancel(reason=CANCEL_SHED):
                shed += 1
        if shed:
            with self._lock:
                self.stats.shed += shed
        return shed

    def sweep(self, reason: str = CANCEL_SHUTDOWN) -> int:
        """Cancel *every* registered execution (server shutdown)."""
        with self._lock:
            targets = list(self._futures)
        swept = 0
        for _tenant, future in targets:
            if future.cancel(reason=reason):
                swept += 1
        return swept

    # -- observation ---------------------------------------------------------
    @property
    def total_inflight(self) -> int:
        with self._lock:
            return self._total_inflight

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "inflight": self._total_inflight,
                "max_inflight": self.max_inflight,
                # Attached executions the engine has actually started —
                # the complement (inflight - running) is queued work a
                # shed sweep would cancel.
                "running": sum(
                    1 for _tenant, future in self._futures if future.running()
                ),
                "tenants": dict(self._inflight),
                "admitted": self.stats.admitted,
                "rate_limited": self.stats.rate_limited,
                "overloaded": self.stats.overloaded,
                "shed": self.stats.shed,
            }
