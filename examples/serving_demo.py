"""Serving demo: the session API over a socket — publish, search, stream.

Starts the multi-tenant server on an ephemeral local port, publishes
the stock dataset once (addressed by content fingerprint), then walks
the wire surface:

* ``POST /v1/search`` — blocking top-k over HTTP, cold then warm: the
  second identical request is served from the cross-request result
  cache without running Score at all;
* WebSocket ``/v1/submit`` — the same search streamed, with per-shard
  progress frames arriving before the final result;
* ``GET /v1/stats`` — admission counters, per-endpoint latency
  percentiles, and cache hit rates.

Run with::

    python examples/serving_demo.py
"""

import time

from repro.datasets import stock_dataset
from repro.serving import (
    ServingClient,
    ShapeServingApp,
    TenantQuota,
    start_in_thread,
)

#: The double-top screen: rise, fall, rise again, fall again.
QUERY = "[p=up][p=down][p=up][p=down]"


def main() -> None:
    table, planted = stock_dataset(n_stocks=40, length=120)
    app = ShapeServingApp(quota=TenantQuota(rate=None, max_inflight=8))
    with start_in_thread(app) as handle:
        host, port = handle.address
        print("serving on http://{}:{}".format(host, port))
        with ServingClient(host, port, tenant="demo") as client:
            fingerprint = client.publish_columns(
                **{name: table.column(name) for name in table.column_names}
            )
            print("published {} rows as {}...".format(len(table), fingerprint[:16]))

            print()
            print("Double-top screen over HTTP: {}".format(QUERY))
            started = time.perf_counter()
            cold = client.search(fingerprint, QUERY, "symbol", "day", "price", k=4)
            cold_ms = (time.perf_counter() - started) * 1000.0
            for match in cold["result"]["matches"]:
                print("   {:<10} score {:.3f}".format(match["key"], match["score"]))
            print("   planted double-tops: {}".format(", ".join(planted["double-top"])))

            started = time.perf_counter()
            warm = client.search(fingerprint, QUERY, "symbol", "day", "price", k=4)
            warm_ms = (time.perf_counter() - started) * 1000.0
            print("   cold {:.1f} ms ({} cache), warm {:.1f} ms ({} cache)".format(
                cold_ms, cold["cache"] or "no", warm_ms, warm["cache"] or "no"
            ))

            print()
            print("The same search streamed over the WebSocket surface:")
            with client.open_stream() as stream:
                sid = stream.submit(
                    fingerprint, "[p=down][p=up]", "symbol", "day", "price", k=3
                )
                progress = 0
                for frame in stream.frames(sid):
                    if frame["type"] == "progress":
                        progress += 1
                    elif frame["type"] == "result":
                        print("   {} progress frame(s), then {} matches".format(
                            progress, len(frame["result"]["matches"])
                        ))

            print()
            stats = client.stats()
            admission = stats["admission"]
            cache = stats["result_cache"]
            print("GET /v1/stats: {} admitted, {} inflight, cache hit rate {:.2f}".format(
                admission["admitted"], admission["inflight"], cache["hit_rate"]
            ))
            for endpoint, numbers in sorted(stats["endpoints"].items()):
                print("   {:<18} n={:<3} p50 {:6.2f} ms  p99 {:6.2f} ms".format(
                    endpoint, numbers["count"], numbers["p50_ms"], numbers["p99_ms"]
                ))


if __name__ == "__main__":
    main()
