"""Stock-chart screening: the intro's technical patterns (paper §1).

Finds double tops (two peaks — the pattern that "indicates future
downtrends"), W-shapes, and cups, plus a POSITION query comparing the
slopes of consecutive phases, over a synthetic daily-price table.

Run with::

    python examples/stock_screening.py
"""

from repro import ShapeSearch
from repro.datasets import stock_dataset
from repro.render import render_matches


def main() -> None:
    table, planted = stock_dataset(n_stocks=80, length=250)
    session = ShapeSearch(table)

    print("Double top: at least 2 peaks (the paper's [p=up, m={2,}] idiom)")
    matches = session.prepare(
        "[p=up,m={2,}]", z="symbol", x="day", y="price"
    ).run(k=4)
    print(render_matches(matches))
    print("   planted:", ", ".join(planted["double-top"] + planted["w-shape"]))

    print()
    print("W-shape: down, up, down, up")
    matches = session.prepare(
        "[p=down][p=up][p=down][p=up]", z="symbol", x="day", y="price"
    ).run(k=3)
    print(render_matches(matches))
    print("   planted:", ", ".join(planted["w-shape"]))

    print()
    print("Cup: falling, stabilizing, then recovering — via natural language")
    matches = session.prepare(
        "falling then flat then rising", z="symbol", x="day", y="price"
    ).run(k=3)
    print(render_matches(matches))
    print("   planted:", ", ".join(planted["cup"]))

    print()
    print("Momentum check: second rise steeper than the first ([p=up][p=$0,m=>])")
    matches = session.prepare(
        "[p=up][p=$0,m=>]", z="symbol", x="day", y="price"
    ).run(k=3)
    print(render_matches(matches))


if __name__ == "__main__":
    main()
