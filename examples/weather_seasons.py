"""Weather: hemisphere detection with pinned-location queries (paper §1).

"Finding cities where the temperature rises from November to January and
falls during May to July (e.g., Sydney)" — the intro's example of
multiple x constraints, plus a user-defined pattern showing the UDP
extension point.

Run with::

    python examples/weather_seasons.py
"""

import numpy as np

from repro import ShapeSearch, temporary_udp
from repro.datasets import weather_dataset
from repro.render import render_matches


def main() -> None:
    table, planted = weather_dataset(n_cities=48, length=365)
    session = ShapeSearch(table)

    print("Southern-hemisphere cities: rising Nov→Dec and falling May→Jul")
    matches = session.prepare(
        "[p=up,x.s=305,x.e=360][p=down,x.s=121,x.e=200]",
        z="city", x="day", y="temperature",
    ).run(k=4)
    print(render_matches(matches))
    print("   planted southern cities:", ", ".join(planted["southern"][:4]), "...")

    print()
    print("Northern summers: a broad mid-year peak (blurry up-then-down)")
    matches = session.prepare(
        "rising then falling", z="city", x="day", y="temperature"
    ).run(k=3)
    print(render_matches(matches))

    print()
    print("UDP: a user-defined 'high-variance season' pattern")

    def volatile(values: np.ndarray, slope: float) -> float:
        swing = float(np.percentile(values, 95) - np.percentile(values, 5))
        return min(1.0, swing / 4.0) * 2.0 - 1.0

    with temporary_udp("volatile", volatile):
        matches = session.prepare(
            "[p=udp:volatile]", z="city", x="day", y="temperature"
        ).run(k=2)
        print(render_matches(matches))


if __name__ == "__main__":
    main()
