"""The genomics case study of paper §8, end to end.

Reproduces the bioinformatics researchers' exploration session: genes
suppressed or activated by a treatment, stem-cell differentiation
plateaus (gbx2 / klf5 / spry4), and the pvt1 double-peak outlier —
each found with a one-line ShapeSearch query over the synthetic
mouse-gene table (DESIGN.md documents the substitution for the MGD
dataset).

Run with::

    python examples/genomics_case_study.py
"""

from repro import ShapeSearch
from repro.datasets import gene_expression_dataset
from repro.render import render_matches


def main() -> None:
    table, planted = gene_expression_dataset(n_genes=60, length=48)
    session = ShapeSearch(table)

    print("§8-II — treatment response: sudden expression, gradual decline")
    matches = session.prepare(
        "[p=flat][p=up,m=>>][p=down,m=<]",
        z="gene", x="time", y="expression",
    ).run(k=4)
    print(render_matches(matches))
    print("   planted treatment genes:", ", ".join(planted["treatment"]))

    print()
    print("§8-III — stem-cell self-renewal: rise then high stable plateau")
    matches = session.prepare(
        "[p=up][p=flat]", z="gene", x="time", y="expression"
    ).run(k=4)
    print(render_matches(matches))
    print("   planted stem-cell genes:", ", ".join(planted["stem-up"]))

    print()
    print("§8-III inverse — differentiation: decline to a low stable level")
    matches = session.prepare(
        "start high and then gradually decreasing and then flat",
        z="gene", x="time", y="expression",
    ).run(k=3)
    print(render_matches(matches))

    print()
    print("§8-IV — the outlier hunt: two peaks within a short window (pvt1)")
    matches = session.prepare(
        "[p=up,m=2]", z="gene", x="time", y="expression"
    ).run(k=3)
    print(render_matches(matches))
    print("   planted double-peak gene:", ", ".join(planted["double-peak"]))


if __name__ == "__main__":
    main()
