"""Quickstart: prepared queries, async submission and ResultSets.

Searches a small dataset with all three query mechanisms (regex dialect,
natural language, sketch) through the session API: ``prepare`` once,
``run`` or ``submit`` many times, inspect the :class:`ResultSet`.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import ShapeSearch, Table


def build_table() -> Table:
    """A toy product-sales table: one trendline per product."""
    rng = np.random.default_rng(7)
    shapes = {
        "alpha": np.concatenate([np.linspace(10, 2, 40), np.linspace(2, 14, 40)]),
        "bravo": np.linspace(3, 12, 80),
        "charlie": np.full(80, 6.0),
        "delta": np.concatenate([np.linspace(4, 12, 40), np.linspace(12, 3, 40)]),
        "echo": np.concatenate(
            [np.linspace(5, 9, 25), np.linspace(9, 4, 30), np.linspace(4, 11, 25)]
        ),
    }
    records = []
    for product, values in shapes.items():
        noisy = values + rng.normal(0, 0.25, len(values))
        for month, sales in enumerate(noisy):
            records.append({"product": product, "month": float(month), "sales": float(sales)})
    return Table.from_records(records)


def main() -> None:
    with ShapeSearch(build_table()) as session:
        print("1) Prepare once (parse + compile), run as often as you like")
        prepared = session.prepare(
            "[p=down][p=up,m=>>]", z="product", x="month", y="sales"
        )
        results = prepared.run(k=2)
        print(results.render())
        print("   plan:", results.plan.splitlines()[-1].strip())
        print("   stats: scored {} of {} candidates".format(
            results.stats.scored, results.stats.candidates))

        print()
        print("2) The same intent in natural language")
        prepared = session.prepare(
            "decreasing for some time then rising sharply",
            z="product", x="month", y="sales",
        )
        print("   parsed as:", prepared.explain())
        print(prepared.run(k=2).render())

        print()
        print("3) A sketch (blurry mode): down, then up")
        pixels = [(float(i), 40.0 - i) for i in range(40)]
        pixels += [(float(40 + i), float(i)) for i in range(40)]
        results = session.search_sketch(
            pixels, z="product", x="month", y="sales", mode="blurry", k=2
        )
        print(results.render())

        print()
        print("4) Submit without blocking: a cancellable SearchFuture")
        future = session.prepare(
            "[p=up]", z="product", x="month", y="sales"
        ).submit(k=2)
        results = future.result(timeout=60)   # would raise SearchCancelled after .cancel()
        print(results.render())
        print("   future:", future)

        print()
        print("5) ResultSet rows for a DataFrame / JSON handoff")
        for record in results.to_records():
            print("   {key}: {score:+.3f}".format(**record))


if __name__ == "__main__":
    main()
