"""Quickstart: search a small dataset with all three query mechanisms.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import ShapeSearch, Table
from repro.render import render_matches


def build_table() -> Table:
    """A toy product-sales table: one trendline per product."""
    rng = np.random.default_rng(7)
    shapes = {
        "alpha": np.concatenate([np.linspace(10, 2, 40), np.linspace(2, 14, 40)]),
        "bravo": np.linspace(3, 12, 80),
        "charlie": np.full(80, 6.0),
        "delta": np.concatenate([np.linspace(4, 12, 40), np.linspace(12, 3, 40)]),
        "echo": np.concatenate(
            [np.linspace(5, 9, 25), np.linspace(9, 4, 30), np.linspace(4, 11, 25)]
        ),
    }
    records = []
    for product, values in shapes.items():
        noisy = values + rng.normal(0, 0.25, len(values))
        for month, sales in enumerate(noisy):
            records.append({"product": product, "month": float(month), "sales": float(sales)})
    return Table.from_records(records)


def main() -> None:
    session = ShapeSearch(build_table())

    print("1) Regex query: products whose sales fall, then sharply rise")
    matches = session.search(
        "[p=down][p=up,m=>>]", z="product", x="month", y="sales", k=2
    )
    print(render_matches(matches))

    print()
    print("2) The same intent in natural language")
    print("   parsed as:", session.explain("decreasing for some time then rising sharply"))
    matches = session.search(
        "decreasing for some time then rising sharply",
        z="product", x="month", y="sales", k=2,
    )
    print(render_matches(matches))

    print()
    print("3) A sketch (blurry mode): down, then up")
    pixels = [(float(i), 40.0 - i) for i in range(40)]
    pixels += [(float(40 + i), float(i)) for i in range(40)]
    matches = session.search_sketch(
        pixels, z="product", x="month", y="sales", mode="blurry", k=2
    )
    print(render_matches(matches))


if __name__ == "__main__":
    main()
