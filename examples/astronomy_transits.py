"""Astronomy: transit dips and supernovae in luminosity series (Fig. 1c).

Astronomers "apply on-the-fly filters" while hunting for planetary
transits (a dip in brightness) and supernovae (a sharp stellar flare).
This example exercises filters, pinned locations, and the OPPOSITE
operator on a synthetic star-survey table.

Run with::

    python examples/astronomy_transits.py
"""

from repro import ShapeSearch
from repro.datasets import astronomy_dataset
from repro.render import render_matches


def main() -> None:
    table, planted = astronomy_dataset(n_stars=120, length=400)
    session = ShapeSearch(table)

    print("Supernova: 'find me objects with a sharp peak in luminosity' (§2)")
    matches = session.prepare(
        "find me objects with a sharp peak in luminosity",
        z="object", x="time", y="luminosity",
    ).run(k=2)
    print(render_matches(matches))
    print("   planted:", ", ".join(planted["supernova"]))

    print()
    print("Planetary transit: flat, dip, recovery, flat — with a filter")
    matches = session.prepare(
        "[p=flat][p=down][p=up][p=flat]",
        z="object", x="time", y="luminosity",
        filters=("luminosity < 150",),
    ).run(k=4)
    print(render_matches(matches))
    print("   planted transits:", ", ".join(planted["transit"][:4]), "...")

    print()
    print("Quiet stars: NOT (not flat) — double negation via the ! operator")
    matches = session.prepare(
        "!(![p=flat])", z="object", x="time", y="luminosity"
    ).run(k=2)
    print(render_matches(matches))


if __name__ == "__main__":
    main()
