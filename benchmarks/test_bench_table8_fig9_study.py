"""Table 8 (accuracy) + Figure 9a: scoring functions vs VQS measures.

Machine-side reproduction of the user study's accuracy comparison: for
the seven Table 10 task categories, rank with the ShapeSearch scoring
functions (DP, and the SegmentTree variant used live during the study)
and with the VQS similarity measures (DTW / Euclidean against the task's
reference sketch), scored against programmatic ground truth.

Paper shape: ShapeSearch scoring ≥ ~89% on 6 of 7 tasks and above the
VQS measures on average (Table 8: 88% vs 71%); the exact-trend task (ET)
is where value-based measures are competitive.  Human timing and
preference columns are not simulated (see EXPERIMENTS.md).
"""

import pytest

from repro.study.harness import run_study
from repro.study.tasks import build_tasks

from benchmarks.conftest import print_table

METHODS = ("shapesearch-dp", "shapesearch-st", "dtw", "euclidean")


@pytest.fixture(scope="module")
def study_result():
    tasks = build_tasks(seed=42, length=120, distractors=24)
    return run_study(methods=METHODS, tasks=tasks)


def test_fig9a_per_task_accuracy(benchmark, study_result):
    result = benchmark.pedantic(lambda: study_result, rounds=1, iterations=1)
    rows = [
        [code] + ["{:.1f}%".format(result.accuracy[code][method]) for method in METHODS]
        for code in result.accuracy
    ]
    print_table("Figure 9a: per-task accuracy", ["task"] + list(METHODS), rows)
    blurry = [code for code in result.accuracy if code != "ET"]
    dp_wins = sum(
        result.accuracy[code]["shapesearch-dp"]
        >= max(result.accuracy[code]["dtw"], result.accuracy[code]["euclidean"]) - 1e-9
        for code in blurry
    )
    assert dp_wins >= len(blurry) - 2  # ShapeSearch leads on most blurry tasks


def test_table8_overall_accuracy(benchmark, study_result):
    result = benchmark.pedantic(lambda: study_result, rounds=1, iterations=1)
    averages = {method: result.method_average(method) for method in METHODS}
    vqs_like = max(averages["dtw"], averages["euclidean"])
    print_table(
        "Table 8 (accuracy column): ShapeSearch* vs VQS",
        ["method", "average accuracy"],
        [[method, "{:.1f}%".format(value)] for method, value in averages.items()],
    )
    assert averages["shapesearch-dp"] >= vqs_like
    assert averages["shapesearch-dp"] >= 80.0
    assert averages["shapesearch-st"] >= 0.9 * averages["shapesearch-dp"]
