"""Figure 13: runtime vs trendline length, query width, collection size.

Paper shapes: (a) DP grows quadratically with points while SegmentTree
grows linearly, with the crossover before ~100 points; (b) both grow
with the number of ShapeSegments — SegmentTree faster in k (k⁴ vs k) but
DP's n² term dominates at paper-scale lengths; (c) all approaches grow
linearly with the number of visualizations and the pruning margin widens
as the collection grows.
"""

import time

import numpy as np
import pytest

from repro.algebra import builder as q
from repro.engine.chains import compile_query
from repro.engine.dynamic import solve_query
from repro.engine.pruning import prune_and_rank
from repro.engine.segment_tree import segment_tree_run_solver
from repro.engine.trendline import build_trendline

from benchmarks.conftest import SCALE, print_table

_RESULTS_A = {}
_RESULTS_B = {}
_RESULTS_C = {}

UDUD = compile_query(q.concat(q.up(), q.down(), q.up(), q.down()))

POINT_COUNTS = tuple(int(n * max(SCALE, 0.25)) for n in (100, 300, 500, 700, 900))
SEGMENT_COUNTS = (2, 3, 4, 5, 6)
VIZ_COUNTS = tuple(int(n * max(SCALE, 0.25)) for n in (200, 600, 1000))


def _worms_prefix(suites, points):
    return [
        build_trendline(tl.key, tl.bin_x[:points], tl.bin_y[:points])
        for tl in suites("worms")[:40]
    ]


def _solve_all(trendlines, query, run_solver=None):
    return [solve_query(tl, query, run_solver=run_solver) for tl in trendlines]


@pytest.mark.parametrize("points", POINT_COUNTS)
@pytest.mark.parametrize("algorithm", ["dp", "segment-tree"])
def test_fig13a_points(benchmark, suites, points, algorithm):
    trendlines = _worms_prefix(suites, points)
    solver = None if algorithm == "dp" else segment_tree_run_solver
    started = time.perf_counter()
    benchmark.pedantic(_solve_all, args=(trendlines, UDUD, solver), rounds=1, iterations=1)
    _RESULTS_A[(points, algorithm)] = time.perf_counter() - started


@pytest.mark.parametrize("segments", SEGMENT_COUNTS)
@pytest.mark.parametrize("algorithm", ["dp", "segment-tree"])
def test_fig13b_segments(benchmark, suites, segments, algorithm):
    patterns = [q.up() if i % 2 == 0 else q.down() for i in range(segments)]
    query = compile_query(q.concat(*patterns)) if segments > 1 else compile_query(patterns[0])
    trendlines = suites("weather")[:30]
    solver = None if algorithm == "dp" else segment_tree_run_solver
    started = time.perf_counter()
    benchmark.pedantic(_solve_all, args=(trendlines, query, solver), rounds=1, iterations=1)
    _RESULTS_B[(segments, algorithm)] = time.perf_counter() - started


def _realestate_collection(suites, count):
    base = suites("realestate")
    if len(base) >= count:
        return base[:count]
    rng = np.random.default_rng(0)
    extra = []
    while len(base) + len(extra) < count:
        tl = base[len(extra) % len(base)]
        extra.append(
            build_trendline(
                "{}+{}".format(tl.key, len(extra)),
                tl.bin_x,
                tl.bin_y + rng.normal(0, 0.05, len(tl.bin_y)),
            )
        )
    return list(base) + extra


@pytest.mark.parametrize("count", VIZ_COUNTS)
@pytest.mark.parametrize("algorithm", ["segment-tree", "pruned"])
def test_fig13c_visualizations(benchmark, suites, count, algorithm):
    trendlines = _realestate_collection(suites, count)
    if algorithm == "pruned":
        run = lambda: prune_and_rank(trendlines, UDUD, k=10)  # noqa: E731
    else:
        run = lambda: _solve_all(trendlines, UDUD, segment_tree_run_solver)  # noqa: E731
    started = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS_C[(count, algorithm)] = time.perf_counter() - started


def test_fig13_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not (_RESULTS_A and _RESULTS_B and _RESULTS_C):
        pytest.skip("scaling benchmarks did not run")
    print_table(
        "Figure 13a: runtime vs points per visualization",
        ["points", "dp", "segment-tree"],
        [
            [points, "{:.3f}s".format(_RESULTS_A[(points, "dp")]),
             "{:.3f}s".format(_RESULTS_A[(points, "segment-tree")])]
            for points in POINT_COUNTS
        ],
    )
    print_table(
        "Figure 13b: runtime vs ShapeSegments",
        ["segments", "dp", "segment-tree"],
        [
            [segments, "{:.3f}s".format(_RESULTS_B[(segments, "dp")]),
             "{:.3f}s".format(_RESULTS_B[(segments, "segment-tree")])]
            for segments in SEGMENT_COUNTS
        ],
    )
    print_table(
        "Figure 13c: runtime vs number of visualizations",
        ["visualizations", "segment-tree", "with pruning"],
        [
            [count, "{:.3f}s".format(_RESULTS_C[(count, "segment-tree")]),
             "{:.3f}s".format(_RESULTS_C[(count, "pruned")])]
            for count in VIZ_COUNTS
        ],
    )
    # Paper shape (a): DP's growth from the smallest to largest length
    # outpaces SegmentTree's (quadratic vs linear).
    smallest, largest = POINT_COUNTS[0], POINT_COUNTS[-1]
    dp_growth = _RESULTS_A[(largest, "dp")] / max(1e-9, _RESULTS_A[(smallest, "dp")])
    st_growth = _RESULTS_A[(largest, "segment-tree")] / max(
        1e-9, _RESULTS_A[(smallest, "segment-tree")]
    )
    assert dp_growth > st_growth
    # Paper shape (a): DP is slower than SegmentTree on long trendlines.
    assert _RESULTS_A[(largest, "dp")] > _RESULTS_A[(largest, "segment-tree")]
