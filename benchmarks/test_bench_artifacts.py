"""Artifact store + block-batched bounds: cold-start-free sublinear search.

Two claims from the PR 9 tentpole, measured at 10^4 candidates (10^5
behind ``REPRO_BENCH_SCALE>=1`` — the block grows to hundreds of MB):

* **mmap load beats rebuild** — serving a persisted index through
  :func:`repro.engine.artifacts.load_index` (manifest + digest
  verification + ``np.memmap``) must be far cheaper than rebuilding the
  pyramid from trendlines, because that is the whole point of the disk
  tier: a second process pays a verified map, not an O(n * W^2) build.
* **batched bounds beat the per-trendline loop** — one coarse max-plus
  DP per pyramid level across all candidates
  (:meth:`ShapeIndex.upper_bounds`) against the retained scalar oracle
  called per candidate.  Timings are best-of-``ROUNDS`` for both sides:
  the first batched call additionally pays the one-time tile stacking
  that is memoized on the index (reported as ``batched_cold_s``), which
  matches production use where one index serves many queries.

Byte identity between the two bound paths is asserted unconditionally;
the speedup floors only at the default workload scale where the runs
are large enough to be meaningfully timed.
"""

import time

import numpy as np

from repro.algebra import builder as q
from repro.engine.artifacts import load_index, save_index
from repro.engine.executor import ShapeSearchEngine
from repro.engine.shape_index import ShapeIndex
from repro.engine.trendline import build_trendline

from benchmarks.conftest import SCALE, print_table, record_result

QUERY = q.concat(q.up(), q.down())

#: Candidate-count tiers: 10^4 always (scaled down only below the
#: default smoke scale), 10^5 at the paper-scale run.
SIZES = [max(1_000, int(10_000 * min(1.0, SCALE / 0.25)))]
if SCALE >= 1.0:
    SIZES.append(100_000)

BINS = 24
ROUNDS = 5

#: The batched kernel replaces ~BINS-level Python dispatch per candidate
#: with a handful of (candidates, W, W) einsum-free numpy passes; 5x is
#: the claim the ISSUE pins at 10^4 candidates, with real headroom.
BATCHED_WIN = 5.0
#: Verified mmap load vs pyramid rebuild: the load is one sequential
#: digest pass + a map, the rebuild is per-trendline O(W^2) work.
LOAD_WIN = 2.0


def _collection(count):
    rng = np.random.default_rng(421)
    x = np.arange(BINS, dtype=float)
    return [
        build_trendline("t{:06d}".format(i), x, rng.normal(0, 1, BINS).cumsum())
        for i in range(count)
    ]


def _best_of(rounds, fn):
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - started)
    return min(times), result


def test_artifact_store_and_batched_bounds(benchmark, tmp_path):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    compiled = ShapeSearchEngine()._compile(QUERY)
    rows = []
    payload = {"bins": BINS, "rounds": ROUNDS, "sizes": {}}

    for count in SIZES:
        trendlines = _collection(count)

        started = time.perf_counter()
        index = ShapeIndex.build(trendlines)
        build_s = time.perf_counter() - started

        key = ("bench-artifacts", count)
        save_index(tmp_path, key, index, "fp{}".format(count))
        load_s, loaded = _best_of(
            ROUNDS, lambda: load_index(tmp_path, key, "fp{}".format(count))
        )
        assert loaded is not None and len(loaded.entries) == count

        started = time.perf_counter()
        batched_cold = loaded.upper_bounds(compiled)
        batched_cold_s = time.perf_counter() - started
        batched_s, batched = _best_of(
            ROUNDS, lambda: loaded.upper_bounds(compiled)
        )
        loop_s, loop = _best_of(
            ROUNDS,
            lambda: np.array(
                [loaded.upper_bound(i, compiled) for i in range(count)]
            ),
        )
        assert batched.tobytes() == loop.tobytes()
        assert batched_cold.tobytes() == loop.tobytes()

        load_speedup = build_s / max(load_s, 1e-9)
        batched_speedup = loop_s / max(batched_s, 1e-9)
        rows.append([
            count,
            "{:.3f}s".format(build_s),
            "{:.3f}s".format(load_s),
            "{:.1f}x".format(load_speedup),
            "{:.3f}s".format(loop_s),
            "{:.3f}s".format(batched_s),
            "{:.1f}x".format(batched_speedup),
        ])
        payload["sizes"][str(count)] = {
            "build_s": build_s,
            "load_s": load_s,
            "load_speedup": load_speedup,
            "loop_s": loop_s,
            "batched_s": batched_s,
            "batched_cold_s": batched_cold_s,
            "batched_speedup": batched_speedup,
        }

        # Sub-default scales shrink the workload into timer noise; at the
        # default smoke scale and above both wins must hold on any box.
        if SCALE >= 0.25:
            assert batched_speedup >= BATCHED_WIN, (
                "batched bounds {:.4f}s vs loop {:.4f}s at {} candidates "
                "(need >= {}x)".format(batched_s, loop_s, count, BATCHED_WIN)
            )
            assert load_speedup >= LOAD_WIN, (
                "mmap load {:.4f}s vs rebuild {:.4f}s at {} candidates "
                "(need >= {}x)".format(load_s, build_s, count, LOAD_WIN)
            )

    print_table(
        "Artifact store + batched bounds ({} bins/candidate)".format(BINS),
        ["candidates", "build", "mmap load", "vs build",
         "scalar loop", "batched", "vs loop"],
        rows,
    )
    record_result("artifacts", payload)
