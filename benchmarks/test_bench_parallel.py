"""Parallel execution and result caching: the repo's first perf trajectory.

Measurements on the Figure 13 scaling suites:

* **sharded ranking** — sequential vs ``workers=N`` for the thread
  backend and *both* process-backend transports — ``process-shm``
  (shared-memory collection, shards as index ranges; the default) and
  ``process-pickle`` (PR 1's object-pickling path) — on one fuzzy query
  over the 50words collection, asserting byte-identical top-k and
  recording each speedup.  The shm-vs-pickle gap isolates what moving
  the data to the workers buys;
* **result caching** — cold vs warm ``execute`` over the same table and
  query, recording the latency ratio and the cache hit rate;
* **batch amortization** — ``execute_many`` over all of a suite's fuzzy
  queries vs issuing them one at a time on a fresh engine;
* **DP kernel** — single-trendline fuzzy segmentation, loop vs matrix
  transition kernel (``kernel=`` on the engine), at n=500 bins (the
  asserted ≥3× point) and a larger scaled n (recorded only) — the
  per-kernel numbers the pool-level measurements above sit on — plus
  the tile-shared arctan/transform delta at large n (``SHARE_ATAN``);
* **generation stage** — parent-side vs worker-side EXTRACT/GROUP
  (``generation=`` on the engine) on a many-series table: the staged
  pipeline's fused Extract/Group→Score tasks against the published
  table, vs materializing every trendline in the parent first.

Speedups are *recorded*, not asserted: thread-backend gains depend on
how much of the inner loop releases the GIL, and process-backend gains
vary with cores and pool warm-up, both of which vary by machine.
Correctness — identical results for any worker count and transport, and
cache hits on repeats — is asserted unconditionally.  With
``REPRO_BENCH_JSON`` set, every number lands in a ``BENCH_*.json``
artifact (see benchmarks/conftest.py).
"""

import os
import time

import numpy as np
import pytest

from repro.data.visual_params import VisualParams
from repro.datasets.suites import SUITES, suite_table
from repro.engine.chains import compile_query
from repro.engine.dynamic import fuzzy_run_solver, solve_query
from repro.engine.executor import ShapeSearchEngine
from repro.engine.parallel import default_workers
from repro.engine.trendline import build_trendline
from repro.parser import parse

from benchmarks.conftest import SCALE, fuzzy_query, print_table, record_result

_RESULTS = {}

#: At least two workers so the sharded path (not the inline fallback) is
#: measured even on single-core CI boxes; capped at four for fairness.
WORKERS = max(2, min(4, default_workers()))
PARAMS = VisualParams(z="z", x="x", y="y")

MODES = ["sequential", "thread", "process-pickle", "process-shm"]


def _signature(matches):
    return [(m.key, m.score) for m in matches]


def _make_engine(mode):
    if mode == "sequential":
        return ShapeSearchEngine()
    if mode == "thread":
        return ShapeSearchEngine(workers=WORKERS, backend="thread")
    if mode == "process-pickle":
        return ShapeSearchEngine(workers=WORKERS, backend="process", shm=False)
    return ShapeSearchEngine(workers=WORKERS, backend="process", shm=True)


@pytest.mark.parametrize("mode", MODES)
def test_parallel_speedup(benchmark, suites, mode):
    trendlines = suites("50words")
    query = fuzzy_query("50words")
    engine = _make_engine(mode)
    # Warm the pool (and, for process-shm, publish the collection) outside
    # the timed region: sessions pay those costs once, not per query.
    engine.rank(trendlines, query, k=10)

    def run():
        return engine.rank(trendlines, query, k=10)

    started = time.perf_counter()
    matches = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[("rank", mode)] = time.perf_counter() - started
    _RESULTS[("matches", mode)] = _signature(matches)
    engine.close()


def test_parallel_results_byte_identical(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sequential = _RESULTS.get(("matches", "sequential"))
    if sequential is None:
        pytest.skip("speedup benchmarks did not run")
    for mode in MODES[1:]:
        assert _RESULTS[("matches", mode)] == sequential, mode


def test_cache_hit_rate(benchmark):
    table = suite_table("weather", max_visualizations=30, max_length=120)
    query = parse(SUITES["weather"].fuzzy_queries[0])
    engine = ShapeSearchEngine(cache=True)

    def cold():
        return engine.run(table, PARAMS, query, k=10)

    started = time.perf_counter()
    first = benchmark.pedantic(cold, rounds=1, iterations=1)
    _RESULTS[("cache", "cold")] = time.perf_counter() - started

    started = time.perf_counter()
    second = engine.run(table, PARAMS, query, k=10)
    _RESULTS[("cache", "warm")] = time.perf_counter() - started

    assert _signature(first) == _signature(second)
    assert second.stats.trendline_cache_hit and second.stats.plan_cache_hit
    stats = engine.cache.stats
    assert stats.hits >= 2  # one trendline hit + one plan hit on the repeat
    _RESULTS[("cache", "hit_rate")] = stats.hit_rate


def test_batch_amortization(benchmark):
    table = suite_table("weather", max_visualizations=30, max_length=120)
    queries = [parse(text) for text in SUITES["weather"].fuzzy_queries]

    def one_at_a_time():
        return [
            ShapeSearchEngine().run(table, PARAMS, query, k=10) for query in queries
        ]

    started = time.perf_counter()
    individual = benchmark.pedantic(one_at_a_time, rounds=1, iterations=1)
    _RESULTS[("batch", "individual")] = time.perf_counter() - started

    engine = ShapeSearchEngine()
    started = time.perf_counter()
    batched = engine.run_many(table, PARAMS, queries, k=10)
    _RESULTS[("batch", "batched")] = time.perf_counter() - started

    assert [_signature(r) for r in batched] == [_signature(r) for r in individual]


#: The asserted DP-kernel measurement point (the paper-scale trendline
#: length where interpreter overhead dominates the loop kernel) and the
#: required advantage of the matrix kernel there.
DP_KERNEL_N = 500
DP_KERNEL_TARGET = 3.0


def _dp_kernel_times(n, rounds=3):
    """Best-of-``rounds`` single-trendline DP times per kernel at ``n`` bins.

    Returns ``(loop_s, matrix_s)`` and asserts the two kernels returned
    byte-identical scores and placements — the identity that makes the
    loop kernel the matrix kernel's oracle.
    """
    rng = np.random.default_rng(20)
    trendline = build_trendline(
        "kernel-bench", np.arange(n, dtype=float), rng.normal(0, 1, n).cumsum()
    )
    compiled = compile_query(parse("[p=up][p=down][p=up]"))
    times = {}
    results = {}
    for kernel in ("loop", "matrix"):
        solver = fuzzy_run_solver(kernel)
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            results[kernel] = solve_query(trendline, compiled, run_solver=solver)
            best = min(best, time.perf_counter() - started)
        times[kernel] = best
    loop_result, matrix_result = results["loop"], results["matrix"]
    assert matrix_result.score == loop_result.score
    assert [
        (p.start, p.end, p.score) for p in matrix_result.solution.placements
    ] == [(p.start, p.end, p.score) for p in loop_result.solution.placements]
    return times["loop"], times["matrix"]


def test_dp_kernel_microbench(benchmark):
    """Loop vs matrix DP kernel on one trendline (the per-candidate hot path).

    The n=500 point asserts the ≥3× matrix-kernel advantage — a pure
    single-core vectorization claim, so it holds on any hardware and any
    REPRO_BENCH_SCALE; a larger scaled n is recorded alongside to track
    the bandwidth-bound regime where slope sharing is the remaining
    lever.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    loop_s, matrix_s = _dp_kernel_times(DP_KERNEL_N)
    speedup = loop_s / max(matrix_s, 1e-9)
    large_n = max(DP_KERNEL_N, int(2000 * SCALE))
    large_loop_s, large_matrix_s = _dp_kernel_times(large_n)
    large_speedup = large_loop_s / max(large_matrix_s, 1e-9)
    print_table(
        "DP kernel: single trendline, [p=up][p=down][p=up]",
        ["bins", "loop", "matrix", "speedup"],
        [
            [DP_KERNEL_N, "{:.4f}s".format(loop_s), "{:.4f}s".format(matrix_s),
             "{:.2f}x".format(speedup)],
            [large_n, "{:.4f}s".format(large_loop_s), "{:.4f}s".format(large_matrix_s),
             "{:.2f}x".format(large_speedup)],
        ],
    )
    record_result(
        "dp_kernel",
        {
            "n_bins": DP_KERNEL_N,
            "loop_s": loop_s,
            "matrix_s": matrix_s,
            "speedup": speedup,
            "large_n_bins": large_n,
            "large_loop_s": large_loop_s,
            "large_matrix_s": large_matrix_s,
            "large_speedup": large_speedup,
            "target": DP_KERNEL_TARGET,
        },
    )
    assert speedup >= DP_KERNEL_TARGET, (
        "matrix kernel {:.2f}x at n={} (target {}x)".format(
            speedup, DP_KERNEL_N, DP_KERNEL_TARGET
        )
    )


def _atan_sharing_times(n, rounds=3):
    """Best-of-``rounds`` matrix-kernel times with tile-shared vs
    per-layer arctan transforms, asserting byte-identical results."""
    from repro.engine import dynamic as dynamic_module

    rng = np.random.default_rng(21)
    trendline = build_trendline(
        "atan-bench", np.arange(n, dtype=float), rng.normal(0, 1, n).cumsum()
    )
    compiled = compile_query(parse("[p=up][p=flat][p=down][p=up]"))
    times = {}
    results = {}
    original = dynamic_module.SHARE_ATAN
    try:
        for _ in range(rounds):
            for flag in (False, True):
                dynamic_module.SHARE_ATAN = flag
                started = time.perf_counter()
                results[flag] = solve_query(trendline, compiled, kernel="matrix")
                elapsed = time.perf_counter() - started
                times[flag] = min(times.get(flag, float("inf")), elapsed)
    finally:
        dynamic_module.SHARE_ATAN = original
    assert results[True].score == results[False].score
    assert [
        (p.start, p.end, p.score) for p in results[True].solution.placements
    ] == [(p.start, p.end, p.score) for p in results[False].solution.placements]
    return times[False], times[True]


def test_dp_atan_sharing_large_n(benchmark):
    """Tile-shared arctan/transform vs per-layer, in the large-n regime.

    At n ≳ 3000 both DP kernels are bandwidth-bound on the slope
    algebra (the PR 3 known limit); sharing the arctan and the Table 5
    transform across a tile's slope-based layers trims the per-layer
    array passes.  The delta is *recorded* (machine-dependent); byte
    identity between the two paths is asserted unconditionally.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    large_n = max(3000, int(4000 * SCALE))
    private_s, shared_s = _atan_sharing_times(large_n)
    speedup = private_s / max(shared_s, 1e-9)
    print_table(
        "DP matrix kernel: per-layer vs tile-shared transform",
        ["bins", "per-layer", "tile-shared", "speedup"],
        [
            [large_n, "{:.4f}s".format(private_s), "{:.4f}s".format(shared_s),
             "{:.2f}x".format(speedup)],
        ],
    )
    record_result(
        "dp_kernel",
        {
            "atan_n_bins": large_n,
            "atan_private_s": private_s,
            "atan_shared_s": shared_s,
            "atan_sharing_speedup": speedup,
        },
    )


#: Slack factors for the generation-stage assertions — the same generous
#: CI-noise allowance as the shm-beats-thread claim above (the paths
#: being compared differ by a whole serial generation pass, so 1.25 is
#: still a meaningful bound on a generation-heavy workload).
_GEN_MATCH_SEQUENTIAL_SLACK = 1.25
_GEN_BEAT_PARENT_SLACK = 1.25


def test_generation_stage(benchmark):
    """Parent-side vs worker-side EXTRACT/GROUP on a many-series table.

    The SlopeSeeker regime: thousands of short candidate series, where
    generation rivals scoring.  Measures (a) the isolated parent-side
    generation pass, then one cold ``execute`` per engine configuration —
    sequential, parallel scoring with parent-side generation, and the
    fused worker-side path — with pools pre-warmed on a *different*
    table so worker-resident caches cannot serve the measured one.
    Byte-identical results are asserted unconditionally; the speed
    claims (worker-side at least matches parent-side single-core and
    beats parent-side generation + parallel scoring) only where the
    hardware and workload can express them, as with the other pool
    benchmarks.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    viz = max(60, int(400 * SCALE))
    length = max(100, int(160 * SCALE))
    table = suite_table("50words", max_visualizations=viz, max_length=length)
    warm_table = suite_table("weather", max_visualizations=8, max_length=60)
    query = parse(SUITES["50words"].fuzzy_queries[0])

    from repro.engine.pipeline import generate_trendlines

    started = time.perf_counter()
    generate_trendlines(table, PARAMS)
    parent_generate_s = time.perf_counter() - started

    timings = {}
    signatures = {}
    configs = [
        ("sequential", {}),
        ("parent-parallel", {"workers": WORKERS, "backend": "process",
                             "shm": True, "generation": "parent"}),
        ("worker-parallel", {"workers": WORKERS, "backend": "process",
                             "shm": True, "generation": "worker"}),
    ]
    for name, kwargs in configs:
        with ShapeSearchEngine(**kwargs) as engine:
            engine.run(warm_table, PARAMS, query, k=10)  # warm the pool
            started = time.perf_counter()
            matches = engine.run(table, PARAMS, query, k=10)
            timings[name] = time.perf_counter() - started
            signatures[name] = _signature(matches)

    assert signatures["parent-parallel"] == signatures["sequential"]
    assert signatures["worker-parallel"] == signatures["sequential"]

    print_table(
        "Generation stage: 50words, {} series x {} points".format(viz, length),
        ["path", "runtime", "vs sequential"],
        [
            [name, "{:.3f}s".format(timings[name]),
             "{:.2f}x".format(timings["sequential"] / max(timings[name], 1e-9))]
            for name, _ in configs
        ] + [["parent generate only", "{:.3f}s".format(parent_generate_s), "-"]],
    )
    record_result(
        "generation",
        {
            "visualizations": viz,
            "length": length,
            "workers": WORKERS,
            "cpu_count": os.cpu_count(),
            "parent_generate_s": parent_generate_s,
            "sequential_s": timings["sequential"],
            "parent_parallel_s": timings["parent-parallel"],
            "worker_parallel_s": timings["worker-parallel"],
            "worker_vs_parent_parallel": timings["parent-parallel"]
            / max(timings["worker-parallel"], 1e-9),
            "worker_vs_sequential": timings["sequential"]
            / max(timings["worker-parallel"], 1e-9),
        },
    )
    # With real cores, worker-side generation must at least match the
    # single-core parent path and beat parent-side generation feeding
    # parallel scoring (its whole point is removing the serial stage).
    if (os.cpu_count() or 1) >= 2 and SCALE >= 0.25:
        assert (
            timings["worker-parallel"]
            <= timings["sequential"] * _GEN_MATCH_SEQUENTIAL_SLACK
        )
        assert (
            timings["worker-parallel"]
            <= timings["parent-parallel"] * _GEN_BEAT_PARENT_SLACK
        )


#: CI-noise slack on the index-beats-full-scan claim: the assert only
#: demands indexed latency within 1.25x of the full scan (i.e. tolerates
#: noise), while the recorded speedup tracks the real advantage.
_INDEX_SPEEDUP_SLACK = 1.25


def test_shape_index(benchmark):
    """Indexed vs full-scan top-k on a smooth many-candidate collection.

    The shape index's home turf, at 4x the default suite scale: hundreds
    of locally smooth trendlines (monotone declines with a handful of
    genuine rise-then-fall shapes) where the pyramid bounds are tight,
    so IndexPrune discards most candidates before the DP runs.  Records
    the one-time build cost, the pruned fraction, and indexed vs full
    rank latency; asserts byte-identical results unconditionally and the
    latency claim with generous CI slack.  (On noise-dominated series
    bounds straddle zero slope and pruning power vanishes — that regime
    is covered by the identity tests, not claimed here.)
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.engine.shape_index import ShapeIndex

    count = max(320, int(1280 * SCALE))
    length = max(160, int(640 * SCALE))
    rng = np.random.default_rng(30)
    half = length // 2
    trendlines = []
    for index in range(count):
        if index % 31 == 0:
            y = np.concatenate(
                [np.linspace(0, 10, half), np.linspace(10, 0, length - half)]
            )
        else:
            y = np.linspace(10, 0, length) + rng.normal(0, 0.05, length)
        trendlines.append(
            build_trendline(
                "s{:05d}".format(index), np.arange(length, dtype=float), y
            )
        )
    query = compile_query(parse("[p=up][p=down]"))

    started = time.perf_counter()
    index = ShapeIndex.build(trendlines)
    build_s = time.perf_counter() - started
    assert index.indexed == count

    full_engine = ShapeSearchEngine()
    indexed_engine = ShapeSearchEngine(index=True)
    full = full_engine.rank(trendlines, query, k=10)  # warm (and correctness)
    indexed = indexed_engine.rank(trendlines, query, k=10)  # warm + index build
    assert _signature(full) == _signature(indexed)
    stats = indexed_engine.last_stats
    assert stats.index_pruned > 0
    pruned_fraction = stats.index_pruned / max(stats.index_candidates, 1)

    full_s = indexed_s = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        full_engine.rank(trendlines, query, k=10)
        full_s = min(full_s, time.perf_counter() - started)
        started = time.perf_counter()
        indexed_engine.rank(trendlines, query, k=10)
        indexed_s = min(indexed_s, time.perf_counter() - started)

    speedup = full_s / max(indexed_s, 1e-9)
    print_table(
        "Shape index: {} smooth series x {} points, [p=up][p=down], k=10".format(
            count, length
        ),
        ["path", "runtime", "speedup", "pruned"],
        [
            ["full scan", "{:.3f}s".format(full_s), "1.00x", "-"],
            ["indexed", "{:.3f}s".format(indexed_s), "{:.2f}x".format(speedup),
             "{:.1%}".format(pruned_fraction)],
            ["index build (one-time)", "{:.3f}s".format(build_s), "-", "-"],
        ],
    )
    record_result(
        "index",
        {
            "visualizations": count,
            "length": length,
            "build_s": build_s,
            "pruned_fraction": pruned_fraction,
            "full_rank_s": full_s,
            "indexed_rank_s": indexed_s,
            "speedup": speedup,
        },
    )
    # The sublinear claim, with CI-noise slack: a pruned pass over a
    # collection this smooth must not lose to the full scan.
    if SCALE >= 0.25:
        assert full_s >= indexed_s / _INDEX_SPEEDUP_SLACK, (
            "indexed rank {:.3f}s vs full scan {:.3f}s".format(indexed_s, full_s)
        )


def test_parallel_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if ("rank", "sequential") not in _RESULTS:
        pytest.skip("parallel benchmarks did not run")
    sequential = _RESULTS[("rank", "sequential")]
    rows = []
    speedups = {}
    for mode in MODES:
        elapsed = _RESULTS[("rank", mode)]
        speedups[mode] = sequential / max(elapsed, 1e-9)
        rows.append(
            [
                mode,
                1 if mode == "sequential" else WORKERS,
                "{:.3f}s".format(elapsed),
                "{:.2f}x".format(speedups[mode]),
            ]
        )
    print_table(
        "Parallel ranking: 50words suite, fuzzy query, k=10",
        ["backend", "workers", "runtime", "speedup"],
        rows,
    )
    # The Fig. 13 scaling claim: with real cores to scale onto, the
    # zero-copy process transport must beat the GIL-bound thread backend
    # (generous slack for CI noise).  On a single core every parallel
    # backend is pure overhead, and below the default workload scale the
    # millisecond-sized run is noise-dominated, so the claim is only
    # checked when the hardware and workload can express it; it is always
    # *recorded* (shm_vs_thread below).
    if (os.cpu_count() or 1) >= 2 and SCALE >= 0.25:
        assert (
            _RESULTS[("rank", "process-shm")]
            <= _RESULTS[("rank", "thread")] * 1.25
        )
    record_result(
        "parallel",
        {
            "workers": WORKERS,
            "cpu_count": os.cpu_count(),
            "runtime_s": {mode: _RESULTS[("rank", mode)] for mode in MODES},
            "speedup": speedups,
            "shm_vs_thread": _RESULTS[("rank", "thread")]
            / max(_RESULTS[("rank", "process-shm")], 1e-9),
            "shm_vs_pickle": _RESULTS[("rank", "process-pickle")]
            / max(_RESULTS[("rank", "process-shm")], 1e-9),
        },
    )
    print_table(
        "Result caching: weather suite, repeated query",
        ["cold", "warm", "warm/cold", "cache hit rate"],
        [
            [
                "{:.3f}s".format(_RESULTS[("cache", "cold")]),
                "{:.3f}s".format(_RESULTS[("cache", "warm")]),
                "{:.2f}".format(
                    _RESULTS[("cache", "warm")] / max(_RESULTS[("cache", "cold")], 1e-9)
                ),
                "{:.1%}".format(_RESULTS[("cache", "hit_rate")]),
            ]
        ],
    )
    print_table(
        "Batch amortization: weather suite, {} fuzzy queries".format(
            len(SUITES["weather"].fuzzy_queries)
        ),
        ["one at a time", "execute_many", "ratio"],
        [
            [
                "{:.3f}s".format(_RESULTS[("batch", "individual")]),
                "{:.3f}s".format(_RESULTS[("batch", "batched")]),
                "{:.2f}".format(
                    _RESULTS[("batch", "batched")]
                    / max(_RESULTS[("batch", "individual")], 1e-9)
                ),
            ]
        ],
    )
    record_result(
        "cache",
        {
            "cold_s": _RESULTS[("cache", "cold")],
            "warm_s": _RESULTS[("cache", "warm")],
            "hit_rate": _RESULTS[("cache", "hit_rate")],
        },
    )
    record_result(
        "batch",
        {
            "individual_s": _RESULTS[("batch", "individual")],
            "batched_s": _RESULTS[("batch", "batched")],
        },
    )
    # The warm path skips EXTRACT/GROUP and compilation entirely; even
    # with ranking dominating it should never be meaningfully slower.
    assert _RESULTS[("cache", "warm")] <= _RESULTS[("cache", "cold")] * 1.5
