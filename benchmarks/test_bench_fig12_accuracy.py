"""Figure 12: top-k accuracy vs the DP oracle, with score deviations.

Paper shape: SegmentTree keeps > 85% of DP's top-k (improving with k,
never off by more than ~2 visualizations at k=20); Greedy falls below
~30%; DTW lands in a moderate 40–60% band.  Annotations report the
deviation of the k-th chosen score from the k-th optimal.
"""

import pytest

from repro.baselines.dtw import rank_by_dtw
from repro.engine.dynamic import solve_query
from repro.engine.greedy import greedy_run_solver
from repro.engine.segment_tree import segment_tree_run_solver
from repro.study.metrics import kth_score_deviation, tie_aware_overlap

from benchmarks.conftest import fuzzy_query, print_table

SUITE_NAMES = ("weather", "worms", "50words", "realestate", "haptics")
KS = (2, 5, 10, 20)

_ROWS = []


def _accuracy_table(trendlines, query):
    dp_scores = {tl.key: solve_query(tl, query).score for tl in trendlines}
    st_scores = {
        tl.key: solve_query(tl, query, run_solver=segment_tree_run_solver).score
        for tl in trendlines
    }
    greedy_scores = {
        tl.key: solve_query(tl, query, run_solver=greedy_run_solver).score
        for tl in trendlines
    }
    dtw_ranked = [tl.key for tl, _ in rank_by_dtw(trendlines, query, k=max(KS))]
    ordered = lambda scores: [  # noqa: E731
        key for key, _ in sorted(scores.items(), key=lambda kv: -kv[1])
    ]
    tolerance = 0.03  # near-tie width on the [-1, 1] score scale
    table = {}
    for k in KS:
        table[k] = {
            "segment-tree": (
                tie_aware_overlap(ordered(st_scores), dp_scores, k, tolerance),
                kth_score_deviation(
                    sorted(st_scores.values(), reverse=True)[:k],
                    sorted(dp_scores.values(), reverse=True)[:k],
                ),
            ),
            "greedy": (
                tie_aware_overlap(ordered(greedy_scores), dp_scores, k, tolerance),
                kth_score_deviation(
                    sorted(greedy_scores.values(), reverse=True)[:k],
                    sorted(dp_scores.values(), reverse=True)[:k],
                ),
            ),
            "dtw": (tie_aware_overlap(dtw_ranked, dp_scores, k, tolerance), float("nan")),
        }
    return table


@pytest.mark.parametrize("suite_name", SUITE_NAMES)
def test_fig12_accuracy(benchmark, suites, suite_name):
    trendlines = suites(suite_name)
    query = fuzzy_query(suite_name)
    table = benchmark.pedantic(
        _accuracy_table, args=(trendlines, query), rounds=1, iterations=1
    )
    for k in KS:
        st_accuracy, st_deviation = table[k]["segment-tree"]
        greedy_accuracy, _ = table[k]["greedy"]
        _ROWS.append(
            [
                suite_name,
                k,
                "{:.0f}%".format(st_accuracy),
                "{:.1f}%".format(st_deviation),
                "{:.0f}%".format(greedy_accuracy),
                "{:.0f}%".format(table[k]["dtw"][0]),
            ]
        )
    # Paper shape, stated disjunctively as in §9: at k=20 the SegmentTree
    # is "never off by more than 2 visualizations OR more than ~12%
    # deviation in scores" — high top-k overlap, or a tiny k-th-score
    # deviation when the top-k region is a dense band of near-ties
    # (see EXPERIMENTS.md).
    st_overlap, st_deviation = table[20]["segment-tree"]
    assert st_overlap >= 50.0 or st_deviation <= 15.0
    assert st_deviation <= 25.0
    assert st_overlap >= table[20]["greedy"][0] - 25.0


def test_fig12_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _ROWS:
        pytest.skip("accuracy benchmarks did not run")
    print_table(
        "Figure 12: top-k accuracy vs DP (and kth-score deviation)",
        ["dataset", "k", "segment-tree", "st-dev", "greedy", "dtw"],
        _ROWS,
    )
