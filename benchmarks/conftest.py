"""Shared benchmark infrastructure.

Sizes follow Table 11 scaled by the ``REPRO_BENCH_SCALE`` environment
variable (default 0.25 so the whole harness completes on a laptop;
``REPRO_BENCH_SCALE=1`` reproduces the paper's full workload sizes).
Each module prints the paper-style rows it regenerates, so running
``pytest benchmarks/ --benchmark-only -s`` yields the tables directly.

Measurements land in the ``REPRO_BENCH_JSON`` file via
:func:`record_result`, which **merges section-by-section**: each module
owns one top-level section (``index``, ``streaming``, ``artifacts``,
...), re-running a single module refreshes only its section, and a full
run regenerates them all side by side in one file.
"""

import json
import os
from typing import Dict, List

import pytest

from repro.datasets.suites import SUITES, suite_trendlines
from repro.engine.chains import compile_query
from repro.parser import parse

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

#: When set, every section recorded via :func:`record_result` is merged
#: into this JSON file as it is measured — CI runs the suite in smoke
#: mode with ``REPRO_BENCH_JSON=BENCH_results.json`` and uploads the file
#: as a workflow artifact, so the perf trajectory is recorded per PR.
#: (Merge-on-write rather than a session hook: partial results survive
#: ``-x`` aborts, and it is immune to this file being imported both as
#: pytest's conftest and as ``benchmarks.conftest``.)
BENCH_JSON = os.environ.get("REPRO_BENCH_JSON", "")


def record_result(section: str, payload: Dict) -> None:
    """Merge one benchmark module's measurements into the JSON record."""
    if not BENCH_JSON:
        return
    try:
        with open(BENCH_JSON) as handle:
            record = json.load(handle)
    except (OSError, ValueError):
        record = {}
    record.setdefault(section, {}).update(payload)
    record["meta"] = {"scale": SCALE}
    with open(BENCH_JSON, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True, default=str)


def scaled_suite(name: str):
    """Suite trendlines at the configured scale."""
    spec = SUITES[name]
    return suite_trendlines(
        name,
        max_visualizations=max(10, int(spec.visualizations * SCALE)),
        max_length=max(120, int(spec.length * SCALE)),
    )


def fuzzy_query(name: str, index: int = 0):
    """A Table 11 fuzzy query, compiled."""
    return compile_query(parse(SUITES[name].fuzzy_queries[index]))


def non_fuzzy_query(name: str):
    """The Table 11 non-fuzzy query, compiled (x pins scaled to length)."""
    spec = SUITES[name]
    scale = max(120, int(spec.length * SCALE)) / spec.length
    node = parse(spec.non_fuzzy_query)
    from repro.algebra.nodes import Concat, ShapeSegment
    from repro.algebra.primitives import Location

    def rescale(segment: ShapeSegment) -> ShapeSegment:
        loc = segment.location
        return segment.with_location(
            Location(
                x_start=None if loc.x_start is None else loc.x_start * scale,
                x_end=None if loc.x_end is None else max(
                    loc.x_end * scale, (loc.x_start or 0) * scale + 2
                ),
                y_start=loc.y_start,
                y_end=loc.y_end,
            )
        )

    if isinstance(node, ShapeSegment):
        node = rescale(node)
    elif isinstance(node, Concat):
        node = Concat(tuple(rescale(child) for child in node.children))
    return compile_query(node)


_CACHE: Dict[str, List] = {}


@pytest.fixture(scope="session")
def suites():
    """Lazily built, session-cached scaled suites."""

    def get(name: str):
        if name not in _CACHE:
            _CACHE[name] = scaled_suite(name)
        return _CACHE[name]

    return get


def print_table(title: str, headers: List[str], rows: List[List]) -> None:
    """Print a paper-style results table to the captured stdout."""
    print()
    print("== {} ==".format(title))
    widths = [
        max(len(str(headers[i])), max((len(str(row[i])) for row in rows), default=0))
        for i in range(len(headers))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
