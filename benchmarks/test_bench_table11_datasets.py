"""Table 11: dataset and query characteristics.

Regenerates the workload table — number of visualizations, their
lengths, and the fuzzy / non-fuzzy query sets — and checks that the
synthetic suites match the paper's cardinalities (at full scale) while
every recorded query parses and executes.
"""

import pytest

from repro.datasets.suites import SUITES, suite_trendlines
from repro.engine.dynamic import solve_query
from repro.engine.segment_tree import segment_tree_run_solver

from benchmarks.conftest import fuzzy_query, print_table


def test_table11_characteristics(benchmark):
    def build():
        return {
            name: suite_trendlines(name, max_visualizations=8)
            for name in SUITES
        }

    samples = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for name, spec in SUITES.items():
        sample = samples[name]
        assert all(tl.n_bins == spec.length for tl in sample)
        rows.append(
            [
                name,
                spec.visualizations,
                spec.length,
                len(spec.fuzzy_queries),
                spec.non_fuzzy_query[:40] + "...",
            ]
        )
    print_table(
        "Table 11: datasets and queries",
        ["dataset", "visualizations", "length", "#fuzzy", "non-fuzzy query"],
        rows,
    )


@pytest.mark.parametrize("suite_name", list(SUITES))
def test_table11_queries_execute(benchmark, suite_name):
    """Every Table 11 fuzzy query matches >= 20 visualizations (score > 0),
    the paper's relevance criterion for selecting them."""
    trendlines = suite_trendlines(suite_name, max_visualizations=120)
    query = fuzzy_query(suite_name)

    def run():
        return [
            solve_query(tl, query, run_solver=segment_tree_run_solver).score
            for tl in trendlines
        ]

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sum(score > 0 for score in scores) >= 20
