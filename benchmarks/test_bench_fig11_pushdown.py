"""Figure 11: push-down optimizations on non-fuzzy queries (§5.4).

Paper shape: non-fuzzy queries are fast everywhere (< 4 s at full
scale), and push-down reduces runtime in proportion to the selectivity
of the LOCATION primitives (e.g. haptics: 3 s → < 1.2 s).
"""

import time

import pytest

from repro.engine.executor import ShapeSearchEngine

from benchmarks.conftest import non_fuzzy_query, print_table

SUITE_NAMES = ("weather", "worms", "50words", "realestate", "haptics")

_RESULTS = {}


def _run(trendlines, query, pushdown: bool):
    engine = ShapeSearchEngine(algorithm="segment-tree", enable_pushdown=pushdown)
    return engine.rank(trendlines, query, k=10)


@pytest.mark.parametrize("suite_name", SUITE_NAMES)
@pytest.mark.parametrize("pushdown", [False, True], ids=["plain", "pushdown"])
def test_fig11_pushdown(benchmark, suites, suite_name, pushdown):
    trendlines = suites(suite_name)
    query = non_fuzzy_query(suite_name)
    started = time.perf_counter()
    benchmark.pedantic(_run, args=(trendlines, query, pushdown), rounds=1, iterations=1)
    _RESULTS[(suite_name, pushdown)] = time.perf_counter() - started


def test_fig11_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for suite_name in SUITE_NAMES:
        plain = _RESULTS.get((suite_name, False))
        pushed = _RESULTS.get((suite_name, True))
        if plain is None or pushed is None:
            pytest.skip("push-down benchmarks did not run")
        rows.append([suite_name, "{:.3f}s".format(plain), "{:.3f}s".format(pushed)])
    print_table("Figure 11: non-fuzzy runtime", ["dataset", "no pushdown", "pushdown"], rows)
