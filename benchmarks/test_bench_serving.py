"""Serving layer under load: latency vs concurrency, shedding, caching.

Three serving-grade claims measured against a real server on an
ephemeral port (the same ``start_in_thread`` harness the tests use):

* **Concurrency does not collapse latency** — the acceptance criterion:
  with 32 concurrent WebSocket sessions issuing a shared (prewarmed)
  query mix, the p99 request latency stays under 5x the single-client
  p50.  The engine's two driver threads serialize cold work by design,
  so fan-out survives through the cross-request result cache; what the
  bound measures is the serving layer's own overhead (event loop,
  framing, admission, executor hops) staying flat as sessions multiply.
* **Overload degrades by refusal, not by queueing** — with the global
  inflight cap saturated by gated executions, a burst of further
  requests is refused immediately (429), the queued execution is shed
  through the ExecutionControl seam, and nothing hangs: the burst's
  wall time is bounded by round trips, not by the gate.
* **The result cache turns repetition free** — a repeated query is
  served from the cross-request cache at a hit rate matching the
  workload's repetition, and warm p50 is no slower than cold p50.

Measurements land in the ``serving`` section of ``BENCH_results.json``.
"""

import threading
import time

import numpy as np

from repro.serving import (
    ServingClient,
    ServingError,
    ShapeServingApp,
    TenantQuota,
    start_in_thread,
)
from repro import temporary_udp

from benchmarks.conftest import SCALE, print_table, record_result

QUERIES = ["[p=up][p=down]", "[p=down][p=up]", "[p=up][p=flat][p=down]"]

#: Concurrency tiers; the 32-session tier is the acceptance criterion.
TIERS = [1, 8, 32]
#: Requests per session per tier (scaled, floor 4).
REQUESTS = max(4, int(16 * min(1.0, SCALE / 0.25)))
#: The acceptance bound: p99@32 sessions < 5x single-client p50.
P99_BOUND = 5.0

GROUPS = max(8, int(24 * min(1.0, SCALE / 0.25)))
LENGTH = 24
#: Every latency-tier request uses this k: three cache keys total.
CACHED_K = 5
#: Interactive pacing: uniform think time between a session's requests
#: (seconds).  32 sessions at ~60ms spacing keep the single event loop
#: around ~20% utilization — a live dashboard fan-out, not a flood; the
#: flood case is the overload benchmark's subject.
THINK_S = (0.040, 0.080)
#: Session arrival spread (seconds) — see the ramp-up note in
#: ``_stream_worker``.
RAMP_S = 0.25


def _columns(groups=GROUPS, length=LENGTH, seed=11):
    rng = np.random.default_rng(seed)
    zs, xs, ys = [], [], []
    for g in range(groups):
        values = rng.normal(0, 1, length).cumsum()
        for i, v in enumerate(values):
            zs.append("g{:03d}".format(g))
            xs.append(float(i))
            ys.append(float(v))
    return {"z": zs, "x": xs, "y": ys}


def _percentiles(latencies):
    ordered = sorted(latencies)
    pick = lambda q: ordered[min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))]  # noqa: E731
    return pick(0.50) * 1000.0, pick(0.99) * 1000.0


def _stream_worker(address, fingerprint, session_index, requests, latencies, errors):
    """One interactive WS session: paced requests, each timed end to end."""
    pacing = np.random.default_rng(1009 + session_index)
    # Ramp-up stagger: sessions arrive over ~a quarter second instead of
    # all opening their sockets in the same millisecond — without it,
    # every session's first request queues behind 31 simultaneous
    # handshakes and the p99 measures the thundering herd, not serving.
    time.sleep(pacing.uniform(0.0, RAMP_S))
    client = ServingClient(*address, tenant="bench-{}".format(session_index))
    try:
        with client.open_stream() as stream:
            for request_index in range(requests):
                query = QUERIES[request_index % len(QUERIES)]
                started = time.perf_counter()
                # The shared (query, k) mix is prewarmed by the seed
                # client: every session measures the full WS round trip
                # with the result cache absorbing the repetition —
                # serving overhead, not engine queueing.
                sid = stream.submit(fingerprint, query, "z", "x", "y", k=CACHED_K)
                terminal = stream.result(sid)
                elapsed = time.perf_counter() - started
                if terminal.get("type") != "result":
                    errors.append((session_index, request_index, terminal))
                    return
                latencies.append(elapsed)
                # Jittered think time de-synchronizes the sessions, as
                # real clients are: the measured latency is the round
                # trip, the pause between requests is not on the clock.
                time.sleep(pacing.uniform(*THINK_S))
    except Exception as exc:
        errors.append((session_index, repr(exc)))
    finally:
        client.close()


def test_latency_vs_concurrency():
    columns = _columns()
    rows = []
    measured = {}
    app = ShapeServingApp(
        quota=TenantQuota(rate=None, max_inflight=64), max_inflight=256
    )
    with start_in_thread(app) as handle:
        seed_client = ServingClient(*handle.address)
        fingerprint = seed_client.publish_columns(**columns)
        # Prewarm: the cold engine runs happen once, off the clock.
        for query in QUERIES:
            seed_client.search(fingerprint, query, "z", "x", "y", k=CACHED_K)
        for tier in TIERS:
            latencies: list = []
            errors: list = []
            threads = [
                threading.Thread(
                    target=_stream_worker,
                    args=(handle.address, fingerprint, 1000 * tier + index,
                          REQUESTS, latencies, errors),
                )
                for index in range(tier)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            wall = time.perf_counter() - started
            assert not errors, errors[:3]
            assert len(latencies) == tier * REQUESTS
            p50_ms, p99_ms = _percentiles(latencies)
            throughput = len(latencies) / wall
            measured[tier] = (p50_ms, p99_ms)
            rows.append([
                tier, len(latencies), "{:.2f}".format(p50_ms),
                "{:.2f}".format(p99_ms), "{:.0f}".format(throughput),
            ])
        seed_client.close()
    print_table(
        "Serving latency vs concurrent WS sessions",
        ["sessions", "requests", "p50 ms", "p99 ms", "req/s"],
        rows,
    )
    single_p50, _ = measured[TIERS[0]]
    _, loaded_p99 = measured[TIERS[-1]]
    record_result("serving", {
        "latency": {
            str(tier): {"p50_ms": measured[tier][0], "p99_ms": measured[tier][1]}
            for tier in TIERS
        },
        "p99_over_single_p50": loaded_p99 / max(single_p50, 1e-9),
        "p99_bound": P99_BOUND,
    })
    # The acceptance criterion (generous floor keeps timer noise out at
    # sub-millisecond single-client medians).
    assert loaded_p99 < P99_BOUND * max(single_p50, 2.0)


def _wait_running(app, count, timeout=15.0):
    """Block until ``count`` attached executions report ``running()``.

    A future only turns ``running()`` once a driver thread picks it up;
    admission's shed sweep targets not-running futures, so overload
    scenarios must not race that startup window.
    """
    deadline = time.monotonic() + timeout
    while app.admission.snapshot()["running"] < count:
        assert time.monotonic() < deadline, "drivers never started"
        time.sleep(0.005)


def test_overload_burst_refuses_immediately():
    """With the cap saturated by *running* work, a burst is refused flat.

    No queued execution exists, so shedding frees nothing: every one of
    the 16 requests is refused with 429 in round-trip time, and the
    burst's wall clock is bounded by the network hops, not the gate the
    running searches are blocked on.
    """
    gate = threading.Event()

    def blocking(values, slope):
        assert gate.wait(timeout=120)
        return 0.5

    burst = 16
    app = ShapeServingApp(
        quota=TenantQuota(rate=None, max_inflight=8), max_inflight=2
    )
    with start_in_thread(app) as handle:
        client = ServingClient(*handle.address)
        fingerprint = client.publish_columns(**_columns(groups=4))
        with temporary_udp("bench_gate", blocking):
            with client.open_stream() as stream:
                # Saturate: both driver threads hold a gated execution.
                sids = [
                    stream.submit(fingerprint, "[p=udp:bench_gate]",
                                  "z", "x", "y", k=2, search_id=index)
                    for index in range(2)
                ]
                for sid in sids:
                    assert stream.next_frame(sid)["type"] == "accepted"
                _wait_running(app, 2)
                refused = 0
                started = time.perf_counter()
                for index in range(burst):
                    try:
                        client.search(
                            fingerprint, QUERIES[index % len(QUERIES)],
                            "z", "x", "y", k=2 + index,
                        )
                    except ServingError as exc:
                        assert exc.status == 429
                        assert exc.code == "overloaded"
                        refused += 1
                burst_wall = time.perf_counter() - started
                gate.set()
                for sid in sids:
                    assert stream.result(sid)["type"] == "result"
        snapshot = app.admission.snapshot()
        client.close()
    print_table(
        "Overload burst (cap=2, 2 running, burst of {})".format(burst),
        ["burst", "refused", "shed", "burst wall s"],
        [[burst, refused, snapshot["shed"], "{:.3f}".format(burst_wall)]],
    )
    record_result("serving", {
        "overload": {
            "burst": burst,
            "refused": refused,
            "refusal_rate": refused / burst,
            "burst_wall_s": burst_wall,
        },
    })
    assert refused == burst  # every request refused, none hung
    assert snapshot["shed"] == 0  # running work is never shed
    assert burst_wall < 30.0  # refusal is immediate, not gate-bound


def test_overload_shed_frees_the_queued_execution():
    """An overload refusal sheds exactly the queued (not started) search.

    Two gated executions occupy the drivers, a third is admitted but
    queued.  The refused HTTP request triggers the shed sweep: the
    queued search terminates with ``overloaded`` instead of waiting on
    a gate it would never pass, the running pair is untouched, and the
    shed client's answer arrives in round-trip time.
    """
    gate = threading.Event()

    def blocking(values, slope):
        assert gate.wait(timeout=120)
        return 0.5

    app = ShapeServingApp(
        quota=TenantQuota(rate=None, max_inflight=8), max_inflight=3
    )
    with start_in_thread(app) as handle:
        client = ServingClient(*handle.address)
        fingerprint = client.publish_columns(**_columns(groups=4))
        with temporary_udp("bench_shed", blocking):
            with client.open_stream() as stream:
                sids = [
                    stream.submit(fingerprint, "[p=udp:bench_shed]",
                                  "z", "x", "y", k=2, search_id=index)
                    for index in range(3)
                ]
                for sid in sids:
                    assert stream.next_frame(sid)["type"] == "accepted"
                _wait_running(app, 2)  # the third search is the queued one
                started = time.perf_counter()
                try:
                    client.search(fingerprint, QUERIES[0], "z", "x", "y", k=2)
                    refusal = None
                except ServingError as exc:
                    refusal = exc
                assert refusal is not None and refusal.status == 429
                try:
                    stream.result(sids[2])
                    shed_terminal = None
                except ServingError as exc:
                    shed_terminal = exc
                shed_wall = time.perf_counter() - started
                assert shed_terminal is not None
                assert shed_terminal.code == "overloaded"
                gate.set()
                for sid in sids[:2]:
                    assert stream.result(sid)["type"] == "result"
        snapshot = app.admission.snapshot()
        client.close()
    print_table(
        "Overload shedding (cap=3, 2 running + 1 queued)",
        ["shed", "survivors", "shed wall s"],
        [[snapshot["shed"], 2, "{:.3f}".format(shed_wall)]],
    )
    record_result("serving", {
        "shed": {
            "shed": snapshot["shed"],
            "shed_wall_s": shed_wall,
        },
    })
    assert snapshot["shed"] == 1  # exactly the queued execution
    assert shed_wall < 30.0  # the shed client is answered, not parked


def test_result_cache_hit_rate_and_warm_latency():
    repeats = max(8, int(32 * min(1.0, SCALE / 0.25)))
    app = ShapeServingApp()
    with start_in_thread(app) as handle:
        client = ServingClient(*handle.address)
        fingerprint = client.publish_columns(**_columns())
        cold_latencies, warm_latencies = [], []
        for query in QUERIES:
            started = time.perf_counter()
            response = client.search(fingerprint, query, "z", "x", "y", k=5)
            cold_latencies.append(time.perf_counter() - started)
            assert response["cache"] is None
        for index in range(repeats):
            query = QUERIES[index % len(QUERIES)]
            started = time.perf_counter()
            response = client.search(fingerprint, query, "z", "x", "y", k=5)
            warm_latencies.append(time.perf_counter() - started)
            assert response["cache"] == "result"
        cache = app.result_cache.snapshot()
        client.close()
    cold_p50, _ = _percentiles(cold_latencies)
    warm_p50, _ = _percentiles(warm_latencies)
    print_table(
        "Result cache ({} cold + {} warm requests)".format(len(QUERIES), repeats),
        ["hit rate", "cold p50 ms", "warm p50 ms"],
        [["{:.3f}".format(cache["hit_rate"]), "{:.2f}".format(cold_p50),
          "{:.2f}".format(warm_p50)]],
    )
    record_result("serving", {
        "cache": {
            "hit_rate": cache["hit_rate"],
            "hits": cache["hits"],
            "misses": cache["misses"],
            "cold_p50_ms": cold_p50,
            "warm_p50_ms": warm_p50,
        },
    })
    expected = repeats / (repeats + len(QUERIES))
    assert cache["hit_rate"] >= expected - 1e-9
    assert warm_p50 <= max(cold_p50, 1.0)
