"""Figure 10: running time of the segmentation algorithms on five datasets.

Paper shape to reproduce: DP is slowest (quadratic in trendline length);
SegmentTree is 2–40× faster than DP; two-stage pruning shaves a further
10–30%; Greedy is fastest; DTW sits between SegmentTree and DP.

The figure's "dp" is the paper's per-end-bin recurrence, i.e. our
``kernel="loop"`` — the ordering assertions encode the *paper's*
algorithmic shape.  The matrix kernel (this repo's default) is recorded
as an extra ``dp-matrix`` column: at these suite sizes it routinely
beats the SegmentTree, which is exactly why it became the default and
why it is excluded from the paper-shape assertions.
"""

import time

import pytest

from repro.baselines.dtw import rank_by_dtw
from repro.engine.dynamic import fuzzy_run_solver, solve_query
from repro.engine.greedy import greedy_run_solver
from repro.engine.pruning import prune_and_rank
from repro.engine.segment_tree import segment_tree_run_solver

from benchmarks.conftest import fuzzy_query, print_table

SUITE_NAMES = ("weather", "worms", "50words", "realestate", "haptics")

_RESULTS = {}


def _rank_all(trendlines, query, run_solver=None, k=10):
    scored = [
        (tl, solve_query(tl, query, run_solver=run_solver)) for tl in trendlines
    ]
    scored.sort(key=lambda item: -item[1].score)
    return scored[:k]


def _run(algorithm, trendlines, query):
    if algorithm == "dp":
        return _rank_all(trendlines, query, run_solver=fuzzy_run_solver("loop"))
    if algorithm == "dp-matrix":
        return _rank_all(trendlines, query, run_solver=fuzzy_run_solver("matrix"))
    if algorithm == "segment-tree":
        return _rank_all(trendlines, query, run_solver=segment_tree_run_solver)
    if algorithm == "greedy":
        return _rank_all(trendlines, query, run_solver=greedy_run_solver)
    if algorithm == "pruned":
        return prune_and_rank(list(trendlines), query, k=10)
    if algorithm == "dtw":
        return rank_by_dtw(trendlines, query, k=10)
    raise ValueError(algorithm)


ALGORITHMS = ("dp", "dp-matrix", "segment-tree", "pruned", "greedy", "dtw")


@pytest.mark.parametrize("suite_name", SUITE_NAMES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig10_runtime(benchmark, suites, suite_name, algorithm):
    trendlines = suites(suite_name)
    query = fuzzy_query(suite_name)
    started = time.perf_counter()
    result = benchmark.pedantic(
        _run, args=(algorithm, trendlines, query), rounds=1, iterations=1
    )
    _RESULTS[(suite_name, algorithm)] = time.perf_counter() - started
    assert result


def test_fig10_report(benchmark):
    """Assert and print the paper's ordering: greedy < st(+prune) < dp."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for suite_name in SUITE_NAMES:
        timings = {
            algorithm: _RESULTS.get((suite_name, algorithm))
            for algorithm in ALGORITHMS
        }
        if any(value is None for value in timings.values()):
            pytest.skip("runtime benchmarks did not run")
        rows.append(
            [suite_name]
            + ["{:.3f}s".format(timings[algorithm]) for algorithm in ALGORITHMS]
        )
        assert timings["segment-tree"] < timings["dp"], suite_name
        assert timings["greedy"] <= timings["dp"], suite_name
    print_table("Figure 10: runtime (s)", ["dataset"] + list(ALGORITHMS), rows)
