"""Streaming appends: delta refresh vs full re-execution (PR 6 tentpole).

A long-lived ``session.tail`` holds worker-resident trendlines and DP
state; each ``append_rows`` re-scores only the groups the delta rows
touch and re-merges the cached results.  The claim measured here is the
streaming counterpart of the caching claims above: on a wide table a
small append must be served in a fraction of a cold ``run()`` over the
grown table, while staying byte-identical to it.

Timings: best-of-``APPEND_STEPS`` delta refresh (each step appends
``APPEND_ROWS`` rows to ``APPEND_GROUPS`` of ``GROUPS`` groups — a
rolling window over the group set) against one cold re-execution of the
final table.  Byte identity is asserted unconditionally; the delta-wins
claim only at the default workload scale where the cold run is large
enough to be meaningfully timed.
"""

import os
import time

import numpy as np

from repro.api import ShapeSearch, parse_query
from repro.data.table import Table

from benchmarks.conftest import SCALE, print_table, record_result

QUERY = "up then down then up"

GROUPS = max(24, int(96 * SCALE))
LENGTH = max(80, int(320 * SCALE))
APPEND_GROUPS = 2
APPEND_ROWS = 8
APPEND_STEPS = 5

#: The delta path skips generation and scoring for all but
#: ``APPEND_GROUPS / GROUPS`` of the table, so even with refresh
#: bookkeeping it must comfortably beat a cold run; 0.9 leaves room for
#: timer noise on the (fast) delta side without weakening the claim.
DELTA_WIN_SLACK = 0.9


def _records(groups, rows, offset=0):
    rng = np.random.default_rng(29 + 17 * offset)
    out = []
    for g in groups:
        phase = (g % 7) * 0.9
        for i in range(rows):
            out.append({
                "z": "g{}".format(g),
                "x": float(offset + i),
                "y": float(np.sin((offset + i) / 4.0 + phase)
                          + rng.normal(0, 0.05)),
            })
    return out


def _signature(matches):
    return [
        (
            m.key,
            m.score,
            tuple((p.seg_index, p.start, p.end, p.score) for p in m.placements),
        )
        for m in matches
    ]


def test_streaming_append(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = Table.from_records(_records(range(GROUPS), LENGTH))
    # Warm the NL parser outside the timed region (its process-wide CRF
    # trains on first use when no shipped weights are present): sessions
    # pay that cost once, not per tail.
    parse_query(QUERY)
    with ShapeSearch(table) as session:
        started = time.perf_counter()
        tail = session.tail(QUERY, z="z", x="x", y="y", k=10)
        initial_s = time.perf_counter() - started

        delta_times = []
        offset = LENGTH
        live = tail.results
        for step in range(APPEND_STEPS):
            first = (step * APPEND_GROUPS) % GROUPS
            batch = _records(
                [(first + j) % GROUPS for j in range(APPEND_GROUPS)],
                APPEND_ROWS,
                offset=offset,
            )
            started = time.perf_counter()
            live = tail.append_rows(batch)
            delta_times.append(time.perf_counter() - started)
            offset += APPEND_ROWS

        started = time.perf_counter()
        cold = tail.run(k=10)
        cold_s = time.perf_counter() - started

        assert _signature(live) == _signature(cold)
        assert live.stats.generation == "tail"

    delta_s = min(delta_times)
    speedup = cold_s / max(delta_s, 1e-9)
    print_table(
        "Streaming append: {} groups x {} points, +{} rows/step".format(
            GROUPS, LENGTH, APPEND_GROUPS * APPEND_ROWS
        ),
        ["path", "runtime", "vs cold"],
        [
            ["initial tail build", "{:.4f}s".format(initial_s), "-"],
            ["delta refresh (best of {})".format(APPEND_STEPS),
             "{:.4f}s".format(delta_s), "{:.2f}x".format(speedup)],
            ["cold re-execution", "{:.4f}s".format(cold_s), "1.00x"],
        ],
    )
    record_result(
        "streaming",
        {
            "groups": GROUPS,
            "length": LENGTH,
            "append_rows": APPEND_GROUPS * APPEND_ROWS,
            "append_steps": APPEND_STEPS,
            "cpu_count": os.cpu_count(),
            "initial_s": initial_s,
            "delta_s": delta_s,
            "delta_s_all": delta_times,
            "cold_s": cold_s,
            "speedup": speedup,
            "slack": DELTA_WIN_SLACK,
        },
    )
    # At the default scale the cold run covers GROUPS full trendlines
    # while the delta touches APPEND_GROUPS — the win must be visible on
    # any hardware; below it the runs are sub-millisecond noise.
    if SCALE >= 0.25:
        assert delta_s <= cold_s * DELTA_WIN_SLACK, (
            "delta refresh {:.4f}s vs cold {:.4f}s (need <= {:.0%})".format(
                delta_s, cold_s, DELTA_WIN_SLACK
            )
        )
