"""Tests for the NL pipeline components: POS, lexicon, semantics, features."""

import pytest

from repro.nlp import lexicon, semantics
from repro.nlp.features import extract_features
from repro.nlp.pos import pos_tags, tag_word, tokenize


class TestPos:
    def test_tokenize(self):
        assert tokenize("rising, then falling") == ["rising", ",", "then", "falling"]
        assert tokenize("from 2 to 5.5") == ["from", "2", "to", "5.5"]

    @pytest.mark.parametrize(
        "word,expected",
        [
            ("the", "DET"),
            ("from", "PREP"),
            ("and", "CONJ"),
            ("rising", "ADJ"),
            ("sharply", "ADV"),
            ("sharp", "ADJ"),
            ("genes", "NOUN"),
            ("3", "NUM"),
            ("two", "NUM"),
            (",", "PUNCT"),
            ("they", "PRON"),
        ],
    )
    def test_known_words(self, word, expected):
        assert tag_word(word) == expected

    def test_suffix_heuristics(self):
        assert tag_word("zigzagging") == "VERB"
        assert tag_word("smoothly") == "ADV"

    def test_pos_tags_alignment(self):
        tokens = tokenize("show me rising trends")
        assert len(pos_tags(tokens)) == len(tokens)


class TestLexicon:
    def test_edit_distance(self):
        assert lexicon.edit_distance("rising", "rising") == 0
        assert lexicon.edit_distance("rising", "risin") == 1
        assert lexicon.edit_distance("", "abc") == 3
        assert lexicon.edit_distance("kitten", "sitting") == 3

    def test_normalized_edit_distance(self):
        assert lexicon.normalized_edit_distance("abc", "abc") == 0.0
        assert lexicon.normalized_edit_distance("", "") == 0.0

    @pytest.mark.parametrize(
        "word,label",
        [
            ("increasing", "PATTERN"),
            ("falling", "PATTERN"),
            ("stable", "PATTERN"),
            ("sharply", "MODIFIER"),
            ("then", "OP_SEQ"),
            ("or", "OP_OR"),
            ("not", "OP_NOT"),
            ("from", "LOC"),
            ("3", "NUM"),
            ("twice", "QUANT"),
        ],
    )
    def test_predict_entity(self, word, label):
        assert lexicon.predict_entity(word) == label

    def test_noise_words_never_match(self):
        for word in ("show", "me", "genes", "the", "that"):
            assert lexicon.predict_entity(word) is None

    def test_typo_tolerance(self):
        assert lexicon.predict_entity("incresing") == "PATTERN"
        value, distance = lexicon.resolve_pattern_value("incresing")
        assert value == "up"

    def test_resolve_pattern_values(self):
        assert lexicon.resolve_pattern_value("declining")[0] == "down"
        assert lexicon.resolve_pattern_value("plateau")[0] == "flat"
        assert lexicon.resolve_pattern_value("peak")[0] == "compound:peak"
        assert lexicon.resolve_pattern_value("dip")[0] == "compound:valley"

    def test_resolve_modifier_values(self):
        assert lexicon.resolve_modifier_value("steeply")[0] == "sharp"
        assert lexicon.resolve_modifier_value("gently")[0] == "gradual"

    def test_number_words(self):
        assert lexicon.parse_number_word("three") == 3.0
        assert lexicon.parse_number_word("7") == 7.0
        assert lexicon.parse_number_word("rising") is None


class TestSemantics:
    def test_identity_similarity(self):
        assert semantics.path_similarity("rise", "rise") == 1.0

    def test_neighbours_are_close(self):
        assert semantics.path_similarity("rise", "up") == pytest.approx(0.5)
        assert semantics.path_similarity("soar", "up") == pytest.approx(1 / 3)

    def test_opposites_are_distant(self):
        assert semantics.path_similarity("up", "down") < 0.25

    def test_unknown_word(self):
        assert semantics.path_similarity("xylophone", "up") == 0.0

    def test_semantic_value_pattern(self):
        assert semantics.semantic_value("soar", "pattern") == "up"
        assert semantics.semantic_value("plunge", "pattern") == "down"
        assert semantics.semantic_value("unchanged", "pattern") == "flat"

    def test_semantic_value_modifier(self):
        assert semantics.semantic_value("abrupt", "modifier") == "sharp"
        assert semantics.semantic_value("mild", "modifier") == "gradual"

    def test_semantic_value_unknown(self):
        assert semantics.semantic_value("xylophone", "pattern") is None


class TestFeatures:
    def test_one_row_per_token(self):
        tokens = tokenize("rising then falling")
        features = extract_features(tokens)
        assert len(features) == 3

    def test_table3_families_present(self):
        tokens = tokenize("genes rising sharply from 2 to 5 , then falling")
        features = extract_features(tokens)
        joined = " ".join(features[1])  # the word "rising"
        assert "word=rising" in joined
        assert "pos=" in joined
        assert "pred=PATTERN" in joined
        assert "d(space+)=" in joined
        assert "ends(ing)=True" in joined

    def test_distance_bucketing(self):
        tokens = tokenize("rising a b c d e then falling")
        features = extract_features(tokens)
        assert any("d(and-then+)" in feature for feature in features[0])
        joined = " ".join(features[0])
        assert "d(punct-)=none" in joined
