"""Tests for the sketch front-end (canvas, RDP, translation)."""

import pytest

from repro.algebra.nodes import Concat, ShapeSegment
from repro.errors import DataError, ShapeQuerySyntaxError
from repro.sketch.canvas import Canvas
from repro.sketch.parser import parse_sketch
from repro.sketch.simplify import perpendicular_distance, rdp, segment_directions


class TestCanvas:
    def _canvas(self):
        return Canvas(width=100, height=50, x_min=0, x_max=10, y_min=0, y_max=100)

    def test_corner_mapping(self):
        canvas = self._canvas()
        # Top-left pixel = (x_min, y_max); bottom-right = (x_max, y_min).
        assert canvas.to_domain([(0, 0)]) == [(0.0, 100.0)]
        assert canvas.to_domain([(100, 50)]) == [(10.0, 0.0)]

    def test_round_trip(self):
        canvas = self._canvas()
        points = [(2.5, 30.0), (7.0, 80.0)]
        pixels = canvas.to_pixels(points)
        back = canvas.to_domain(pixels)
        for (x0, y0), (x1, y1) in zip(points, back):
            assert x0 == pytest.approx(x1)
            assert y0 == pytest.approx(y1)

    def test_out_of_canvas_rejected(self):
        with pytest.raises(DataError):
            self._canvas().to_domain([(200, 10)])

    def test_degenerate_canvas_rejected(self):
        with pytest.raises(DataError):
            Canvas(width=0, height=10, x_min=0, x_max=1, y_min=0, y_max=1)
        with pytest.raises(DataError):
            Canvas(width=10, height=10, x_min=1, x_max=1, y_min=0, y_max=1)


class TestRdp:
    def test_straight_line_collapses(self):
        points = [(float(i), 2.0 * i) for i in range(20)]
        assert rdp(points, epsilon=0.01) == [points[0], points[-1]]

    def test_corner_preserved(self):
        points = [(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]
        assert rdp(points, epsilon=0.1) == points

    def test_perpendicular_distance(self):
        assert perpendicular_distance((0.0, 1.0), (-1.0, 0.0), (1.0, 0.0)) == pytest.approx(1.0)
        # Degenerate segment falls back to point distance.
        assert perpendicular_distance((3.0, 4.0), (0.0, 0.0), (0.0, 0.0)) == pytest.approx(5.0)


class TestSegmentDirections:
    def test_up_down(self):
        points = [(float(i), float(i)) for i in range(10)]
        points += [(float(10 + i), float(9 - i)) for i in range(10)]
        directions = [d for d, _ in segment_directions(points, epsilon=0.1)]
        assert directions == ["up", "down"]

    def test_flat_detection(self):
        points = [(float(i), 0.0 if i < 10 else (i - 10.0)) for i in range(20)]
        directions = [d for d, _ in segment_directions(points, epsilon=0.05)]
        assert directions[0] == "flat" or directions == ["up"]

    def test_too_short(self):
        assert segment_directions([(0, 0)], epsilon=0.1) == []


class TestParseSketch:
    def test_precise_mode_builds_sketch_segment(self):
        node = parse_sketch([(0, 1), (1, 5), (2, 3)], mode="precise")
        assert isinstance(node, ShapeSegment)
        assert node.sketch is not None
        assert len(node.sketch) == 3

    def test_blurry_mode_builds_concat(self):
        points = [(float(i), float(i)) for i in range(10)]
        points += [(float(10 + i), float(9 - i)) for i in range(10)]
        node = parse_sketch(points, mode="blurry")
        assert isinstance(node, Concat)
        kinds = [seg.pattern.kind for seg in node.segments()]
        assert kinds == ["up", "down"]

    def test_blurry_single_direction(self):
        points = [(float(i), 2.0 * i) for i in range(10)]
        node = parse_sketch(points, mode="blurry")
        assert isinstance(node, ShapeSegment)
        assert node.pattern.kind == "up"

    def test_canvas_pixels_translated(self):
        canvas = Canvas(width=100, height=100, x_min=0, x_max=10, y_min=0, y_max=10)
        # Pixel y grows downward: drawing from bottom-left to top-right rises.
        node = parse_sketch([(0, 100), (100, 0)], canvas=canvas, mode="precise")
        ys = node.sketch.ys()
        assert ys[0] < ys[-1]

    def test_unsorted_points_are_sorted(self):
        node = parse_sketch([(2, 3), (0, 1), (1, 5)], mode="precise")
        assert node.sketch.xs() == [0, 1, 2]

    def test_bad_mode(self):
        with pytest.raises(ShapeQuerySyntaxError):
            parse_sketch([(0, 0), (1, 1)], mode="fuzzy")

    def test_too_few_points(self):
        with pytest.raises(ShapeQuerySyntaxError):
            parse_sketch([(0, 0)], mode="precise")
